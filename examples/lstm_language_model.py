#!/usr/bin/env python3
"""Recurrent workloads on Bit Fusion: the Penn TreeBank LSTM benchmark.

Recurrent networks stress a different part of the design than CNNs: their
fully-connected gate GEMMs have no spatial weight reuse, so performance is
bounded by off-chip bandwidth unless batching amortizes the weight traffic.
This example

1. runs the quantized LSTM language model across batch sizes 1-256 and
   reproduces the >20x batching gain of Figure 16,
2. sweeps the off-chip bandwidth at the default batch to reproduce the
   near-linear scaling of Figure 15,
3. runs one functional LSTM step (integer gate GEMM through the BitBrick
   fabric, float nonlinearities on the host) to show end-to-end use of the
   functional API on a recurrent cell.

Run with::

    python examples/lstm_language_model.py
"""

from __future__ import annotations

import numpy as np

from repro import BitFusionAccelerator, BitFusionConfig
from repro.dnn import models
from repro.dnn.functional import lstm_cell
from repro.dnn.tensor import TensorSpec, random_quantized_tensor


def batching_sweep() -> None:
    network = models.load("LSTM")
    print("LSTM per-inference latency vs batch size (Figure 16 behaviour)")
    baseline = None
    for batch in (1, 4, 16, 64, 256):
        config = BitFusionConfig.eyeriss_matched(batch_size=batch)
        result = BitFusionAccelerator(config).run(network, batch_size=batch)
        latency_us = result.latency_per_inference_s * 1e6
        if baseline is None:
            baseline = latency_us
        bound = "memory-bound" if result.memory_cycles > result.compute_cycles else "compute-bound"
        print(
            f"  batch {batch:>3d}: {latency_us:8.1f} us/inference "
            f"({baseline / latency_us:5.2f}x vs batch 1, {bound})"
        )
    print()


def bandwidth_sweep() -> None:
    network = models.load("LSTM")
    print("LSTM throughput vs off-chip bandwidth at batch 16 (Figure 15 behaviour)")
    for bandwidth in (32, 64, 128, 256, 512):
        config = BitFusionConfig.eyeriss_matched(bandwidth_bits_per_cycle=bandwidth)
        result = BitFusionAccelerator(config).run(network)
        print(
            f"  {bandwidth:>3d} bits/cycle: {result.throughput_inferences_per_s:10,.0f} inferences/s"
        )
    print()


def functional_step() -> None:
    print("one functional LSTM step through the quantized gate GEMM")
    hidden_size = 64
    rng = np.random.default_rng(3)
    inputs = random_quantized_tensor(TensorSpec(shape=(hidden_size,), bits=4), rng)
    hidden = random_quantized_tensor(TensorSpec(shape=(hidden_size,), bits=4), rng)
    weights = random_quantized_tensor(
        TensorSpec(shape=(4 * hidden_size, 2 * hidden_size), bits=4), rng
    )
    cell = np.zeros(hidden_size)
    new_hidden, new_cell = lstm_cell(inputs, hidden, cell, weights)
    print(f"  hidden state norm after one step : {np.linalg.norm(new_hidden):.3f}")
    print(f"  cell state norm after one step   : {np.linalg.norm(new_cell):.3f}")
    print(f"  hidden state range               : [{new_hidden.min():.3f}, {new_hidden.max():.3f}]")


def main() -> None:
    batching_sweep()
    bandwidth_sweep()
    functional_step()


if __name__ == "__main__":
    main()
