#!/usr/bin/env python3
"""Quickstart: run a quantized DNN on the Bit Fusion accelerator.

This example walks through the complete public API in a few steps:

1. build a Bit Fusion accelerator with the paper's default configuration
   (the 45 nm, Eyeriss-area-matched configuration of Table III),
2. load one of the eight benchmark networks (binarized Cifar-10),
3. compile it to a Fusion-ISA program and inspect the instruction blocks,
4. simulate it to obtain cycle counts, utilization and an energy breakdown,
5. prove the bit-level fusion arithmetic is lossless by running a small
   fully-connected layer both through the BitBrick datapath and through
   plain NumPy integer arithmetic.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BitFusionAccelerator, BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import FCLayer
from repro.dnn.reference import random_layer_data, run_fc_layer


def main() -> None:
    # 1. Configure the accelerator (Table III, Eyeriss-matched, 45 nm).
    accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())
    print(accelerator.describe())
    print()

    # 2. Load a benchmark network: the binarized Cifar-10 CNN.
    network = models.load("Cifar-10")
    print(network.summary())
    print()

    # 3. Compile to a Fusion-ISA program.  One block per (fused) layer; the
    #    `setup` instruction of each block fixes the fusion configuration.
    program = accelerator.compile(network)
    print(program.summary())
    print()

    # 4. Simulate: cycles, bandwidth boundedness, energy breakdown.
    result = accelerator.run(network)
    print(result.summary())
    print()
    fractions = result.energy.fractions()
    print(
        "energy breakdown: "
        f"compute {fractions['compute']:.1%}, buffers {fractions['buffers']:.1%}, "
        f"DRAM {fractions['dram']:.1%}"
    )
    print(
        f"throughput: {result.throughput_inferences_per_s:,.0f} inferences/s at batch "
        f"{result.batch_size}, {result.effective_throughput_gops:,.0f} GOPS delivered"
    )
    print()

    # 5. Bit-exactness: a small 2-bit fully-connected layer executed through
    #    the BitBrick decomposition matches NumPy exactly.
    layer = FCLayer(name="demo_fc", in_features=64, out_features=16, input_bits=2, weight_bits=2)
    inputs, weights = random_layer_data(layer, rng=np.random.default_rng(7))
    comparison = run_fc_layer(layer, inputs, weights)
    print(
        "bit-exact check on a 2-bit FC layer: "
        f"matches={comparison.matches}, max |error|={comparison.max_abs_error}"
    )


if __name__ == "__main__":
    main()
