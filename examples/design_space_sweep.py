#!/usr/bin/env python3
"""Design-space exploration: a two-axis sweep with a Pareto frontier.

The BitFusion paper settles on a 16x16 array of 8-bit-fused units by
exploring a design space; this example reproduces a small slice of that
exploration with the declarative sweep engine (`repro.dse`):

1. declare a two-axis `SweepSpec` — systolic-array geometry crossed with
   technology node — over one benchmark network,
2. expand and execute it through an `EvaluationSession` (the structure-only
   program cache means the network is compiled exactly once for all six
   points, since neither axis affects the emitted program),
3. extract and print the Pareto frontier trading latency per inference
   against energy per inference and silicon area.

The same spec, as JSON, runs from the command line::

    python -m repro.harness sweep spec.json

See docs/sweeps.md for the full spec schema.

Run with::

    python examples/design_space_sweep.py
"""

from __future__ import annotations

from repro.dse import SweepSpec, format_sweep_report, run_sweep
from repro.session import EvaluationSession


def main() -> None:
    # 1. Declare the design space: array geometry x technology node.
    spec = SweepSpec.from_dict(
        {
            "name": "LeNet-5 array x node exploration",
            "networks": ["LeNet-5"],
            "batch_sizes": [16],
            "axes": {
                "array": [[16, 16], [32, 16], [32, 32]],
                "technology": ["45nm", "16nm"],
            },
            "objectives": ["latency", "energy", "area"],
        }
    )
    print(spec.describe())
    print()

    # 2. Execute the grid through a session.  All six workloads share one
    #    compiled program: the array and technology axes are excluded from
    #    the structure-only program cache key.
    with EvaluationSession() as session:
        result = run_sweep(spec, session)

        # 3. Report: the full grid, the Pareto frontier, and proof of the
        #    single compilation in the session's cache statistics.
        print(format_sweep_report(result))
        print()
        print(session.stats.summary())

    compiles = session.stats.programs.misses
    assert compiles == 1, f"expected exactly one compilation, saw {compiles}"
    print()
    print("The program cache compiled LeNet-5 exactly once for all six points.")


if __name__ == "__main__":
    main()
