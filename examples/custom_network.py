#!/usr/bin/env python3
"""Bringing your own quantized network to Bit Fusion.

The benchmark suite covers the paper's eight networks, but the library is
meant to be used with arbitrary quantized models.  This example builds a
small mixed-precision CNN from scratch (the kind of per-layer bitwidth
assignment a quantization-aware training flow produces), then

* inspects its bitwidth profile (the Figure 1 style histogram),
* compiles it and prints the Fusion-ISA block for one layer instruction by
  instruction,
* simulates it at two hardware scale points and reports where the design is
  compute- versus bandwidth-bound,
* verifies one of its convolutions bit-exactly against NumPy.

Run with::

    python examples/custom_network.py
"""

from __future__ import annotations

import numpy as np

from repro import BitFusionAccelerator, BitFusionConfig
from repro.dnn.layers import ActivationLayer, ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network
from repro.dnn.reference import random_layer_data, run_conv_layer


def build_custom_network() -> Network:
    """A small mixed-precision CNN for 64x64 RGB inputs."""
    net = Network("custom-mixed-precision")
    net.add(
        ConvLayer(
            name="stem",
            in_channels=3,
            out_channels=32,
            in_height=64,
            in_width=64,
            kernel=3,
            padding=1,
            input_bits=8,
            weight_bits=8,
            output_bits=4,
        )
    )
    net.add(PoolLayer(name="pool1", channels=32, in_height=64, in_width=64, kernel=2, stride=2,
                      input_bits=4, weight_bits=4, output_bits=4))
    net.add(
        ConvLayer(
            name="block1",
            in_channels=32,
            out_channels=64,
            in_height=32,
            in_width=32,
            kernel=3,
            padding=1,
            input_bits=4,
            weight_bits=2,
            output_bits=4,
        )
    )
    net.add(PoolLayer(name="pool2", channels=64, in_height=32, in_width=32, kernel=2, stride=2,
                      input_bits=4, weight_bits=2, output_bits=4))
    net.add(
        ConvLayer(
            name="block2",
            in_channels=64,
            out_channels=128,
            in_height=16,
            in_width=16,
            kernel=3,
            padding=1,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(PoolLayer(name="pool3", channels=128, in_height=16, in_width=16, kernel=2, stride=2,
                      input_bits=2, weight_bits=2, output_bits=2))
    net.add(FCLayer(name="head", in_features=128 * 8 * 8, out_features=256,
                    input_bits=2, weight_bits=2, output_bits=4))
    net.add(ActivationLayer(name="head_relu", elements=256, input_bits=4, weight_bits=2,
                            output_bits=4))
    net.add(FCLayer(name="classifier", in_features=256, out_features=100,
                    input_bits=4, weight_bits=4, output_bits=8))
    return net


def main() -> None:
    network = build_custom_network()
    print(network.summary())
    print()

    profile = network.bitwidth_profile()
    print("multiply-add distribution by (input, weight) bitwidth:")
    for (input_bits, weight_bits), fraction in sorted(profile.mac_fraction.items()):
        print(f"  {input_bits}b x {weight_bits}b : {fraction:6.1%}")
    print()

    # Compile and show the Fusion-ISA for the mixed-precision block1 layer.
    accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())
    program = accelerator.compile(network)
    block = next(compiled for compiled in program if compiled.name.startswith("block1"))
    print(f"Fusion-ISA block for {block.name!r} ({len(block.block)} instructions):")
    for instruction in block.block:
        print(f"  {instruction.mnemonic:10s} {instruction}")
    print()

    # Simulate at two scale points.
    for config in (BitFusionConfig.eyeriss_matched(), BitFusionConfig.gpu_scaled_16nm()):
        result = BitFusionAccelerator(config).run(network)
        bound = "memory" if result.memory_cycles > result.compute_cycles else "compute"
        print(
            f"{config.name:28s}: {result.latency_per_inference_s * 1e6:8.1f} us/inference, "
            f"{result.energy_per_inference_j * 1e6:8.1f} uJ/inference, {bound}-bound"
        )
    print()

    # Bit-exact check of the ternary-weight convolution.
    conv = network["block2"]
    inputs, weights = random_layer_data(conv, rng=np.random.default_rng(11))
    comparison = run_conv_layer(conv, inputs, weights)
    print(
        f"functional check on {conv.name!r}: matches NumPy = {comparison.matches} "
        f"(max |error| = {comparison.max_abs_error})"
    )


if __name__ == "__main__":
    main()
