#!/usr/bin/env python3
"""Exploring per-layer bitwidths: how fusion configuration drives performance.

The central claim of Bit Fusion is that matching the compute fabric to each
layer's operand bitwidths buys near-quadratic gains.  This example makes
that concrete on a single convolutional layer:

* sweep the layer's (input, weight) bitwidths over every configuration the
  Fusion Unit supports,
* report the fused-PE count, peak throughput, simulated latency and energy
  at each configuration,
* then run the real AlexNet bitwidth profile (8/8 entry layer, 4/1 middle,
  8/8 classifier) against a hypothetical fixed-8-bit accelerator to show
  where the whole-network gains come from.

Run with::

    python examples/per_layer_bitwidths.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import BitFusionAccelerator, BitFusionConfig
from repro.core.fusion_unit import fusion_config_for
from repro.dnn import models
from repro.dnn.layers import ConvLayer
from repro.dnn.network import Network


def sweep_single_layer() -> None:
    """Sweep one convolution over every supported bitwidth pair."""
    accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())
    base_layer = ConvLayer(
        name="conv",
        in_channels=128,
        out_channels=128,
        in_height=28,
        in_width=28,
        kernel=3,
        padding=1,
    )

    print("single 128x128 3x3 convolution on 28x28, batch 16")
    print(f"{'bits (in/wt)':>12s} {'F-PEs/unit':>11s} {'peak GOPS':>10s} {'ms/batch':>9s} {'uJ/batch':>9s}")
    for input_bits in (1, 2, 4, 8, 16):
        for weight_bits in (1, 2, 4, 8, 16):
            if weight_bits > input_bits:
                continue  # keep the table compact; the matrix is symmetric in spirit
            layer = replace(base_layer, input_bits=input_bits, weight_bits=weight_bits)
            network = Network(f"conv-{input_bits}x{weight_bits}", [layer])
            result = accelerator.run(network)
            fusion = fusion_config_for(input_bits, weight_bits)
            print(
                f"{input_bits:>5d}/{weight_bits:<6d} {fusion.fused_pes:>11d} "
                f"{accelerator.peak_throughput_gops(input_bits, weight_bits):>10.0f} "
                f"{result.batch_latency_s * 1e3:>9.3f} {result.energy.total * 1e6:>9.1f}"
            )
    print()


def alexnet_vs_fixed_8bit() -> None:
    """Compare the quantized AlexNet against a fixed-8-bit execution of it."""
    accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())
    flexible = models.load("AlexNet")

    fixed = Network("AlexNet-fixed8", [
        replace(layer, input_bits=8, weight_bits=8, output_bits=8) for layer in flexible
    ])

    flexible_result = accelerator.run(flexible)
    fixed_result = accelerator.run(fixed)
    speedup = fixed_result.latency_per_inference_s / flexible_result.latency_per_inference_s
    energy = fixed_result.energy_per_inference_j / flexible_result.energy_per_inference_j
    print("AlexNet: bit-flexible execution vs the same fabric locked to 8-bit/8-bit")
    print(f"  bit-flexible : {flexible_result.latency_per_inference_s * 1e3:7.2f} ms/inference")
    print(f"  fixed 8-bit  : {fixed_result.latency_per_inference_s * 1e3:7.2f} ms/inference")
    print(f"  -> {speedup:.2f}x faster and {energy:.2f}x less energy from bit-level fusion alone")


def main() -> None:
    sweep_single_layer()
    alexnet_vs_fixed_8bit()


if __name__ == "__main__":
    main()
