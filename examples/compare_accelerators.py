#!/usr/bin/env python3
"""Head-to-head accelerator comparison across the paper's benchmark suite.

This example drives the full experiment harness the way Section V of the
paper does: every benchmark runs on Bit Fusion, Eyeriss, Stripes and the
GPU roofline models, and the script prints the speedup / energy-reduction
tables of Figures 13, 17 and 18 with the paper's published numbers
alongside for reference.

Run with::

    python examples/compare_accelerators.py            # all benchmarks
    python examples/compare_accelerators.py Cifar-10   # a single benchmark
"""

from __future__ import annotations

import sys

from repro.dnn import models
from repro.harness.experiments import fig13_eyeriss, fig17_gpu, fig18_stripes


def main(argv: list[str]) -> None:
    if argv:
        requested = tuple(argv)
        unknown = [name for name in requested if name not in models.benchmark_names()]
        if unknown:
            raise SystemExit(
                f"unknown benchmark(s) {unknown}; choose from {models.benchmark_names()}"
            )
        benchmarks: tuple[str, ...] | None = requested
    else:
        benchmarks = None

    print("=" * 100)
    eyeriss_summary = fig13_eyeriss.run(benchmarks=benchmarks)
    print(fig13_eyeriss.format_table(eyeriss_summary))

    print()
    print("=" * 100)
    stripes_summary = fig18_stripes.run(benchmarks=benchmarks)
    print(fig18_stripes.format_table(stripes_summary))

    print()
    print("=" * 100)
    gpu_summary = fig17_gpu.run(benchmarks=benchmarks)
    print(fig17_gpu.format_table(gpu_summary))

    print()
    bf_power = [row.bitfusion_power_w for row in gpu_summary.rows]
    print(
        "Bit Fusion at 16 nm draws "
        f"{max(bf_power):.2f} W at most across the suite (paper: 895 mW), versus the "
        "250 W Titan Xp it nearly matches on throughput."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
