#!/usr/bin/env python3
"""NAS candidate search priced by the cache-composition estimator.

Evaluating a candidate network normally walks the full compile → simulate →
compose pipeline.  The surrogate estimator (`repro.nas`) skips simulation
for every layer whose content fingerprint is already in the artifact cache
and batches only the genuinely unseen layers, so a search over hundreds of
near-clone candidates simulates each novel layer exactly once:

1. price a zoo network once through an `Estimator` — cold, everything
   simulates — and check the result is byte-identical to the full
   `BitFusionAccelerator.evaluate()` pipeline (the estimator is exact, not
   approximate),
2. run a seeded evolutionary search (`run_search`) over the width / depth /
   bit-width mutation axes, streaming a latency/energy Pareto frontier,
3. show the estimator's hit rate: most candidate layers composed straight
   from the cache, and re-pricing the base network costs zero simulations.

The same search, as a JSON spec, runs from the command line::

    python -m repro.harness nas spec.json

See docs/nas.md for the spec schema and the exactness guarantee.

Run with::

    python examples/nas_search.py
"""

from __future__ import annotations

from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.nas import Estimator, SearchSpec, format_search_report, run_search


def main() -> None:
    config = BitFusionConfig.eyeriss_matched()

    # 1. Cold pricing is exact: identical to the full pipeline's output.
    estimator = Estimator(config)
    network = models.load("Cifar-10")
    estimate = estimator.estimate(network)
    reference = BitFusionAccelerator(config).evaluate(network)
    assert estimate == reference, "estimator must match evaluate() exactly"
    print("cold estimate == evaluate():", estimate.latency_per_inference_s, "s/inf")
    print()

    # 2. A seeded search through the same estimator: candidates are priced
    #    in fingerprint-deduped batches, novel layers simulate once.
    spec = SearchSpec.from_dict(
        {
            "name": "Cifar-10 width/depth/bits search",
            "base_network": "Cifar-10",
            "population": 8,
            "generations": 3,
            "seed": 7,
            "objectives": ["latency", "energy"],
        }
    )
    result = run_search(spec, estimator=estimator)
    print(format_search_report(result))
    print()

    # 3. The cache did the heavy lifting: most layer lookups composed or
    #    deduped, and re-pricing the base network simulates nothing.
    stats = estimator.stats
    print(stats.summary())
    assert stats.hit_rate > 0.5, f"expected a mostly-cached search, got {stats.hit_rate:.0%}"
    simulated_before = stats.layers_simulated
    estimator.estimate(network)
    assert stats.layers_simulated == simulated_before, "warm re-pricing must not simulate"
    print()
    print("Re-pricing the base network after the search ran zero simulations.")


if __name__ == "__main__":
    main()
