"""Design-space exploration: declarative multi-axis sweeps with Pareto reporting.

The paper arrives at its 16x16, 8-bit-fused Bit Fusion configuration by
exploring a design space — array geometry, buffer sizing, technology node,
off-chip bandwidth.  This subsystem makes that exploration a first-class,
declarative operation on top of the evaluation session:

* :class:`~repro.dse.spec.SweepSpec` — a plain-data description of the
  space (networks x batches x any combination of hardware/compiler axes),
  loadable from JSON/YAML, expanding to a fingerprinted
  :class:`~repro.session.workload.Workload` grid.
* :func:`~repro.dse.runner.run_sweep` — executes the grid through an
  :class:`~repro.session.session.EvaluationSession`, so the two-level
  artifact cache applies: axes that do not affect compilation (technology
  node, bandwidth, frequency, array geometry) compile each network exactly
  once, and warm re-runs skip simulation entirely.
* :mod:`~repro.dse.pareto` — exact, deterministic Pareto-frontier
  extraction over the minimized objectives (latency, energy, area).
* :mod:`~repro.dse.report` — table rendering shared by ``python -m
  repro.harness sweep`` and the full report's ``dse`` section.

See ``docs/sweeps.md`` for the spec schema and a worked example, and
``examples/design_space_sweep.py`` for a runnable two-axis exploration.
"""

from repro.dse.pareto import (
    OBJECTIVES,
    dominates,
    pareto_front,
    pareto_indices,
    pareto_indices_quadratic,
)
from repro.dse.report import format_pareto_table, format_sweep_report
from repro.dse.runner import DesignSpaceResult, EvaluatedPoint, run_sweep
from repro.dse.spec import (
    BASE_CONFIGS,
    CONFIG_AXES,
    WORKLOAD_AXES,
    DesignPoint,
    SweepSpec,
    expand_specs,
    format_axis_value,
)

__all__ = [
    "BASE_CONFIGS",
    "CONFIG_AXES",
    "OBJECTIVES",
    "WORKLOAD_AXES",
    "DesignPoint",
    "DesignSpaceResult",
    "EvaluatedPoint",
    "SweepSpec",
    "dominates",
    "expand_specs",
    "format_axis_value",
    "format_pareto_table",
    "format_sweep_report",
    "pareto_front",
    "pareto_indices",
    "pareto_indices_quadratic",
    "run_sweep",
]
