"""Pareto-frontier extraction over design-space objectives.

The BitFusion paper's 16x16, 8-bit-fused configuration is the outcome of a
design-space exploration trading performance against energy and silicon
area; this module provides the reduction step of that exploration.  All
objectives are *minimized* (latency per inference, energy per inference,
area), and the frontier is the set of points no other point dominates.

The core routine works on plain objective vectors so it can be tested on
synthetic points independently of any simulation, and preserves input
order so frontiers are deterministic.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

__all__ = ["OBJECTIVES", "Objective", "dominates", "pareto_indices", "pareto_front"]

T = TypeVar("T")


class Objective:
    """One minimized metric: a name, a display unit and an extractor."""

    def __init__(
        self, name: str, unit: str, column: str, extract: Callable[..., float]
    ) -> None:
        self.name = name
        self.unit = unit
        #: Column header used in sweep tables.
        self.column = column
        self.extract = extract


#: Registry of the objectives a sweep spec may minimize.  Extractors take
#: an :class:`repro.dse.runner.EvaluatedPoint`.
OBJECTIVES: dict[str, Objective] = {
    "latency": Objective(
        "latency", "ms/inf", "latency (ms)", lambda point: point.latency_ms
    ),
    "energy": Objective(
        "energy", "mJ/inf", "energy (mJ)", lambda point: point.energy_mj
    ),
    "area": Objective("area", "mm2", "area (mm2)", lambda point: point.area_mm2),
}


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one (all objectives minimized).  Equal
    vectors do not dominate each other, so duplicated design points both
    survive onto the frontier.
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_indices(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors, in input order.

    Quadratic in the number of points, which is fine at design-space scale
    (tens to a few thousand points); the win is that the result is exact
    and deterministic.
    """
    frontier: list[int] = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(other, candidate) for j, other in enumerate(vectors) if j != i
        ):
            frontier.append(i)
    return frontier


def pareto_front(
    items: Sequence[T], objectives: Sequence[Callable[[T], float]]
) -> list[T]:
    """The non-dominated subset of ``items`` under the given objectives.

    ``objectives`` are extractor callables returning the minimized value of
    one metric; input order is preserved.
    """
    if not objectives:
        raise ValueError("pareto_front needs at least one objective")
    vectors = [tuple(objective(item) for objective in objectives) for item in items]
    return [items[i] for i in pareto_indices(vectors)]
