"""Pareto-frontier extraction over design-space objectives.

The BitFusion paper's 16x16, 8-bit-fused configuration is the outcome of a
design-space exploration trading performance against energy and silicon
area; this module provides the reduction step of that exploration.  All
objectives are *minimized* (latency per inference, energy per inference,
area), and the frontier is the set of points no other point dominates.

The core routine works on plain objective vectors so it can be tested on
synthetic points independently of any simulation, and preserves input
order so frontiers are deterministic.

:func:`pareto_indices` is sort-based: points are processed in lexicographic
order, where any dominator of a point sorts strictly before it, so each
point only needs checking against the *frontier found so far* — O(n log n)
for one or two objectives (a single scan with a running best suffices) and
O(n·f·d) beyond that, where ``f`` is the frontier size (typically tiny
compared to ``n``).  The original exhaustive all-pairs comparison survives
as :func:`pareto_indices_quadratic`, the reference oracle the fast path is
property-tested against — the two must return identical index lists on
every input.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Sequence, Tuple, TypeVar

__all__ = [
    "OBJECTIVES",
    "Objective",
    "ParetoArchive",
    "dominates",
    "pareto_indices",
    "pareto_indices_quadratic",
    "pareto_front",
]

T = TypeVar("T")


class Objective:
    """One minimized metric: a name, a display unit and an extractor."""

    def __init__(
        self, name: str, unit: str, column: str, extract: Callable[..., float]
    ) -> None:
        self.name = name
        self.unit = unit
        #: Column header used in sweep tables.
        self.column = column
        self.extract = extract


#: Registry of the objectives a sweep spec may minimize.  Extractors take
#: an :class:`repro.dse.runner.EvaluatedPoint`.
OBJECTIVES: dict[str, Objective] = {
    "latency": Objective(
        "latency", "ms/inf", "latency (ms)", lambda point: point.latency_ms
    ),
    "energy": Objective(
        "energy", "mJ/inf", "energy (mJ)", lambda point: point.energy_mj
    ),
    "area": Objective("area", "mm2", "area (mm2)", lambda point: point.area_mm2),
}


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b``.

    ``a`` dominates ``b`` when it is no worse on every objective and
    strictly better on at least one (all objectives minimized).  Equal
    vectors do not dominate each other, so duplicated design points both
    survive onto the frontier.
    """
    if len(a) != len(b):
        raise ValueError(f"objective vectors differ in length: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_indices_quadratic(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Reference frontier: exhaustive all-pairs domination checks.

    Quadratic in the number of points.  Kept as the oracle
    :func:`pareto_indices` is property-tested against; the two must agree
    exactly (same indices, same order) on every input.
    """
    frontier: list[int] = []
    for i, candidate in enumerate(vectors):
        if not any(
            dominates(other, candidate) for j, other in enumerate(vectors) if j != i
        ):
            frontier.append(i)
    return frontier


def pareto_indices(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors, in input order.

    Sort-based: processing points in lexicographic order guarantees every
    dominator of a point has already been processed (a dominator is
    componentwise ``<=`` and not equal, hence strictly lex-smaller), and by
    transitivity it suffices to compare each point against the current
    frontier.  Groups of identical vectors stand or fall together — equal
    vectors never dominate each other, so duplicated design points both
    survive onto the frontier, exactly as in the quadratic reference.  With
    at most two objectives the frontier check collapses to one running
    minimum and the whole reduction is O(n log n).
    """
    count = len(vectors)
    if count == 0:
        return []
    vecs = [tuple(vector) for vector in vectors]
    width = len(vecs[0])
    for vector in vecs:
        if len(vector) != width:
            raise ValueError(
                f"objective vectors differ in length: {width} vs {len(vector)}"
            )
    # NaN breaks both lexicographic sorting and the running-minimum fast
    # path; the oracle's semantics (a NaN-carrying point neither dominates
    # nor is dominated, so it always survives) only fall out of the
    # explicit all-pairs comparisons.  Degenerate inputs are rare, so
    # exactness beats speed here.
    if any(value != value for vector in vecs for value in vector):
        return pareto_indices_quadratic(vectors)

    order = sorted(range(count), key=lambda index: (vecs[index], index))
    survivors: list[int] = []
    # Fast path (one or two objectives): in lex order, a point is dominated
    # iff some earlier, non-identical vector has last-objective <= its own —
    # tracked by a single running minimum over previous vector groups.
    two_wide = width <= 2
    best_last = float("inf")
    frontier_vectors: list[tuple[float, ...]] = []
    start = 0
    while start < count:
        stop = start
        vector = vecs[order[start]]
        while stop < count and vecs[order[stop]] == vector:
            stop += 1
        if two_wide:
            alive = vector[-1] < best_last
            best_last = min(best_last, vector[-1])
        else:
            alive = not any(dominates(member, vector) for member in frontier_vectors)
            if alive:
                frontier_vectors.append(vector)
        if alive:
            survivors.extend(order[start:stop])
        start = stop
    return sorted(survivors)


class ParetoArchive(Generic[T]):
    """Incremental Pareto frontier over a stream of evaluated items.

    Feed batches of ``(item, objective_vector)`` pairs as a search produces
    them; the archive keeps only the currently non-dominated entries.  Each
    :meth:`extend` merges the surviving frontier with the new batch through
    one :func:`pareto_indices` pass, so a search never re-reduces its full
    evaluation history.  By transitivity of dominance this incremental
    frontier equals the frontier of everything ever fed (any point dominated
    by a discarded entry is also dominated by whichever frontier entry
    displaced it) — property-tested against the one-shot reduction.

    Insertion order among survivors is preserved, and — matching
    :func:`dominates` — entries with identical vectors all survive.
    """

    def __init__(self) -> None:
        self._entries: list[Tuple[T, tuple[float, ...]]] = []

    def extend(self, batch: Iterable[Tuple[T, Sequence[float]]]) -> None:
        """Merge a batch of ``(item, vector)`` pairs into the frontier."""
        merged = self._entries + [(item, tuple(vector)) for item, vector in batch]
        if not merged:
            return
        keep = pareto_indices([vector for _, vector in merged])
        self._entries = [merged[index] for index in keep]

    def add(self, item: T, vector: Sequence[float]) -> None:
        self.extend([(item, vector)])

    @property
    def items(self) -> list[T]:
        return [item for item, _ in self._entries]

    @property
    def vectors(self) -> list[tuple[float, ...]]:
        return [vector for _, vector in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterable[Tuple[T, tuple[float, ...]]]:
        return iter(self._entries)


def pareto_front(
    items: Sequence[T], objectives: Sequence[Callable[[T], float]]
) -> list[T]:
    """The non-dominated subset of ``items`` under the given objectives.

    ``objectives`` are extractor callables returning the minimized value of
    one metric; input order is preserved.
    """
    if not objectives:
        raise ValueError("pareto_front needs at least one objective")
    vectors = [tuple(objective(item) for objective in objectives) for item in items]
    return [items[i] for i in pareto_indices(vectors)]
