"""Declarative multi-axis sweep specifications (`SweepSpec`).

A :class:`SweepSpec` names a region of the Bit Fusion design space — the
cartesian product of benchmark networks, batch sizes and any combination of
hardware/compiler axes — and :meth:`~SweepSpec.expand`\\ s it into the
fingerprinted :class:`~repro.session.workload.Workload` grid the evaluation
session executes.  Specs are plain data: they load from JSON (or YAML when
PyYAML happens to be installed) so a design-space exploration is one file
plus ``python -m repro.harness sweep spec.json``.

Supported axes
--------------
Configuration axes (each maps onto one ``BitFusionConfig.with_*`` variation
point):

``array``
    Systolic-array geometry, ``[rows, columns]`` pairs.
``buffers``
    Scratchpad capacities, ``[ibuf_kb, wbuf_kb, obuf_kb]`` triples.  The
    only *compile-affecting* hardware axis: the tiling search targets the
    buffer capacities, so each distinct value compiles its own program.
``technology``
    Process node by name (``"45nm"``/``"16nm"``/``"65nm"``); scales energy
    and area via :class:`~repro.core.config.TechnologyNode`.
``bandwidth``
    Off-chip bandwidth in bits/cycle.
``frequency``
    Operating frequency in MHz.

Workload axes (orthogonal to the hardware configuration):

``fixed_bits``
    Force every layer to a fixed operand bitwidth (``null`` keeps the
    network's quantized per-layer widths).
``loop_ordering`` / ``layer_fusion``
    Fusion-compiler optimization flags (booleans).

Because workloads fingerprint everything and the compile stage is keyed
*structure-only* (network + batch + buffers + compiler flags — see
:func:`repro.session.engine.program_cache_key`), a sweep along the
``technology``, ``bandwidth``, ``frequency`` or ``array`` axes compiles
each network exactly once and re-simulates only what the axis actually
affects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.core.config import BitFusionConfig
from repro.session.workload import Workload

__all__ = [
    "CONFIG_AXES",
    "WORKLOAD_AXES",
    "BASE_CONFIGS",
    "DesignPoint",
    "SweepSpec",
    "expand_specs",
    "format_axis_value",
]

#: Named base configurations a spec can start from (paper configurations).
BASE_CONFIGS: dict[str, Callable[[int], BitFusionConfig]] = {
    "eyeriss_matched": lambda batch: BitFusionConfig.eyeriss_matched(batch_size=batch),
    "stripes_matched": lambda batch: BitFusionConfig.stripes_matched(batch_size=batch),
    "gpu_scaled_16nm": lambda batch: BitFusionConfig.gpu_scaled_16nm(batch_size=batch),
}


def _apply_array(config: BitFusionConfig, value: Any) -> BitFusionConfig:
    rows, columns = value
    return config.with_array(int(rows), int(columns))


def _apply_buffers(config: BitFusionConfig, value: Any) -> BitFusionConfig:
    ibuf, wbuf, obuf = value
    return config.with_buffers(float(ibuf), float(wbuf), float(obuf))


def _apply_technology(config: BitFusionConfig, value: Any) -> BitFusionConfig:
    return config.with_technology(str(value))


def _apply_bandwidth(config: BitFusionConfig, value: Any) -> BitFusionConfig:
    return config.with_bandwidth(int(value))


def _apply_frequency(config: BitFusionConfig, value: Any) -> BitFusionConfig:
    return config.with_frequency(float(value))


#: Configuration axes: name -> function applying one value to a config.
CONFIG_AXES: dict[str, Callable[[BitFusionConfig, Any], BitFusionConfig]] = {
    "array": _apply_array,
    "buffers": _apply_buffers,
    "technology": _apply_technology,
    "bandwidth": _apply_bandwidth,
    "frequency": _apply_frequency,
}

#: Axes that vary the workload rather than the hardware configuration.
WORKLOAD_AXES = ("fixed_bits", "loop_ordering", "layer_fusion")


def format_axis_value(axis: str, value: Any) -> str:
    """Render one axis value the way sweep tables display it."""
    if axis == "array":
        rows, columns = value
        return f"{rows}x{columns}"
    if axis == "buffers":
        ibuf, wbuf, obuf = value
        return f"{ibuf:g}/{wbuf:g}/{obuf:g}KB"
    if axis == "frequency":
        return f"{value:g}MHz"
    if axis == "bandwidth":
        return f"{value}b/c"
    return str(value)


def _hashable(value: Any) -> Any:
    """JSON axis values arrive as lists; settings tuples must be hashable."""
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    return value


@dataclass(frozen=True)
class DesignPoint:
    """One expanded point of a sweep: axis values plus the workload they name.

    ``settings`` holds the (axis, value) pairs in the spec's declaration
    order, so two points of the same sweep are always labeled consistently
    and the grid table has one column per axis.
    """

    network: str
    batch_size: int
    settings: tuple[tuple[str, Any], ...]
    workload: Workload

    def setting(self, axis: str) -> Any:
        """The value this point takes on one axis; KeyError if absent."""
        for name, value in self.settings:
            if name == axis:
                return value
        raise KeyError(f"design point has no axis {axis!r}")

    def label(self) -> str:
        """Compact human-readable identity of the point."""
        parts = [self.network, f"b{self.batch_size}"]
        parts.extend(
            f"{axis}={format_axis_value(axis, value)}" for axis, value in self.settings
        )
        return " ".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative multi-axis design-space sweep.

    Attributes
    ----------
    networks:
        Benchmark names from the model zoo (aliases accepted).
    batch_sizes:
        Inference batch sizes to cross with every axis.
    axes:
        Mapping of axis name (:data:`CONFIG_AXES` or :data:`WORKLOAD_AXES`)
        to the tuple of values to sweep, in declaration order.
    base_config:
        Named starting configuration (:data:`BASE_CONFIGS`); every
        configuration axis varies a copy of it.
    objectives:
        Metric names the Pareto frontier minimizes, in priority-free order
        (see :mod:`repro.dse.pareto`).
    name:
        Label used in reports.
    """

    networks: tuple[str, ...]
    batch_sizes: tuple[int, ...] = (16,)
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    base_config: str = "eyeriss_matched"
    objectives: tuple[str, ...] = ("latency", "energy", "area")
    name: str = "design-space sweep"

    def __post_init__(self) -> None:
        if not self.networks:
            raise ValueError("a sweep spec needs at least one network")
        if not self.batch_sizes:
            raise ValueError("a sweep spec needs at least one batch size")
        if self.base_config not in BASE_CONFIGS:
            raise ValueError(
                f"unknown base_config {self.base_config!r}; "
                f"expected one of {sorted(BASE_CONFIGS)}"
            )
        known = set(CONFIG_AXES) | set(WORKLOAD_AXES)
        for axis, values in self.axes:
            if axis not in known:
                raise ValueError(
                    f"unknown sweep axis {axis!r}; expected one of {sorted(known)}"
                )
            if not values:
                raise ValueError(f"sweep axis {axis!r} has no values")
        # Objectives are validated here, not first at reduction time: a
        # misspelled objective must fail before a wide grid simulates.
        from repro.dse.pareto import OBJECTIVES

        if not self.objectives:
            raise ValueError("a sweep spec needs at least one objective")
        for objective in self.objectives:
            if objective not in OBJECTIVES:
                raise ValueError(
                    f"unknown objective {objective!r}; expected one of {sorted(OBJECTIVES)}"
                )

    # ------------------------------------------------------------------ #
    # Construction from plain data
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a JSON/YAML-shaped dictionary.

        Expected shape (only ``networks`` is required)::

            {
              "name": "array x buffers x node",
              "networks": ["LeNet-5"],
              "batch_sizes": [16],
              "base_config": "eyeriss_matched",
              "axes": {
                "array": [[16, 16], [32, 16]],
                "buffers": [[32, 64, 16], [64, 128, 32]],
                "technology": ["45nm", "16nm"]
              },
              "objectives": ["latency", "energy", "area"]
            }
        """
        known_keys = {"name", "networks", "batch_sizes", "base_config", "axes", "objectives"}
        unknown = set(payload) - known_keys
        if unknown:
            raise ValueError(
                f"unknown sweep spec key(s) {sorted(unknown)}; expected {sorted(known_keys)}"
            )
        if "networks" not in payload:
            raise ValueError("a sweep spec needs a 'networks' list")
        if isinstance(payload["networks"], (str, bytes)) or not isinstance(
            payload["networks"], (list, tuple)
        ):
            raise ValueError(f"'networks' must be a list of names, got {payload['networks']!r}")
        axes_payload = payload.get("axes", {})
        if not isinstance(axes_payload, Mapping):
            raise ValueError("'axes' must be a mapping of axis name to value list")
        for axis, values in axes_payload.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, (list, tuple)):
                raise ValueError(f"axis {axis!r} must map to a list of values, got {values!r}")
        axes = tuple(
            (axis, tuple(_hashable(value) for value in values))
            for axis, values in axes_payload.items()
        )
        kwargs: dict[str, Any] = {
            "networks": tuple(payload["networks"]),
            "axes": axes,
        }
        if "batch_sizes" in payload:
            kwargs["batch_sizes"] = tuple(payload["batch_sizes"])
        if "base_config" in payload:
            kwargs["base_config"] = payload["base_config"]
        if "objectives" in payload:
            kwargs["objectives"] = tuple(payload["objectives"])
        if "name" in payload:
            kwargs["name"] = payload["name"]
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        """Load a spec from a ``.json`` (always) or ``.yaml``/``.yml`` file.

        YAML support is optional: it is used only when PyYAML is importable,
        and a YAML spec on a machine without it gets a clear error telling
        the user to convert to JSON instead.
        """
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() in (".yaml", ".yml"):
            try:
                import yaml  # type: ignore[import-not-found]
            except ImportError:
                raise RuntimeError(
                    f"{path.name} is YAML but PyYAML is not installed; "
                    "convert the spec to JSON (the schema is identical)"
                ) from None
            payload = yaml.safe_load(text)
        else:
            payload = json.loads(text)
        if not isinstance(payload, Mapping):
            raise ValueError(f"sweep spec {path} must contain a JSON/YAML object")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis for axis, _ in self.axes)

    def grid_size(self) -> int:
        """Number of design points the spec expands to."""
        size = len(self.networks) * len(self.batch_sizes)
        for _, values in self.axes:
            size *= len(values)
        return size

    def expand(self) -> list[DesignPoint]:
        """Expand to the full, deterministic grid of design points.

        The grid order is the cartesian product of networks x batch sizes x
        axis values, iterated in declaration order, so a spec always expands
        to the same point sequence (and hence the same report layout).
        """
        points: list[DesignPoint] = []
        value_lists = [values for _, values in self.axes]
        base = BASE_CONFIGS[self.base_config]
        for network, batch in product(self.networks, self.batch_sizes):
            for combination in product(*value_lists):
                settings = tuple(zip(self.axis_names, combination))
                config = base(batch)
                fixed_bits: int | None = None
                loop_ordering = True
                layer_fusion = True
                for axis, value in settings:
                    if axis in CONFIG_AXES:
                        config = CONFIG_AXES[axis](config, value)
                    elif axis == "fixed_bits":
                        fixed_bits = None if value is None else int(value)
                    elif axis == "loop_ordering":
                        loop_ordering = bool(value)
                    elif axis == "layer_fusion":
                        layer_fusion = bool(value)
                workload = Workload.bitfusion(
                    network,
                    batch_size=batch,
                    config=config,
                    fixed_bits=fixed_bits,
                    enable_loop_ordering=loop_ordering,
                    enable_layer_fusion=layer_fusion,
                )
                points.append(
                    DesignPoint(
                        network=workload.network,
                        batch_size=batch,
                        settings=settings,
                        workload=workload,
                    )
                )
        return points

    def describe(self) -> str:
        """One-line summary of the grid (axis sizes and point count)."""
        parts = [f"{len(self.networks)} network(s)", f"{len(self.batch_sizes)} batch(es)"]
        parts.extend(f"{axis}[{len(values)}]" for axis, values in self.axes)
        return f"{self.name}: {' x '.join(parts)} = {self.grid_size()} design points"


def expand_specs(specs: Iterable[SweepSpec]) -> list[DesignPoint]:
    """Expand several specs into one flat point list (convenience helper)."""
    points: list[DesignPoint] = []
    for spec in specs:
        points.extend(spec.expand())
    return points
