"""Sweep execution: expand a spec, run it through a session, reduce to tables.

:func:`run_sweep` is the whole subsystem end to end: a
:class:`~repro.dse.spec.SweepSpec` expands to its fingerprinted workload
grid, the grid executes through an
:class:`~repro.session.session.EvaluationSession` (and therefore through
the two-level artifact cache — a technology/bandwidth/array sweep compiles
each network exactly once), and every point is distilled into an
:class:`EvaluatedPoint` carrying the minimized objective metrics.  The
:class:`DesignSpaceResult` holds the full grid plus its Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.dse.pareto import OBJECTIVES, ParetoArchive, pareto_front
from repro.dse.spec import DesignPoint, SweepSpec, format_axis_value
from repro.energy.components import accelerator_area_mm2
from repro.session.backends import ExecutionBackend
from repro.session.engine import QuarantineRecord, WorkloadExecutionError
from repro.session.session import EvaluationSession, resolve_session
from repro.session.workload import Workload
from repro.sim.results import NetworkResult

__all__ = ["EvaluatedPoint", "DesignSpaceResult", "run_sweep"]


@dataclass(frozen=True)
class EvaluatedPoint:
    """One design point together with its simulated result and metrics."""

    point: DesignPoint
    result: NetworkResult

    @property
    def latency_ms(self) -> float:
        """Latency per inference, milliseconds (minimized objective)."""
        return self.result.latency_per_inference_s * 1e3

    @property
    def energy_mj(self) -> float:
        """Energy per inference, millijoules (minimized objective)."""
        return self.result.energy_per_inference_j * 1e3

    @property
    def area_mm2(self) -> float:
        """Accelerator area at the point's technology node, mm² (minimized)."""
        return accelerator_area_mm2(self.point.workload.config)

    @property
    def throughput_gops(self) -> float:
        """Delivered throughput, GOPS (reported, not an objective)."""
        return self.result.effective_throughput_gops

    def objective_value(self, name: str) -> float:
        """The value of one registered objective at this point."""
        try:
            objective = OBJECTIVES[name]
        except KeyError:
            raise ValueError(
                f"unknown objective {name!r}; expected one of {sorted(OBJECTIVES)}"
            ) from None
        return objective.extract(self)

    def as_row(self, on_frontier: bool | None = None) -> dict[str, Any]:
        """Table row: one column per axis, then the metric columns."""
        row: dict[str, Any] = {
            "network": self.point.network,
            "batch": self.point.batch_size,
        }
        for axis, value in self.point.settings:
            row[axis] = format_axis_value(axis, value)
        # Three significant digits as strings: the metrics span microjoules
        # (LeNet-5) to millijoules (AlexNet), which fixed two-decimal float
        # formatting would collapse to 0.00.
        row["latency (ms)"] = f"{self.latency_ms:.3g}"
        row["energy (mJ)"] = f"{self.energy_mj:.3g}"
        row["area (mm2)"] = f"{self.area_mm2:.3g}"
        row["GOPS"] = f"{self.throughput_gops:.4g}"
        if on_frontier is not None:
            row["pareto"] = "*" if on_frontier else ""
        return row


class DesignSpaceResult:
    """The evaluated grid of one sweep plus its Pareto frontier.

    ``quarantined`` lists the workloads that failed execution twice and were
    excluded from the grid (see :func:`run_sweep` with
    ``allow_failures=True``); empty on a clean run.  ``streamed`` optionally
    carries the per-(network, batch) incremental
    :class:`~repro.dse.pareto.ParetoArchive` frontiers accumulated while the
    sweep ran — by transitivity of dominance they hold exactly the same
    frontier membership :meth:`pareto` computes one-shot from the full grid
    (property-tested), but are available live, point by point, during a
    resumable run.
    """

    def __init__(
        self,
        spec: SweepSpec,
        points: list[EvaluatedPoint],
        quarantined: tuple[QuarantineRecord, ...] = (),
        streamed: dict[tuple[str, int], ParetoArchive] | None = None,
    ) -> None:
        self.spec = spec
        self.points = tuple(points)
        self.quarantined = tuple(quarantined)
        self.streamed = streamed
        self._frontier: list[EvaluatedPoint] | None = None
        for name in spec.objectives:
            if name not in OBJECTIVES:
                raise ValueError(
                    f"unknown objective {name!r}; expected one of {sorted(OBJECTIVES)}"
                )

    def __iter__(self) -> Iterator[EvaluatedPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def pareto(self) -> list[EvaluatedPoint]:
        """The non-dominated points under the spec's objectives, per network.

        Frontiers are extracted within each (network, batch) group — a small
        network would otherwise dominate a large one on every objective and
        collapse the frontier to the easiest benchmark.  Extraction is the
        sort-based :func:`~repro.dse.pareto.pareto_indices` (O(n log n) for
        up to two objectives); the result is memoized (points are immutable
        after construction) so a full report pays for it once.
        """
        if self._frontier is not None:
            return list(self._frontier)
        frontier: list[EvaluatedPoint] = []
        extractors = [OBJECTIVES[name].extract for name in self.spec.objectives]
        for network, batch in {
            (point.point.network, point.point.batch_size): None for point in self.points
        }:
            group = [
                point
                for point in self.points
                if point.point.network == network and point.point.batch_size == batch
            ]
            frontier.extend(pareto_front(group, extractors))
        self._frontier = frontier
        return list(frontier)

    def rows(self) -> list[dict[str, Any]]:
        """All grid rows, frontier members marked in the ``pareto`` column."""
        on_frontier = {id(point) for point in self.pareto()}
        return [point.as_row(id(point) in on_frontier) for point in self.points]

    def pareto_rows(self) -> list[dict[str, Any]]:
        """Rows of the Pareto frontier only."""
        return [point.as_row() for point in self.pareto()]

    def streamed_pareto(self) -> list[EvaluatedPoint]:
        """Frontier members accumulated incrementally while the sweep ran.

        Falls back to :meth:`pareto` when the sweep did not stream (points
        supplied directly).  Membership equals :meth:`pareto` exactly —
        ordering follows result-arrival (schedule) order rather than grid
        order, which is why report tables render from :meth:`pareto`.
        """
        if self.streamed is None:
            return self.pareto()
        members: list[EvaluatedPoint] = []
        for archive in self.streamed.values():
            members.extend(archive.items)
        return members


def run_sweep(
    spec: SweepSpec,
    session: EvaluationSession | None = None,
    *,
    allow_failures: bool = False,
    backend: "ExecutionBackend | None" = None,
) -> DesignSpaceResult:
    """Expand and execute a sweep spec; returns the evaluated design space.

    All points go through :meth:`EvaluationSession.run_many
    <repro.session.session.EvaluationSession.run_many>` in one batch, so
    duplicate points collapse onto one simulation, uncached points schedule
    longest-job-first across ``--jobs`` workers, and the per-stage artifact
    cache (programs keyed structure-only, blocks with a content-addressed
    layer-level fallback) is shared with every other experiment the session
    ran.  Parallel sweeps are warm-artifact aware: the main process compiles
    centrally and ships workers only cache-missing blocks, and the session's
    per-stage statistics (``session.stats``, rendered in the report footer)
    include the worker-side reuse — work units dispatched, blocks simulated
    remotely and blocks served from the cache instead.  Serial sweeps batch
    the simulation stage instead: the missing blocks of *every* point in
    the batch go through the vectorized executor in as few numpy passes as
    possible (:func:`~repro.session.engine.simulate_planned_blocks`), and
    points that differ only in simulation parameters (bandwidth, frequency,
    technology — same compiled blocks) collapse into one 2-D
    configs × blocks grid evaluation.

    The Pareto reduction streams: as each unique workload's result lands
    (cache hit or fresh commit), every grid point it backs feeds its
    per-(network, batch) :class:`~repro.dse.pareto.ParetoArchive`, so a
    checkpointed, resumable sweep always has a live incremental frontier —
    the archives ride on the result under ``streamed``.

    ``allow_failures=True`` makes a quarantine survivable: when the session
    raises :class:`~repro.session.engine.WorkloadExecutionError` (each
    failed workload has already been retried once), the sweep drops exactly
    the quarantined points, re-collects the survivors from the now-warm
    session (pure cache hits — nothing re-executes), and returns the
    reduced grid with ``quarantined`` filled in.  With the default
    ``allow_failures=False`` the error propagates after surviving artifacts
    are stored, preserving the historical contract.

    ``backend`` (mutually exclusive with ``session``) runs the sweep in a
    sweep-owned session on that
    :class:`~repro.session.backends.ExecutionBackend` — e.g. a
    ``RemoteBackend`` sharding work units across worker daemons — closed
    when the sweep returns.
    """
    if backend is not None:
        if session is not None:
            raise ValueError("pass either session or backend, not both")
        owned = EvaluationSession(backend=backend)
        try:
            return run_sweep(spec, owned, allow_failures=allow_failures)
        finally:
            owned.close()
    points = spec.expand()
    extractors = [OBJECTIVES[name].extract for name in spec.objectives]
    # A unique workload may back several grid points (duplicate settings);
    # each arrival feeds every point it backs into its group's archive.
    by_fingerprint: dict[str, list[DesignPoint]] = {}
    for point in points:
        by_fingerprint.setdefault(point.workload.fingerprint(), []).append(point)
    archives: dict[tuple[str, int], ParetoArchive] = {}

    def on_result(workload: Workload, result: NetworkResult) -> None:
        for point in by_fingerprint.get(workload.fingerprint(), ()):
            evaluated = EvaluatedPoint(point=point, result=result)
            group = archives.setdefault(
                (point.network, point.batch_size), ParetoArchive()
            )
            group.add(evaluated, [extract(evaluated) for extract in extractors])

    active = resolve_session(session)
    quarantined: tuple[QuarantineRecord, ...] = ()
    workloads = [point.workload for point in points]
    try:
        results = active.run_many(workloads, on_result=on_result)
    except WorkloadExecutionError as error:
        if not allow_failures:
            raise
        quarantined = error.quarantined
        dropped = {record.fingerprint for record in quarantined}
        points = [
            point for point in points if point.workload.fingerprint() not in dropped
        ]
        # Survivors were all committed before the session raised; this
        # collection pass is pure cache hits.  No ``on_result`` — the
        # archives already saw every survivor exactly once.
        results = active.run_many([point.workload for point in points])
    return DesignSpaceResult(
        spec,
        [EvaluatedPoint(point=point, result=result) for point, result in zip(points, results)],
        quarantined=quarantined,
        streamed=archives,
    )
