"""Rendering of design-space sweep results as report sections.

One formatting path serves both surfaces: the ``python -m repro.harness
sweep`` subcommand prints :func:`format_sweep_report` (grid + frontier +
objective summary), and the full report's ``dse`` section embeds the same
tables for its built-in exploration.
"""

from __future__ import annotations

from repro.dse.pareto import OBJECTIVES
from repro.dse.runner import DesignSpaceResult
from repro.harness.reporting import format_table

__all__ = ["format_sweep_report", "format_pareto_table"]


def format_pareto_table(result: DesignSpaceResult) -> str:
    """The Pareto frontier as an aligned table (per-network frontiers)."""
    objectives = ", ".join(
        f"{OBJECTIVES[name].name} ({OBJECTIVES[name].unit})"
        for name in result.spec.objectives
    )
    return format_table(
        result.pareto_rows(),
        title=f"Pareto frontier minimizing {objectives}",
    )


def format_sweep_report(result: DesignSpaceResult) -> str:
    """Full sweep report: grid summary, every point, and the frontier."""
    frontier = result.pareto()
    sections = [
        result.spec.describe(),
        "",
        format_table(result.rows(), title="Design-space grid (* = Pareto-optimal)"),
        "",
        format_pareto_table(result),
        "",
        f"{len(frontier)} of {len(result)} design points are Pareto-optimal.",
    ]
    return "\n".join(sections)
