"""Decomposition of wide multiplies onto 2-bit BitBricks.

The mathematical property that enables Bit Fusion (paper Section III,
Equations 1–3, Figures 6 and 7) is that a multiply between operands with
power-of-two bitwidths decomposes into 2-bit multiplies whose products are
shifted by the positional weight of each 2-bit slice and summed:

    A × B = Σ_i Σ_j (A_i × B_j) << (2·i + 2·j)

where ``A_i`` is the i-th 2-bit slice of A.  For signed operands the most
significant slice is interpreted as signed (two's complement) while the
lower slices are unsigned; this matches the BitBrick's per-operand sign
flag (only the brick handling the top slice asserts it).

This module provides:

* :func:`decompose_operand` — slice an integer into 2-bit fields with per
  slice sign flags,
* :func:`decompose_multiply` — produce the full list of brick operations
  (operand slices + shift amounts) for an ``(a_bits × b_bits)`` multiply,
* :func:`recompose_product` — execute those brick operations on functional
  :class:`~repro.core.bitbrick.BitBrick` instances and shift-add the
  results, reproducing the original product exactly.

These functions are used both by the functional tests (to prove the fusion
arithmetic is lossless for every supported bitwidth combination) and by the
Fusion Unit model to derive how many bricks a Fused-PE consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitbrick import BitBrick

__all__ = [
    "OperandSlice",
    "BrickOperation",
    "DecomposedMultiply",
    "decompose_operand",
    "decompose_multiply",
    "recompose_product",
    "bricks_required",
    "SUPPORTED_BITWIDTHS",
]

#: Operand bitwidths the Bit Fusion fabric supports.  A 1-bit (binary) or
#: ternary operand maps onto a 2-bit brick input, so 1 is accepted as an
#: alias of 2 when counting bricks, but decomposition always works on the
#: encoded bitwidth (2, 4, 8 or 16).
SUPPORTED_BITWIDTHS = (2, 4, 8, 16)

_SLICE_BITS = 2


def _validate_bitwidth(bits: int, name: str) -> int:
    if bits not in SUPPORTED_BITWIDTHS:
        raise ValueError(
            f"{name} bitwidth must be one of {SUPPORTED_BITWIDTHS}, got {bits}"
        )
    return bits


def _operand_bounds(bits: int, signed: bool) -> tuple[int, int]:
    if signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


@dataclass(frozen=True)
class OperandSlice:
    """A single 2-bit slice of a wider operand.

    Attributes
    ----------
    value:
        Numeric value of the slice: 0..3 for unsigned slices, -2..1 for the
        signed most-significant slice of a signed operand.
    shift:
        Positional weight of the slice in bits (0, 2, 4, ...).
    signed:
        Whether the slice is interpreted as two's complement.
    """

    value: int
    shift: int
    signed: bool


@dataclass(frozen=True)
class BrickOperation:
    """One BitBrick multiply inside a decomposed wide multiply."""

    x: OperandSlice
    y: OperandSlice

    @property
    def shift(self) -> int:
        """Total left-shift applied to this brick's product."""
        return self.x.shift + self.y.shift

    @property
    def signed_x(self) -> bool:
        return self.x.signed

    @property
    def signed_y(self) -> bool:
        return self.y.signed


@dataclass(frozen=True)
class DecomposedMultiply:
    """Full decomposition of one wide multiply into brick operations."""

    a: int
    b: int
    a_bits: int
    b_bits: int
    a_signed: bool
    b_signed: bool
    operations: tuple[BrickOperation, ...] = field(default_factory=tuple)

    @property
    def brick_count(self) -> int:
        """Number of BitBricks this multiply occupies when fully spatial."""
        return len(self.operations)

    @property
    def expected_product(self) -> int:
        return self.a * self.b


def decompose_operand(value: int, bits: int, signed: bool) -> list[OperandSlice]:
    """Slice ``value`` into 2-bit fields with positional shifts.

    The least significant slice comes first.  For signed operands the top
    slice carries the sign; all other slices are unsigned.  The sum of
    ``slice.value << slice.shift`` over the returned slices equals
    ``value`` exactly.
    """
    _validate_bitwidth(bits, "operand")
    lo, hi = _operand_bounds(bits, signed)
    if not lo <= value <= hi:
        kind = "signed" if signed else "unsigned"
        raise ValueError(
            f"value {value} out of range for {kind} {bits}-bit operand [{lo}, {hi}]"
        )

    word = value & ((1 << bits) - 1)
    n_slices = bits // _SLICE_BITS
    slices: list[OperandSlice] = []
    for index in range(n_slices):
        raw = (word >> (index * _SLICE_BITS)) & ((1 << _SLICE_BITS) - 1)
        is_top = index == n_slices - 1
        slice_signed = signed and is_top
        if slice_signed:
            # Interpret the top 2-bit field as two's complement.
            slice_value = raw - ((raw & 0b10) << 1)
        else:
            slice_value = raw
        slices.append(
            OperandSlice(value=slice_value, shift=index * _SLICE_BITS, signed=slice_signed)
        )
    return slices


def decompose_multiply(
    a: int,
    b: int,
    a_bits: int,
    b_bits: int,
    a_signed: bool = True,
    b_signed: bool = True,
) -> DecomposedMultiply:
    """Decompose ``a × b`` into the 2-bit brick operations Bit Fusion executes.

    Every pair of an ``a`` slice and a ``b`` slice yields one brick
    operation, so an ``a_bits × b_bits`` multiply occupies
    ``(a_bits/2) × (b_bits/2)`` BitBricks — the quadratic saving the paper
    exploits when bitwidths shrink.
    """
    a_slices = decompose_operand(a, a_bits, a_signed)
    b_slices = decompose_operand(b, b_bits, b_signed)
    operations = tuple(
        BrickOperation(x=sa, y=sb) for sa in a_slices for sb in b_slices
    )
    return DecomposedMultiply(
        a=a,
        b=b,
        a_bits=a_bits,
        b_bits=b_bits,
        a_signed=a_signed,
        b_signed=b_signed,
        operations=operations,
    )


def recompose_product(decomposition: DecomposedMultiply) -> int:
    """Execute a decomposition on functional BitBricks and shift-add the results.

    This mirrors the Fusion Unit's shift-add tree: each brick multiplies its
    two 2-bit slices, the product is left-shifted by the slice positional
    weights, and all shifted products are summed.
    """
    total = 0
    for op in decomposition.operations:
        brick = BitBrick(signed_x=op.signed_x, signed_y=op.signed_y)
        product = brick(op.x.value, op.y.value)
        total += product << op.shift
    return total


def bricks_required(a_bits: int, b_bits: int) -> int:
    """Number of BitBricks a single ``a_bits × b_bits`` multiply occupies.

    Bitwidths of 1 (binary/ternary encodings) occupy a full 2-bit brick
    input, so they count as 2 bits here.
    """
    a_eff = max(2, a_bits)
    b_eff = max(2, b_bits)
    _validate_bitwidth(a_eff, "a")
    _validate_bitwidth(b_eff, "b")
    return (a_eff // _SLICE_BITS) * (b_eff // _SLICE_BITS)
