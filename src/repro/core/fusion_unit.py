"""Fusion Unit: 16 BitBricks that fuse spatially into Fused-PEs.

A Fusion Unit (paper Figures 2 and 9) is a 4×4 physical grid of BitBricks.
At run time the bricks *logically* fuse into Fused Processing Engines
(Fused-PEs) that match the operand bitwidths of the current DNN layer:

====================  =====================  ======================
Configuration          BitBricks per F-PE     F-PEs per Fusion Unit
====================  =====================  ======================
2-bit × 2-bit          1                      16
2-bit × 4-bit          2                      8
4-bit × 4-bit          4                      4
2-bit × 8-bit          4                      4
4-bit × 8-bit          8                      2
8-bit × 8-bit          16                     1
====================  =====================  ======================

Spatial fusion covers operands up to 8 bits; 16-bit operands use the hybrid
spatio-temporal scheme of Section III-C — the unit runs in its 8-bit spatial
configuration and iterates over the 8-bit halves of the wide operand across
cycles (2 passes for 16×8, 4 passes for 16×16).

The :class:`FusionUnit` class is both a *functional* model (it really
multiplies and accumulates through per-brick 2-bit multiplies so the
arithmetic can be checked bit-exactly against NumPy) and a *performance*
model (it reports how many multiply-accumulates it retires per cycle in a
given configuration, which the systolic-array cycle model consumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.decompose import decompose_multiply, recompose_product

__all__ = [
    "FusionConfig",
    "fusion_config_for",
    "FusionUnit",
    "BITBRICKS_PER_FUSION_UNIT",
    "MAX_SPATIAL_OPERAND_BITS",
    "MAX_OPERAND_BITS",
    "supported_configurations",
]

#: Number of BitBricks physically present in one Fusion Unit.
BITBRICKS_PER_FUSION_UNIT = 16

#: Largest operand bitwidth handled purely spatially (one cycle).
MAX_SPATIAL_OPERAND_BITS = 8

#: Largest operand bitwidth supported at all (via temporal iteration).
MAX_OPERAND_BITS = 16

#: Partial sums are carried at 32 bits to avoid accumulation error (Fig. 4).
PARTIAL_SUM_BITS = 32

_VALID_BITS = (1, 2, 4, 8, 16)


def _effective_bits(bits: int) -> int:
    """Encoded bitwidth an operand occupies on the fabric (1-bit rides a 2-bit lane)."""
    return max(2, bits)


@dataclass(frozen=True)
class FusionConfig:
    """Resolved fusion configuration for one ``(input_bits, weight_bits)`` pair.

    Attributes
    ----------
    input_bits, weight_bits:
        Requested operand bitwidths (1, 2, 4, 8 or 16).
    spatial_input_bits, spatial_weight_bits:
        Bitwidths handled spatially per temporal pass (capped at 8).
    bricks_per_fpe:
        BitBricks consumed by one Fused-PE in the spatial configuration.
    fused_pes:
        Fused-PEs formed inside one Fusion Unit.
    temporal_passes:
        Cycles needed per multiply-accumulate due to >8-bit operands.
    """

    input_bits: int
    weight_bits: int
    spatial_input_bits: int
    spatial_weight_bits: int
    bricks_per_fpe: int
    fused_pes: int
    temporal_passes: int

    @property
    def macs_per_cycle(self) -> float:
        """Multiply-accumulates one Fusion Unit retires per cycle."""
        return self.fused_pes / self.temporal_passes

    @property
    def parallelism_vs_8bit(self) -> float:
        """Speedup factor relative to the 8-bit × 8-bit configuration."""
        return self.macs_per_cycle / 1.0

    @property
    def input_lane_bits(self) -> int:
        """Bits of input data one Fused-PE consumes per cycle."""
        return _effective_bits(min(self.input_bits, MAX_SPATIAL_OPERAND_BITS))

    @property
    def weight_lane_bits(self) -> int:
        """Bits of weight data one Fused-PE consumes per cycle."""
        return _effective_bits(min(self.weight_bits, MAX_SPATIAL_OPERAND_BITS))


def fusion_config_for(input_bits: int, weight_bits: int) -> FusionConfig:
    """Resolve the fusion configuration for a pair of operand bitwidths.

    Raises :class:`ValueError` for bitwidths outside {1, 2, 4, 8, 16}.
    """
    if input_bits not in _VALID_BITS:
        raise ValueError(
            f"input bitwidth must be one of {_VALID_BITS}, got {input_bits}"
        )
    if weight_bits not in _VALID_BITS:
        raise ValueError(
            f"weight bitwidth must be one of {_VALID_BITS}, got {weight_bits}"
        )

    spatial_in = min(_effective_bits(input_bits), MAX_SPATIAL_OPERAND_BITS)
    spatial_wt = min(_effective_bits(weight_bits), MAX_SPATIAL_OPERAND_BITS)

    bricks_per_fpe = (spatial_in // 2) * (spatial_wt // 2)
    fused_pes = BITBRICKS_PER_FUSION_UNIT // bricks_per_fpe

    temporal_in = _effective_bits(input_bits) // spatial_in
    temporal_wt = _effective_bits(weight_bits) // spatial_wt
    temporal_passes = temporal_in * temporal_wt

    return FusionConfig(
        input_bits=input_bits,
        weight_bits=weight_bits,
        spatial_input_bits=spatial_in,
        spatial_weight_bits=spatial_wt,
        bricks_per_fpe=bricks_per_fpe,
        fused_pes=fused_pes,
        temporal_passes=temporal_passes,
    )


def supported_configurations() -> list[FusionConfig]:
    """Enumerate every fusion configuration the fabric supports."""
    configs = []
    for ib in _VALID_BITS:
        for wb in _VALID_BITS:
            configs.append(fusion_config_for(ib, wb))
    return configs


class FusionUnit:
    """Functional + performance model of a single Fusion Unit.

    The unit is configured once per instruction block (per layer) via
    :meth:`configure`, mirroring the ``setup`` instruction of the
    Fusion-ISA.  After configuration it accepts vectors of inputs and
    weights sized to its current parallelism and produces the dot-product
    contribution it would add to the incoming partial sum.
    """

    def __init__(self) -> None:
        self._config: FusionConfig | None = None
        self.total_brick_multiplies = 0
        self.total_macs = 0

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure(self, input_bits: int, weight_bits: int) -> FusionConfig:
        """Fuse the BitBricks for the given operand bitwidths."""
        self._config = fusion_config_for(input_bits, weight_bits)
        return self._config

    @property
    def config(self) -> FusionConfig:
        if self._config is None:
            raise RuntimeError(
                "FusionUnit is not configured; call configure(input_bits, weight_bits) first"
            )
        return self._config

    @property
    def is_configured(self) -> bool:
        return self._config is not None

    # ------------------------------------------------------------------ #
    # Functional execution
    # ------------------------------------------------------------------ #
    def _check_operand(self, value: int, bits: int, signed: bool, name: str) -> None:
        if signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        if not lo <= value <= hi:
            kind = "signed" if signed else "unsigned"
            raise ValueError(
                f"{name}={value} out of range for {kind} {bits}-bit operand [{lo}, {hi}]"
            )

    def multiply_accumulate(
        self,
        inputs: Sequence[int],
        weights: Sequence[int],
        partial_sum: int = 0,
        signed_inputs: bool = True,
        signed_weights: bool = True,
    ) -> int:
        """Compute ``partial_sum + Σ inputs[i] * weights[i]`` through BitBricks.

        ``inputs`` and ``weights`` must have exactly ``config.fused_pes``
        elements — one multiply per Fused-PE, exactly what the unit retires
        per temporal-pass group.  Every multiply is executed by decomposing
        the operands onto 2-bit bricks and shift-adding the brick products,
        so the result is provably identical to the integer dot product while
        exercising the real fusion datapath.
        """
        cfg = self.config
        if len(inputs) != cfg.fused_pes or len(weights) != cfg.fused_pes:
            raise ValueError(
                f"expected {cfg.fused_pes} input/weight pairs for the "
                f"{cfg.input_bits}x{cfg.weight_bits} configuration, got "
                f"{len(inputs)} inputs and {len(weights)} weights"
            )

        a_bits = _effective_bits(cfg.input_bits)
        w_bits = _effective_bits(cfg.weight_bits)

        acc = int(partial_sum)
        for x, w in zip(inputs, weights):
            x = int(x)
            w = int(w)
            self._check_operand(x, a_bits, signed_inputs, "input")
            self._check_operand(w, w_bits, signed_weights, "weight")
            decomposition = decompose_multiply(
                x, w, a_bits, w_bits, a_signed=signed_inputs, b_signed=signed_weights
            )
            acc += recompose_product(decomposition)
            self.total_brick_multiplies += decomposition.brick_count
            self.total_macs += 1

        self._check_partial_sum(acc)
        return acc

    @staticmethod
    def _check_partial_sum(value: int) -> None:
        lo = -(1 << (PARTIAL_SUM_BITS - 1))
        hi = (1 << (PARTIAL_SUM_BITS - 1)) - 1
        if not lo <= value <= hi:
            raise OverflowError(
                f"partial sum {value} exceeds the {PARTIAL_SUM_BITS}-bit accumulator"
            )

    def dot_product(
        self,
        inputs: Iterable[int],
        weights: Iterable[int],
        signed_inputs: bool = True,
        signed_weights: bool = True,
    ) -> int:
        """Dot product of arbitrary-length vectors, chunked by Fused-PE count.

        Vectors whose length is not a multiple of the Fused-PE count are
        zero-padded, matching how the compiler pads the innermost loop.
        """
        cfg = self.config
        xs = [int(v) for v in inputs]
        ws = [int(v) for v in weights]
        if len(xs) != len(ws):
            raise ValueError(
                f"input and weight vectors must have equal length, got {len(xs)} and {len(ws)}"
            )
        acc = 0
        step = cfg.fused_pes
        for start in range(0, len(xs), step):
            chunk_x = xs[start : start + step]
            chunk_w = ws[start : start + step]
            pad = step - len(chunk_x)
            if pad:
                chunk_x = chunk_x + [0] * pad
                chunk_w = chunk_w + [0] * pad
            acc = self.multiply_accumulate(
                chunk_x,
                chunk_w,
                partial_sum=acc,
                signed_inputs=signed_inputs,
                signed_weights=signed_weights,
            )
        return acc

    # ------------------------------------------------------------------ #
    # Performance accounting
    # ------------------------------------------------------------------ #
    def cycles_for_macs(self, mac_count: int) -> int:
        """Cycles this unit needs to retire ``mac_count`` multiply-accumulates."""
        if mac_count < 0:
            raise ValueError(f"mac_count must be non-negative, got {mac_count}")
        cfg = self.config
        if mac_count == 0:
            return 0
        groups = -(-mac_count // cfg.fused_pes)  # ceil division
        return groups * cfg.temporal_passes

    def reset_counters(self) -> None:
        """Zero the functional-execution statistics."""
        self.total_brick_multiplies = 0
        self.total_macs = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._config is None:
            return "FusionUnit(unconfigured)"
        cfg = self._config
        return (
            f"FusionUnit({cfg.input_bits}x{cfg.weight_bits}, "
            f"{cfg.fused_pes} F-PEs, {cfg.temporal_passes} passes)"
        )
