"""Core Bit Fusion architecture models.

The core package contains the paper's primary contribution: the bit-level
composable compute fabric.

* :mod:`repro.core.bitbrick` — the 2-bit multiply-add element (Figure 5).
* :mod:`repro.core.decompose` — recursive decomposition of wide multiplies
  into 2-bit brick multiplies plus shift amounts (Equations 1–3, Figures 6, 7).
* :mod:`repro.core.fusion_unit` — the 16-BitBrick Fusion Unit with spatial
  fusion and the hybrid spatio-temporal 16-bit mode (Figures 2, 9, 10).
* :mod:`repro.core.systolic` — the systolic array of Fusion Units with
  shared input buffers, per-unit weight buffers and per-column output
  buffers (Figures 3, 4).
* :mod:`repro.core.config` — accelerator configuration (array geometry,
  buffer sizes, bandwidth, frequency, technology node).
* :mod:`repro.core.accelerator` — the top-level accelerator object tying
  compiler, simulator and energy model together.
"""

from repro.core.bitbrick import BitBrick, BitBrickResult
from repro.core.buffers import DataInfusionRegister, LaneLayout
from repro.core.decompose import (
    decompose_multiply,
    decompose_operand,
    recompose_product,
    DecomposedMultiply,
    BrickOperation,
)
from repro.core.fusion_unit import FusionUnit, FusionConfig, fusion_config_for
from repro.core.pooling import ActivationUnit, PoolingUnit
from repro.core.systolic import SystolicArray, SystolicDimensions
from repro.core.config import BitFusionConfig, TechnologyNode
from repro.core.accelerator import BitFusionAccelerator

__all__ = [
    "BitBrick",
    "BitBrickResult",
    "DataInfusionRegister",
    "LaneLayout",
    "decompose_multiply",
    "decompose_operand",
    "recompose_product",
    "DecomposedMultiply",
    "BrickOperation",
    "FusionUnit",
    "FusionConfig",
    "fusion_config_for",
    "PoolingUnit",
    "ActivationUnit",
    "SystolicArray",
    "SystolicDimensions",
    "BitFusionConfig",
    "TechnologyNode",
    "BitFusionAccelerator",
]
