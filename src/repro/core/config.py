"""Accelerator configuration for the Bit Fusion reproduction.

The paper evaluates three principal configurations of the Bit Fusion
accelerator:

* **Eyeriss-matched** (Section V-A, Table III): 45 nm, 500 MHz, the same
  1.1 mm² compute-area budget as Eyeriss' 168 PEs, a 5.87 mm² chip and
  112 KB of on-chip SRAM split across the input, weight and output buffers,
  a default off-chip bandwidth of 128 bits/cycle and a default batch of 16.
  The 1.1 mm² budget packs 512 Fusion Units (8192 BitBricks).
* **Stripes-matched** (Section V-B4): the same 512-Fusion-Unit systolic
  array dropped into each of Stripes' 16 tiles with Stripes' frequency.
* **GPU-scaled 16 nm** (Section V-B3): the design scaled to 16 nm with
  4096 Fusion Units, 896 KB of SRAM, a 5.93 mm² chip and 895 mW, still at
  500 MHz.

:class:`BitFusionConfig` captures every parameter the compiler, the cycle
model and the energy model need; the named constructors build the three
paper configurations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.fingerprint import fingerprint_payload

__all__ = ["TechnologyNode", "BitFusionConfig"]


@dataclass(frozen=True)
class TechnologyNode:
    """Process-technology parameters used for scaling area and energy.

    Scaling follows the methodology the paper cites (Esmaeilzadeh et al.,
    "Dark silicon and the end of multicore scaling"): moving from the
    45 nm reference to a smaller node scales voltage by ``voltage_scale``
    and switched capacitance by ``capacitance_scale``; dynamic energy
    scales as ``voltage_scale² × capacitance_scale`` and area scales
    roughly with the square of the feature-size ratio.
    """

    name: str
    feature_nm: float
    voltage_scale: float = 1.0
    capacitance_scale: float = 1.0

    @property
    def energy_scale(self) -> float:
        """Dynamic-energy multiplier relative to the 45 nm reference node."""
        return self.voltage_scale**2 * self.capacitance_scale

    @property
    def area_scale(self) -> float:
        """Area multiplier relative to the 45 nm reference node."""
        return (self.feature_nm / 45.0) ** 2

    @staticmethod
    def nm45() -> "TechnologyNode":
        """The 45 nm synthesis node used for the Eyeriss/Stripes comparisons."""
        return TechnologyNode(name="45nm", feature_nm=45.0)

    @staticmethod
    def nm16() -> "TechnologyNode":
        """The 16 nm node used for the GPU comparison (0.86× V, 0.42× C)."""
        return TechnologyNode(
            name="16nm", feature_nm=16.0, voltage_scale=0.86, capacitance_scale=0.42
        )

    @staticmethod
    def nm65() -> "TechnologyNode":
        """The 65 nm node Stripes' power tools reported in (scaled up from 45 nm)."""
        return TechnologyNode(
            name="65nm", feature_nm=65.0, voltage_scale=1.1, capacitance_scale=1.4
        )

    @staticmethod
    def by_name(name: str) -> "TechnologyNode":
        """Look up one of the paper's nodes by name (``"45nm"``/``"16nm"``/``"65nm"``).

        This is the string form design-space sweep specifications use for
        their technology axis; unknown names raise with the valid choices.
        """
        nodes = {
            "45nm": TechnologyNode.nm45,
            "16nm": TechnologyNode.nm16,
            "65nm": TechnologyNode.nm65,
        }
        try:
            return nodes[name]()
        except KeyError:
            raise ValueError(
                f"unknown technology node {name!r}; expected one of {sorted(nodes)}"
            ) from None


@dataclass(frozen=True)
class BitFusionConfig:
    """Complete configuration of a Bit Fusion accelerator instance.

    Attributes
    ----------
    rows, columns:
        Geometry of the systolic array of Fusion Units.  Inputs are shared
        along rows, partial sums accumulate down columns (Figure 3).
    frequency_mhz:
        Operating frequency.
    ibuf_kb, wbuf_kb, obuf_kb:
        Capacities of the input, weight and output scratchpad buffers.
    dram_bandwidth_bits_per_cycle:
        Off-chip bandwidth available to the accelerator.
    batch_size:
        Inference batch size (weights are reused across the batch).
    technology:
        Process node, used by the energy/area models.
    buffer_access_bits:
        Width of one SRAM data-array access; the data-infusion register
        splits this row into operand lanes (Section II-B).
    """

    rows: int = 32
    columns: int = 16
    frequency_mhz: float = 500.0
    ibuf_kb: float = 32.0
    wbuf_kb: float = 64.0
    obuf_kb: float = 16.0
    dram_bandwidth_bits_per_cycle: int = 128
    batch_size: int = 16
    technology: TechnologyNode = field(default_factory=TechnologyNode.nm45)
    buffer_access_bits: int = 32
    name: str = "bitfusion"

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError(
                f"systolic array must have positive dimensions, got {self.rows}x{self.columns}"
            )
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz}")
        if self.dram_bandwidth_bits_per_cycle <= 0:
            raise ValueError(
                "dram bandwidth must be positive, got "
                f"{self.dram_bandwidth_bits_per_cycle}"
            )
        if self.batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {self.batch_size}")
        for label, value in (
            ("ibuf_kb", self.ibuf_kb),
            ("wbuf_kb", self.wbuf_kb),
            ("obuf_kb", self.obuf_kb),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def fusion_units(self) -> int:
        """Total Fusion Units in the array."""
        return self.rows * self.columns

    @property
    def bitbricks(self) -> int:
        """Total BitBricks in the array (16 per Fusion Unit)."""
        from repro.core.fusion_unit import BITBRICKS_PER_FUSION_UNIT

        return self.fusion_units * BITBRICKS_PER_FUSION_UNIT

    @property
    def total_sram_kb(self) -> float:
        """Aggregate on-chip scratchpad capacity."""
        return self.ibuf_kb + self.wbuf_kb + self.obuf_kb

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.frequency_mhz

    @property
    def dram_bandwidth_gbps(self) -> float:
        """Off-chip bandwidth in gigabits per second."""
        return self.dram_bandwidth_bits_per_cycle * self.frequency_mhz * 1e6 / 1e9

    def peak_macs_per_cycle(self, input_bits: int, weight_bits: int) -> float:
        """Peak multiply-accumulates per cycle at the given bitwidths."""
        from repro.core.fusion_unit import fusion_config_for

        return self.fusion_units * fusion_config_for(input_bits, weight_bits).macs_per_cycle

    def peak_throughput_gops(self, input_bits: int = 8, weight_bits: int = 8) -> float:
        """Peak throughput in GOPS (one MAC counted as two operations)."""
        return (
            2.0
            * self.peak_macs_per_cycle(input_bits, weight_bits)
            * self.frequency_mhz
            * 1e6
            / 1e9
        )

    # ------------------------------------------------------------------ #
    # Named paper configurations
    # ------------------------------------------------------------------ #
    @staticmethod
    def eyeriss_matched(
        bandwidth_bits_per_cycle: int = 128, batch_size: int = 16
    ) -> "BitFusionConfig":
        """The 45 nm configuration area-matched to Eyeriss (Table III)."""
        return BitFusionConfig(
            rows=32,
            columns=16,
            frequency_mhz=500.0,
            ibuf_kb=32.0,
            wbuf_kb=64.0,
            obuf_kb=16.0,
            dram_bandwidth_bits_per_cycle=bandwidth_bits_per_cycle,
            batch_size=batch_size,
            technology=TechnologyNode.nm45(),
            name="bitfusion-eyeriss-matched",
        )

    @staticmethod
    def stripes_matched(batch_size: int = 16) -> "BitFusionConfig":
        """The 45 nm configuration matched to Stripes' area and frequency.

        The paper replaces the 4096 SIPs in *each* of Stripes' 16 tiles with
        a 512-Fusion-Unit systolic array, so the chip-level comparison pits
        16 x 512 = 8192 Fusion Units at Stripes' 980 MHz against 65,536 SIPs,
        with Stripes' (much larger) on-chip storage budget shared equally.
        """
        return BitFusionConfig(
            rows=128,
            columns=64,
            frequency_mhz=980.0,
            ibuf_kb=512.0,
            wbuf_kb=1024.0,
            obuf_kb=256.0,
            dram_bandwidth_bits_per_cycle=256,
            batch_size=batch_size,
            technology=TechnologyNode.nm45(),
            name="bitfusion-stripes-matched",
        )

    @staticmethod
    def gpu_scaled_16nm(batch_size: int = 16) -> "BitFusionConfig":
        """The 16 nm, 4096-Fusion-Unit configuration used against the GPUs."""
        return BitFusionConfig(
            rows=64,
            columns=64,
            frequency_mhz=500.0,
            ibuf_kb=256.0,
            wbuf_kb=512.0,
            obuf_kb=128.0,
            dram_bandwidth_bits_per_cycle=1024,
            batch_size=batch_size,
            technology=TechnologyNode.nm16(),
            name="bitfusion-16nm",
        )

    def fingerprint(self) -> str:
        """Deterministic content hash of every configuration parameter.

        Two configurations with equal field values produce the same digest in
        any process on any platform, which is what lets the evaluation
        session key its result cache on (config, network, batch) workloads.
        """
        return fingerprint_payload({"type": type(self).__name__, **asdict(self)})

    def with_bandwidth(self, bits_per_cycle: int) -> "BitFusionConfig":
        """Copy of this configuration with a different off-chip bandwidth."""
        return replace(self, dram_bandwidth_bits_per_cycle=bits_per_cycle)

    def with_batch_size(self, batch_size: int) -> "BitFusionConfig":
        """Copy of this configuration with a different batch size."""
        return replace(self, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # Design-space variation points
    # ------------------------------------------------------------------ #
    # Each returns a validated copy varying one axis of the design space;
    # the repro.dse sweep engine composes them to expand a SweepSpec into
    # concrete configurations.
    def with_array(self, rows: int, columns: int) -> "BitFusionConfig":
        """Copy of this configuration with a different systolic-array geometry."""
        return replace(self, rows=rows, columns=columns)

    def with_buffers(
        self, ibuf_kb: float, wbuf_kb: float, obuf_kb: float
    ) -> "BitFusionConfig":
        """Copy of this configuration with different scratchpad capacities.

        Buffer capacities are compile-affecting (the tiling search targets
        them), so workloads varied along this axis compile distinct
        programs — unlike the bandwidth/technology/array axes.
        """
        return replace(self, ibuf_kb=ibuf_kb, wbuf_kb=wbuf_kb, obuf_kb=obuf_kb)

    def with_technology(self, technology: "TechnologyNode | str") -> "BitFusionConfig":
        """Copy of this configuration at a different process node.

        Accepts a :class:`TechnologyNode` or one of the paper's node names
        (``"45nm"``/``"16nm"``/``"65nm"``).  Technology only affects energy
        and area scaling, never the compiled program.
        """
        if isinstance(technology, str):
            technology = TechnologyNode.by_name(technology)
        return replace(self, technology=technology)

    def with_frequency(self, frequency_mhz: float) -> "BitFusionConfig":
        """Copy of this configuration at a different operating frequency."""
        return replace(self, frequency_mhz=frequency_mhz)
