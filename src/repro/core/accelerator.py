"""Top-level Bit Fusion accelerator object.

:class:`BitFusionAccelerator` is the main user-facing entry point of the
library.  It bundles the pieces a user needs to go from a quantized network
description to performance and energy numbers:

* the hardware configuration (:class:`~repro.core.config.BitFusionConfig`),
* the Fusion-ISA compiler (:class:`~repro.isa.compiler.FusionCompiler`),
* the cycle/energy simulator (:class:`~repro.sim.executor.BitFusionSimulator`),
* the functional systolic-array model for bit-exact execution of small
  layers (:class:`~repro.core.systolic.SystolicArray`).

Typical usage::

    from repro import BitFusionAccelerator, BitFusionConfig
    from repro.dnn import models

    accelerator = BitFusionAccelerator(BitFusionConfig.eyeriss_matched())
    result = accelerator.run(models.load("Cifar-10"))
    print(result.summary())
"""

from __future__ import annotations

from repro.core.config import BitFusionConfig
from repro.core.systolic import SystolicArray
from repro.dnn.network import Network
from repro.isa.compiler import FusionCompiler
from repro.isa.program import Program
from repro.sim.executor import BitFusionSimulator
from repro.sim.results import NetworkResult

__all__ = ["BitFusionAccelerator"]


class BitFusionAccelerator:
    """A configured Bit Fusion accelerator instance.

    Parameters
    ----------
    config:
        Hardware configuration.  Defaults to the paper's Eyeriss-matched
        45 nm configuration (Table III).
    enable_loop_ordering, enable_layer_fusion:
        Compiler optimizations (Section IV-B); both default to on.  The
        ablation benchmarks construct accelerators with them disabled.
    """

    def __init__(
        self,
        config: BitFusionConfig | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
    ) -> None:
        self.config = config if config is not None else BitFusionConfig.eyeriss_matched()
        self.compiler = FusionCompiler(
            self.config,
            enable_loop_ordering=enable_loop_ordering,
            enable_layer_fusion=enable_layer_fusion,
        )
        self.simulator = BitFusionSimulator(self.config)

    # ------------------------------------------------------------------ #
    # Compilation and simulation
    # ------------------------------------------------------------------ #
    def compile(self, network: Network, batch_size: int | None = None) -> Program:
        """Compile a network to a Fusion-ISA program without simulating it."""
        return self.compiler.compile(network, batch_size=batch_size)

    def run(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        """Compile and simulate a network, returning performance and energy.

        This is the staged pipeline run end to end in one call: compile the
        network to a :class:`~repro.isa.program.Program` (stage 1), simulate
        each instruction block independently (stage 2) and compose the
        per-block results (stage 3).  The evaluation session
        (:mod:`repro.session`) runs the same stages with a cache at every
        seam; both paths produce byte-identical results.
        """
        program = self.compile(network, batch_size=batch_size)
        return self.simulator.run_program(program, batch_size=batch_size)

    def evaluate(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        """Alias of :meth:`run`; the shared platform protocol the
        evaluation session (:mod:`repro.session`) drives for Bit Fusion and
        every baseline alike."""
        return self.run(network, batch_size=batch_size)

    def run_program(self, program: Program, batch_size: int | None = None) -> NetworkResult:
        """Simulate an already-compiled program."""
        return self.simulator.run_program(program, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # Functional execution
    # ------------------------------------------------------------------ #
    def functional_array(self, input_bits: int, weight_bits: int) -> SystolicArray:
        """A configured functional systolic array for bit-exact execution.

        Every multiply routed through the returned array is decomposed onto
        2-bit BitBricks and recomposed through the shift-add tree, so its
        results can be compared bit-for-bit against NumPy integer GEMMs.
        """
        array = SystolicArray(self.config)
        array.configure(max(2, input_bits), max(2, weight_bits))
        return array

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def peak_throughput_gops(self, input_bits: int = 8, weight_bits: int = 8) -> float:
        """Peak throughput at the given operand bitwidths (GOPS)."""
        return self.config.peak_throughput_gops(input_bits, weight_bits)

    def area_mm2(self) -> float:
        """Silicon area of this instance (compute array + SRAM), in mm².

        Scaled to the configuration's technology node; this is the area
        objective design-space sweeps (:mod:`repro.dse`) trade against
        latency and energy.
        """
        from repro.energy.components import accelerator_area_mm2

        return accelerator_area_mm2(self.config)

    def describe(self) -> str:
        """One-paragraph description of the configured accelerator."""
        cfg = self.config
        return (
            f"Bit Fusion accelerator {cfg.name!r}: {cfg.rows}x{cfg.columns} Fusion Units "
            f"({cfg.bitbricks} BitBricks) at {cfg.frequency_mhz:.0f} MHz, "
            f"{cfg.total_sram_kb:.0f} KB on-chip SRAM "
            f"(IBUF {cfg.ibuf_kb:.0f} / WBUF {cfg.wbuf_kb:.0f} / OBUF {cfg.obuf_kb:.0f}), "
            f"{cfg.dram_bandwidth_bits_per_cycle} bits/cycle off-chip bandwidth, "
            f"{cfg.technology.name} technology. Peak throughput "
            f"{self.peak_throughput_gops(8, 8):.0f} GOPS at 8b/8b and "
            f"{self.peak_throughput_gops(2, 2):.0f} GOPS at 2b/2b."
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitFusionAccelerator(config={self.config.name!r})"
