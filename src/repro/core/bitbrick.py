"""BitBrick: the 2-bit multiply element at the heart of Bit Fusion.

A BitBrick (paper Figure 5) multiplies two 2-bit operands, each of which may
be interpreted as signed (two's complement, range -2..1) or unsigned
(range 0..3), producing a product that fits in 6 bits.  The hardware first
sign-extends each operand to 3 bits according to its sign flag, then feeds
a 3-bit signed multiplier.  This module is a faithful functional model of
that datapath: operands are validated against their 2-bit encodings, the
sign extension is performed explicitly, and the product is returned both as
a Python integer and as the 6-bit two's-complement word the hardware would
emit.

The BitBrick is deliberately tiny; all bitwidth flexibility in Bit Fusion
comes from composing many BitBricks (see :mod:`repro.core.decompose` and
:mod:`repro.core.fusion_unit`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BitBrick",
    "BitBrickResult",
    "encode_twos_complement",
    "decode_twos_complement",
]

#: Number of bits in a BitBrick operand.
OPERAND_BITS = 2

#: Number of bits in the BitBrick product (3-bit signed x 3-bit signed).
PRODUCT_BITS = 6


def encode_twos_complement(value: int, bits: int) -> int:
    """Encode ``value`` as an unsigned ``bits``-wide two's-complement word.

    Raises :class:`ValueError` if ``value`` does not fit in ``bits`` bits as
    a signed quantity.
    """
    if bits <= 0:
        raise ValueError(f"bit width must be positive, got {bits}")
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"value {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def decode_twos_complement(word: int, bits: int) -> int:
    """Decode an unsigned ``bits``-wide word as a signed two's-complement value."""
    if bits <= 0:
        raise ValueError(f"bit width must be positive, got {bits}")
    mask = (1 << bits) - 1
    if not 0 <= word <= mask:
        raise ValueError(f"word {word} is not a {bits}-bit pattern")
    sign_bit = 1 << (bits - 1)
    return (word & mask) - ((word & sign_bit) << 1)


@dataclass(frozen=True)
class BitBrickResult:
    """Outcome of a single BitBrick multiply.

    Attributes
    ----------
    product:
        The numeric product as a Python integer.
    product_word:
        The 6-bit two's-complement encoding of the product, exactly the word
        the hardware datapath would drive onto the shift-add tree.
    x_extended, y_extended:
        The 3-bit sign-extended operand values used by the internal signed
        multiplier.
    """

    product: int
    product_word: int
    x_extended: int
    y_extended: int


class BitBrick:
    """Functional model of a single BitBrick.

    Parameters
    ----------
    signed_x, signed_y:
        Static sign configuration of the brick.  In hardware the sign bits
        ``sx``/``sy`` arrive with the operands; modelling them as
        constructor arguments matches how a fused configuration holds the
        sign mode fixed for a whole layer (only the most-significant brick
        of a fused operand sees signed data).
    """

    def __init__(self, signed_x: bool = False, signed_y: bool = False) -> None:
        self.signed_x = bool(signed_x)
        self.signed_y = bool(signed_y)

    # ------------------------------------------------------------------ #
    # Operand handling
    # ------------------------------------------------------------------ #
    def _operand_range(self, signed: bool) -> tuple[int, int]:
        if signed:
            return -(1 << (OPERAND_BITS - 1)), (1 << (OPERAND_BITS - 1)) - 1
        return 0, (1 << OPERAND_BITS) - 1

    def _validate(self, value: int, signed: bool, name: str) -> int:
        lo, hi = self._operand_range(signed)
        if not lo <= value <= hi:
            kind = "signed" if signed else "unsigned"
            raise ValueError(
                f"operand {name}={value} out of range for a {kind} "
                f"{OPERAND_BITS}-bit BitBrick input [{lo}, {hi}]"
            )
        return value

    @staticmethod
    def _sign_extend(value: int, signed: bool) -> int:
        """Model the 2-bit -> 3-bit sign extension stage.

        For unsigned operands the extension bit is zero; for signed operands
        the sign bit is replicated.  Numerically the extended value equals
        the operand itself — the extension only matters for the hardware
        encoding — so we return the value and compute the 3-bit word where
        needed.
        """
        del signed  # numeric value is unchanged by sign extension
        return value

    # ------------------------------------------------------------------ #
    # Multiply
    # ------------------------------------------------------------------ #
    def multiply(self, x: int, y: int) -> BitBrickResult:
        """Multiply two 2-bit operands and return the full datapath result."""
        x = self._validate(x, self.signed_x, "x")
        y = self._validate(y, self.signed_y, "y")
        x3 = self._sign_extend(x, self.signed_x)
        y3 = self._sign_extend(y, self.signed_y)
        product = x3 * y3
        return BitBrickResult(
            product=product,
            product_word=encode_twos_complement(product, PRODUCT_BITS),
            x_extended=x3,
            y_extended=y3,
        )

    def __call__(self, x: int, y: int) -> int:
        """Convenience form returning only the numeric product."""
        return self.multiply(x, y).product

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def x_range(self) -> tuple[int, int]:
        """Valid numeric range of the ``x`` operand."""
        return self._operand_range(self.signed_x)

    @property
    def y_range(self) -> tuple[int, int]:
        """Valid numeric range of the ``y`` operand."""
        return self._operand_range(self.signed_y)

    @property
    def product_range(self) -> tuple[int, int]:
        """Numeric range of products this brick can emit."""
        xlo, xhi = self.x_range
        ylo, yhi = self.y_range
        corners = [xlo * ylo, xlo * yhi, xhi * ylo, xhi * yhi]
        return min(corners), max(corners)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitBrick(signed_x={self.signed_x}, signed_y={self.signed_y})"
        )
