"""Systolic array of Fusion Units.

The Bit Fusion accelerator organizes its Fusion Units as a 2-D systolic
array (paper Figure 3): input values are shared across every Fusion Unit of
a row, weights are private to each unit (held in the per-unit WBUF), and
partial sums flow down the columns into per-column accumulators, pooling
and activation units, and finally the output buffer.

The whole array therefore behaves as a single matrix–vector engine whose
*logical* width and height depend on the current fusion configuration: with
``F`` Fused-PEs per Fusion Unit, an ``R×C`` array retires ``R·C·F``
multiply-accumulates per cycle (divided by the temporal-pass count for
16-bit operands).

:class:`SystolicArray` provides

* a **functional** matrix–vector / matrix–matrix multiply that routes every
  scalar multiply through the BitBrick decomposition (used by the
  correctness tests and the examples), and
* a **timing** model for GEMM-shaped work (used by the cycle simulator):
  compute cycles including array fill/drain, plus the buffer-access counts
  implied by the systolic data flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BitFusionConfig
from repro.core.fusion_unit import FusionConfig, FusionUnit, fusion_config_for

__all__ = ["SystolicDimensions", "SystolicGemmTiming", "SystolicArray"]


@dataclass(frozen=True)
class SystolicDimensions:
    """Logical dimensions of the array under a fusion configuration.

    Attributes
    ----------
    rows, columns:
        Physical Fusion Unit grid.
    fused_pes_per_unit:
        Fused-PEs formed in each unit.
    logical_rows:
        Input-vector elements consumed per cycle (= rows × F-PEs per unit,
        because each Fused-PE in a unit multiplies a distinct input lane).
    logical_columns:
        Output elements produced in parallel (= columns).
    """

    rows: int
    columns: int
    fused_pes_per_unit: int
    temporal_passes: int

    @property
    def logical_rows(self) -> int:
        return self.rows * self.fused_pes_per_unit

    @property
    def logical_columns(self) -> int:
        return self.columns

    @property
    def macs_per_cycle(self) -> float:
        return self.rows * self.columns * self.fused_pes_per_unit / self.temporal_passes


@dataclass(frozen=True)
class SystolicGemmTiming:
    """Cycle and access counts for one GEMM mapped onto the array.

    A GEMM here is ``output[M, B] = weights[M, N] @ inputs[N, B]`` — the
    shape every DNN layer lowers to (N = reduction length, M = output
    neurons/channels, B = batch × spatial positions).
    """

    compute_cycles: int
    fill_drain_cycles: int
    ibuf_reads: int
    wbuf_reads: int
    obuf_reads: int
    obuf_writes: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.fill_drain_cycles


class SystolicArray:
    """Functional and timing model of the Fusion Unit systolic array."""

    def __init__(self, config: BitFusionConfig) -> None:
        self.config = config
        self._fusion_config: FusionConfig | None = None
        # A single functional FusionUnit is enough for numeric execution:
        # all units perform identical arithmetic, only the mapping differs.
        self._unit = FusionUnit()

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure(self, input_bits: int, weight_bits: int) -> SystolicDimensions:
        """Apply a fusion configuration to every unit in the array."""
        self._fusion_config = self._unit.configure(input_bits, weight_bits)
        return self.dimensions

    @property
    def fusion_config(self) -> FusionConfig:
        if self._fusion_config is None:
            raise RuntimeError(
                "SystolicArray is not configured; call configure(input_bits, weight_bits)"
            )
        return self._fusion_config

    @property
    def dimensions(self) -> SystolicDimensions:
        cfg = self.fusion_config
        return SystolicDimensions(
            rows=self.config.rows,
            columns=self.config.columns,
            fused_pes_per_unit=cfg.fused_pes,
            temporal_passes=cfg.temporal_passes,
        )

    # ------------------------------------------------------------------ #
    # Functional execution
    # ------------------------------------------------------------------ #
    def matvec(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        signed_inputs: bool = True,
        signed_weights: bool = True,
    ) -> np.ndarray:
        """Matrix–vector product ``weights @ inputs`` through the fusion fabric.

        ``weights`` has shape ``(M, N)`` and ``inputs`` has shape ``(N,)``.
        Every scalar multiply is executed by decomposing the operands onto
        BitBricks, so the result is bit-exact with integer arithmetic while
        exercising the composable datapath end to end.
        """
        weights = np.asarray(weights)
        inputs = np.asarray(inputs)
        if weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {weights.shape}")
        if inputs.ndim != 1:
            raise ValueError(f"inputs must be 1-D, got shape {inputs.shape}")
        if weights.shape[1] != inputs.shape[0]:
            raise ValueError(
                f"dimension mismatch: weights {weights.shape} @ inputs {inputs.shape}"
            )

        out = np.zeros(weights.shape[0], dtype=np.int64)
        for m in range(weights.shape[0]):
            out[m] = self._unit.dot_product(
                inputs.tolist(),
                weights[m].tolist(),
                signed_inputs=signed_inputs,
                signed_weights=signed_weights,
            )
        return out

    def matmul(
        self,
        weights: np.ndarray,
        inputs: np.ndarray,
        signed_inputs: bool = True,
        signed_weights: bool = True,
    ) -> np.ndarray:
        """Matrix–matrix product ``weights @ inputs`` through the fusion fabric.

        ``weights`` is ``(M, N)``, ``inputs`` is ``(N, B)``; the result is
        ``(M, B)``.  Used by the functional layer execution in the examples.
        """
        inputs = np.asarray(inputs)
        if inputs.ndim != 2:
            raise ValueError(f"inputs must be 2-D, got shape {inputs.shape}")
        columns = [
            self.matvec(
                weights,
                inputs[:, b],
                signed_inputs=signed_inputs,
                signed_weights=signed_weights,
            )
            for b in range(inputs.shape[1])
        ]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------ #
    # Timing model
    # ------------------------------------------------------------------ #
    def gemm_timing(self, m: int, n: int, batch: int = 1) -> SystolicGemmTiming:
        """Timing for ``output[M, B] = weights[M, N] @ inputs[N, B]``.

        The array processes the GEMM as a sequence of tiles: each tile
        covers ``logical_rows`` elements of the reduction dimension and
        ``columns`` output neurons, retiring one partial sum per column per
        cycle once the pipeline is full.  Fill/drain adds ``rows + columns``
        cycles per output tile, amortized across the batch because
        consecutive batch elements stream through back to back.
        """
        if m <= 0 or n <= 0 or batch <= 0:
            raise ValueError(
                f"GEMM dimensions must be positive, got m={m}, n={n}, batch={batch}"
            )
        dims = self.dimensions

        reduction_tiles = -(-n // dims.logical_rows)
        output_tiles = -(-m // dims.logical_columns)

        # Each (reduction tile, output tile, batch element) takes
        # temporal_passes cycles to issue through a column.
        compute_cycles = (
            reduction_tiles * output_tiles * batch * dims.temporal_passes
        )
        fill_drain = output_tiles * (self.config.rows + self.config.columns)

        cfg = self.fusion_config
        # Buffer accesses: each input element is read once per output tile
        # (row-broadcast amortizes it over all columns); each weight is read
        # once per batch tile group (weights stay resident across the batch
        # thanks to the per-unit WBUF); outputs are read+written once per
        # reduction tile (partial-sum accumulation in OBUF).
        ibuf_reads = n * batch * output_tiles
        wbuf_reads = m * n
        obuf_writes = m * batch * reduction_tiles
        obuf_reads = m * batch * max(0, reduction_tiles - 1)

        del cfg  # configuration is reflected through dims; kept for clarity
        return SystolicGemmTiming(
            compute_cycles=int(compute_cycles),
            fill_drain_cycles=int(fill_drain),
            ibuf_reads=int(ibuf_reads),
            wbuf_reads=int(wbuf_reads),
            obuf_reads=int(obuf_reads),
            obuf_writes=int(obuf_writes),
        )
