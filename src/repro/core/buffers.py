"""Buffer data-infusion logic: splitting SRAM rows into operand lanes.

Section II-B of the paper describes how the input and weight buffers feed
the Fused-PEs: each buffer read returns a fixed-width row (32 bits in the
evaluated design) into a register, and a set of multiplexers after the
register slices that row into operand lanes whose width follows the current
fusion configuration.  One access can therefore feed up to sixteen 2-bit
operands, four 8-bit operands, and so on — "avoiding multiple accesses to
the data array of the buffer, which conserves energy".

:class:`DataInfusionRegister` models that slicing exactly: it packs and
unpacks operand vectors into row words and reports how many data-array
accesses a given operand demand costs.  The systolic-array energy accounting
and the ISA-level tests use it to verify the paper's claim that a 32-bit
access width suffices for every fusion configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bitbrick import decode_twos_complement, encode_twos_complement
from repro.core.fusion_unit import FusionConfig, fusion_config_for

__all__ = ["LaneLayout", "DataInfusionRegister"]


@dataclass(frozen=True)
class LaneLayout:
    """How one buffer row is split into operand lanes.

    Attributes
    ----------
    lane_bits:
        Width of each operand lane.
    lanes_per_row:
        Operand lanes carried by one row (row width // lane width).
    row_bits:
        Width of the underlying data-array access.
    """

    lane_bits: int
    lanes_per_row: int
    row_bits: int

    def __post_init__(self) -> None:
        if self.lane_bits <= 0:
            raise ValueError(f"lane_bits must be positive, got {self.lane_bits}")
        if self.row_bits <= 0:
            raise ValueError(f"row_bits must be positive, got {self.row_bits}")
        if self.lanes_per_row <= 0:
            raise ValueError(
                f"a {self.row_bits}-bit row cannot carry {self.lane_bits}-bit lanes"
            )

    @property
    def used_bits(self) -> int:
        """Bits of the row actually occupied by operand lanes."""
        return self.lane_bits * self.lanes_per_row

    @property
    def utilization(self) -> float:
        """Fraction of the row width carrying operands (1.0 = fully packed)."""
        return self.used_bits / self.row_bits


class DataInfusionRegister:
    """The register + multiplexer stage between a scratchpad and the Fused-PEs.

    Parameters
    ----------
    row_bits:
        Width of one data-array access (32 in the evaluated configuration).
    """

    def __init__(self, row_bits: int = 32) -> None:
        if row_bits <= 0 or row_bits % 2:
            raise ValueError(f"row width must be a positive even bit count, got {row_bits}")
        self.row_bits = row_bits

    # ------------------------------------------------------------------ #
    # Layout resolution
    # ------------------------------------------------------------------ #
    def layout(self, operand_bits: int) -> LaneLayout:
        """Lane layout for operands of the given encoded bitwidth."""
        lane_bits = max(2, min(operand_bits, 8))
        if operand_bits not in (1, 2, 4, 8, 16):
            raise ValueError(f"operand bitwidth must be one of (1, 2, 4, 8, 16), got {operand_bits}")
        return LaneLayout(
            lane_bits=lane_bits,
            lanes_per_row=self.row_bits // lane_bits,
            row_bits=self.row_bits,
        )

    def input_layout(self, config: FusionConfig) -> LaneLayout:
        """Lane layout of the input buffer row under a fusion configuration."""
        return self.layout(config.input_bits)

    def weight_layout(self, config: FusionConfig) -> LaneLayout:
        """Lane layout of the weight buffer row under a fusion configuration."""
        return self.layout(config.weight_bits)

    def row_feeds_fusion_unit(self, input_bits: int, weight_bits: int) -> bool:
        """Whether one row access per buffer feeds a whole Fusion Unit each cycle.

        This is the claim of Figure 4: at every supported configuration, the
        Fused-PEs of one Fusion Unit consume at most ``row_bits`` of input
        data and ``row_bits`` of weight data per cycle.
        """
        config = fusion_config_for(input_bits, weight_bits)
        input_demand = config.fused_pes * self.layout(config.input_bits).lane_bits
        weight_demand = config.fused_pes * self.layout(config.weight_bits).lane_bits
        return input_demand <= self.row_bits and weight_demand <= self.row_bits

    # ------------------------------------------------------------------ #
    # Packing / unpacking
    # ------------------------------------------------------------------ #
    def pack(self, values: list[int], operand_bits: int, signed: bool = True) -> list[int]:
        """Pack operand values into row words, least-significant lane first.

        The final row is zero-padded when the value count is not a multiple
        of the lane count, exactly as the hardware would leave unused lanes.
        """
        layout = self.layout(operand_bits)
        rows: list[int] = []
        for start in range(0, len(values), layout.lanes_per_row):
            row_word = 0
            for lane, value in enumerate(values[start : start + layout.lanes_per_row]):
                if signed:
                    encoded = encode_twos_complement(int(value), layout.lane_bits)
                else:
                    if not 0 <= int(value) < (1 << layout.lane_bits):
                        raise ValueError(
                            f"value {value} does not fit an unsigned {layout.lane_bits}-bit lane"
                        )
                    encoded = int(value)
                row_word |= encoded << (lane * layout.lane_bits)
            rows.append(row_word)
        return rows

    def unpack(
        self, rows: list[int], operand_bits: int, count: int, signed: bool = True
    ) -> list[int]:
        """Unpack ``count`` operand values from row words produced by :meth:`pack`."""
        layout = self.layout(operand_bits)
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        needed_rows = -(-count // layout.lanes_per_row) if count else 0
        if len(rows) < needed_rows:
            raise ValueError(
                f"{count} operands need {needed_rows} rows, only {len(rows)} provided"
            )
        values: list[int] = []
        mask = (1 << layout.lane_bits) - 1
        for index in range(count):
            row_word = rows[index // layout.lanes_per_row]
            lane = index % layout.lanes_per_row
            raw = (row_word >> (lane * layout.lane_bits)) & mask
            if signed:
                values.append(decode_twos_complement(raw, layout.lane_bits))
            else:
                values.append(raw)
        return values

    # ------------------------------------------------------------------ #
    # Access accounting
    # ------------------------------------------------------------------ #
    def accesses_for_operands(self, operand_count: int, operand_bits: int) -> int:
        """Data-array accesses needed to deliver ``operand_count`` operands."""
        if operand_count < 0:
            raise ValueError(f"operand_count must be non-negative, got {operand_count}")
        layout = self.layout(operand_bits)
        return -(-operand_count // layout.lanes_per_row)

    def access_reduction_vs_full_width(self, operand_bits: int, full_bits: int = 16) -> float:
        """How many times fewer accesses low-bitwidth operands need versus ``full_bits``.

        This is the proportional memory-access saving of the paper's second
        insight: storing and moving values at their minimal bitwidth.
        """
        narrow = self.layout(operand_bits)
        wide = self.layout(full_bits)
        return narrow.lanes_per_row / wide.lanes_per_row
