"""Per-column pooling and activation units (Figure 3).

Each column of the Bit Fusion systolic array ends in a pooling unit and an
activation unit sitting between the column accumulator and the output
buffer.  They let pooling and activation layers ride along with the
preceding convolution's block (the layer-fusion optimization of Section
IV-B) instead of round-tripping through DRAM.

This module gives those units a small functional + throughput model:

* :class:`PoolingUnit` — windowed max/average reduction over the stream of
  values a column produces, with a comparisons-per-output count the energy
  model can price.
* :class:`ActivationUnit` — ReLU (exact, integer) and saturating
  re-quantization of 32-bit partial sums back to the next layer's output
  bitwidth, which is exactly what the hardware does before writing OBUF.

Both operate on NumPy arrays so the examples can run small fused
conv+pool+activation pipelines end to end and compare against the
reference kernels in :mod:`repro.dnn.functional`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dnn.functional import avg_pool2d, max_pool2d, relu
from repro.dnn.quantization import clip_to_bitwidth

__all__ = ["PoolingUnit", "ActivationUnit"]


@dataclass(frozen=True)
class PoolingUnit:
    """Functional/throughput model of one column's pooling unit.

    Parameters
    ----------
    kernel, stride:
        Pooling window geometry.
    mode:
        ``"max"`` or ``"avg"``.
    """

    kernel: int
    stride: int | None = None
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.kernel <= 0:
            raise ValueError(f"kernel must be positive, got {self.kernel}")
        if self.stride is not None and self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        if self.mode not in ("max", "avg"):
            raise ValueError(f"mode must be 'max' or 'avg', got {self.mode!r}")

    @property
    def effective_stride(self) -> int:
        return self.kernel if self.stride is None else self.stride

    def apply(self, feature_map: np.ndarray) -> np.ndarray:
        """Pool a ``(C, H, W)`` integer feature map."""
        if self.mode == "max":
            return max_pool2d(feature_map, self.kernel, self.effective_stride)
        return avg_pool2d(feature_map, self.kernel, self.effective_stride)

    def comparisons_per_output(self) -> int:
        """Compare/add operations per pooled output element."""
        return self.kernel * self.kernel - 1

    def output_elements(self, channels: int, height: int, width: int) -> int:
        """Number of pooled outputs for an input feature map of the given shape."""
        if channels <= 0 or height <= 0 or width <= 0:
            raise ValueError("feature-map dimensions must be positive")
        stride = self.effective_stride
        out_h = (height - self.kernel) // stride + 1
        out_w = (width - self.kernel) // stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(
                f"pooling a {height}x{width} map with kernel {self.kernel} "
                f"and stride {stride} produces an empty output"
            )
        return channels * out_h * out_w

    def cycles_for(self, channels: int, height: int, width: int, columns: int) -> int:
        """Cycles the per-column units need to pool one feature map.

        Each of the ``columns`` units retires one comparison per cycle, and
        the feature map's windows are distributed across the columns — in
        practice this always hides under the systolic array's compute time,
        which is why the simulator treats fused pooling as free.
        """
        if columns <= 0:
            raise ValueError(f"columns must be positive, got {columns}")
        total_comparisons = self.output_elements(channels, height, width) * (
            self.comparisons_per_output()
        )
        return -(-total_comparisons // columns)


@dataclass(frozen=True)
class ActivationUnit:
    """Functional model of one column's activation / re-quantization stage.

    Parameters
    ----------
    function:
        ``"relu"`` (exact integer) or ``"identity"``.
    output_bits:
        Bitwidth the 32-bit partial sums are saturated to before they are
        written to the output buffer (the next layer's input bitwidth).
    signed:
        Whether the re-quantized outputs are two's-complement signed.
    """

    function: str = "relu"
    output_bits: int = 8
    signed: bool = True

    def __post_init__(self) -> None:
        if self.function not in ("relu", "identity"):
            raise ValueError(f"function must be 'relu' or 'identity', got {self.function!r}")
        if self.output_bits not in (1, 2, 4, 8, 16):
            raise ValueError(
                f"output_bits must be one of (1, 2, 4, 8, 16), got {self.output_bits}"
            )

    def apply(self, partial_sums: np.ndarray, scale_shift: int = 0) -> np.ndarray:
        """Activate and re-quantize a tensor of 32-bit partial sums.

        ``scale_shift`` models the power-of-two re-quantization scale the
        hardware applies (an arithmetic right shift before saturation).
        """
        if scale_shift < 0:
            raise ValueError(f"scale_shift must be non-negative, got {scale_shift}")
        values = np.asarray(partial_sums, dtype=np.int64)
        if self.function == "relu":
            values = relu(values)
        if scale_shift:
            values = values >> scale_shift
        return clip_to_bitwidth(values, self.output_bits, signed=self.signed)

    def operations_for(self, elements: int) -> int:
        """Element-wise operations performed for ``elements`` outputs."""
        if elements < 0:
            raise ValueError(f"elements must be non-negative, got {elements}")
        return elements
