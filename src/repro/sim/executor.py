"""The Bit Fusion simulator: executes compiled programs block by block.

For every :class:`~repro.isa.program.CompiledBlock` the simulator

1. reads the fusion configuration from the block's ``setup`` instruction,
2. estimates the compute-phase cycles of the tiled GEMM on the systolic
   array (:class:`~repro.sim.cycle_model.GemmCycleModel`),
3. derives the off-chip traffic from the block's tiling plan and converts it
   to transfer cycles at the configured bandwidth,
4. counts on-chip buffer traffic from the systolic data flow (inputs are
   broadcast along rows, weights are private per Fusion Unit, partial sums
   accumulate down columns into the output buffer),
5. prices the counts with the compute / SRAM / DRAM energy models.

The block's latency is ``max(compute, memory) + overheads`` because the ISA
decouples on-chip execution from off-chip transfers (double-buffered
scratchpads, Section IV-A); the per-block overhead covers instruction
fetch/decode and array fill/drain.

Pooling and activation layers that were *not* fused into a compute block are
charged their data movement (they are always memory-bound) and the pooling
comparisons are assumed to hide entirely under the transfer time, matching
the paper's treatment of the per-column units.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Sequence

from repro.core.config import BitFusionConfig
from repro.core.fusion_unit import FusionConfig
from repro.dnn.network import Network
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import SramEnergyModel
from repro.energy.components import ComputeEnergyModel
from repro.energy.dram import DramEnergyModel
from repro.isa.compiler import FusionCompiler
from repro.isa.program import CompiledBlock, Program
from repro.sim.batched import simulate_blocks_batched
from repro.sim.cycle_model import GemmCycleModel
from repro.sim.results import (
    LayerResult,
    MemoryTraffic,
    NetworkResult,
    compose_network_result,
)

__all__ = ["BitFusionSimulator", "simulate_network"]

#: Partial sums accumulate at 32 bits in the output buffer (Figure 4).
_PARTIAL_SUM_BITS = 32


@dataclass(frozen=True)
class _EnergyModels:
    """The per-component energy models bound to one accelerator configuration."""

    compute: ComputeEnergyModel
    ibuf: SramEnergyModel
    wbuf: SramEnergyModel
    obuf: SramEnergyModel
    dram: DramEnergyModel


class BitFusionSimulator:
    """Cycle and energy simulator for one Bit Fusion configuration.

    Parameters
    ----------
    config:
        The accelerator configuration to simulate.
    dram_energy:
        Optional override of the DRAM energy model (defaults to the 45 nm
        reference scaled by the configuration's technology node).
    batched:
        When true (the default), multi-block entry points
        (:meth:`run_blocks`, :meth:`run_selected_blocks`) evaluate whole
        batches through the vectorized :mod:`repro.sim.batched` path.
        ``batched=False`` keeps every block on the scalar
        :meth:`run_block` loop — the reference oracle the batched path is
        property-tested against.  Results are bit-identical either way.
    """

    def __init__(
        self,
        config: BitFusionConfig,
        dram_energy: DramEnergyModel | None = None,
        batched: bool = True,
    ) -> None:
        self.config = config
        self.batched = batched
        self.cycle_model = GemmCycleModel(config)
        scale = config.technology.energy_scale
        if dram_energy is None:
            dram_energy = DramEnergyModel(pj_per_bit=DramEnergyModel().pj_per_bit * scale)
        # The weight buffer is physically distributed: one small bank per
        # Fusion Unit (Figure 3), which is what makes its per-access energy
        # register-file-like.  The input/output buffers are banked per
        # row/column; energy is modelled per bank.
        wbuf_bank_kb = max(config.wbuf_kb / config.fusion_units, 1.0 / 16.0)
        ibuf_bank_kb = max(config.ibuf_kb / config.rows, 0.25)
        obuf_bank_kb = max(config.obuf_kb / config.columns, 0.25)
        self._energy = _EnergyModels(
            compute=ComputeEnergyModel(technology=config.technology),
            ibuf=SramEnergyModel(capacity_kb=ibuf_bank_kb, access_bits=config.buffer_access_bits),
            wbuf=SramEnergyModel(capacity_kb=wbuf_bank_kb, access_bits=config.buffer_access_bits),
            obuf=SramEnergyModel(capacity_kb=obuf_bank_kb, access_bits=config.buffer_access_bits),
            dram=dram_energy,
        )

    # ------------------------------------------------------------------ #
    # Block execution
    # ------------------------------------------------------------------ #
    def _buffer_traffic(
        self, block: CompiledBlock, fusion: FusionConfig, reduction_passes: int
    ) -> MemoryTraffic:
        """On-chip traffic implied by the systolic data flow for one block."""
        workload = block.tiling.workload
        macs = workload.macs

        input_lane_bits = fusion.input_lane_bits * fusion.temporal_passes
        weight_lane_bits = fusion.weight_lane_bits * fusion.temporal_passes

        # Weights are private to each Fused-PE: every multiply-accumulate
        # pulls its weight operand from the unit's weight buffer.
        wbuf_read_bits = macs * weight_lane_bits
        # Inputs are broadcast along rows: the same operand feeds every
        # column, so the input buffer is read once per column group.
        ibuf_read_bits = ceil(macs / self.config.columns) * input_lane_bits
        # Each output element visits the column accumulator / output buffer
        # once per pass over the reduction dimension.
        outputs = workload.m * workload.r
        obuf_write_bits = outputs * _PARTIAL_SUM_BITS * max(1, reduction_passes)
        obuf_read_bits = outputs * _PARTIAL_SUM_BITS * max(0, reduction_passes - 1)

        tiling = block.tiling
        return MemoryTraffic(
            dram_read_bits=int(
                tiling.dram_weight_bits
                + tiling.dram_input_bits
                + tiling.dram_output_read_bits
            ),
            dram_write_bits=int(tiling.dram_output_write_bits),
            ibuf_read_bits=int(ibuf_read_bits),
            wbuf_read_bits=int(wbuf_read_bits),
            obuf_read_bits=int(obuf_read_bits),
            obuf_write_bits=int(obuf_write_bits),
        )

    def _energy_breakdown(
        self, fusion: FusionConfig, macs: int, traffic: MemoryTraffic
    ) -> EnergyBreakdown:
        """Price the block's operation and traffic counts."""
        models = self._energy
        scale = self.config.technology.energy_scale
        compute_j = models.compute.fusion_energy_for_macs_j(fusion, macs)
        buffers_j = (
            models.ibuf.energy_for_bits_j(traffic.ibuf_read_bits)
            + models.wbuf.energy_for_bits_j(traffic.wbuf_read_bits)
            + models.obuf.energy_for_bits_j(
                traffic.obuf_read_bits + traffic.obuf_write_bits
            )
        ) * scale
        dram_j = models.dram.energy_for_bits_j(traffic.dram_total_bits)
        return EnergyBreakdown(
            compute=compute_j, buffers=buffers_j, register_file=0.0, dram=dram_j
        )

    def run_block(self, block: CompiledBlock) -> LayerResult:
        """Simulate one compiled block and return its layer result."""
        workload = block.tiling.workload
        fusion = self.cycle_model.fusion_config(workload.input_bits, workload.weight_bits)

        if block.layer.has_gemm():
            estimate = self.cycle_model.estimate(block.tiling)
            compute_cycles = estimate.compute_cycles
            overhead_cycles = estimate.fill_drain_cycles + len(block.block)
            utilization = estimate.utilization
            macs = workload.macs
            reduction_passes = max(1, block.tiling.n_tiles)
        else:
            # Standalone pooling/activation: the per-column units keep up
            # with the streaming rate, so the block is purely memory-bound.
            compute_cycles = 0
            overhead_cycles = len(block.block)
            utilization = 0.0
            macs = 0
            reduction_passes = 1

        traffic = self._buffer_traffic(block, fusion, reduction_passes)
        memory_cycles = ceil(
            traffic.dram_total_bits / self.config.dram_bandwidth_bits_per_cycle
        )
        energy = self._energy_breakdown(fusion, macs, traffic)

        return LayerResult(
            name=block.name,
            macs=macs,
            input_bits=workload.input_bits,
            weight_bits=workload.weight_bits,
            compute_cycles=int(compute_cycles),
            memory_cycles=int(memory_cycles),
            overhead_cycles=int(overhead_cycles),
            traffic=traffic,
            energy=energy,
            utilization=utilization,
        )

    # ------------------------------------------------------------------ #
    # Program / network execution
    # ------------------------------------------------------------------ #
    def simulate_compiled_blocks(
        self, blocks: Sequence[CompiledBlock]
    ) -> list[LayerResult]:
        """Simulate a list of blocks, batched when possible.

        The single multi-block choke point: batches of two or more blocks
        go through the vectorized executor (unless this simulator was
        built with ``batched=False``), everything else runs the scalar
        :meth:`run_block` loop.  Either way the results are bit-identical.
        """
        blocks = list(blocks)
        if not self.batched or len(blocks) < 2:
            return [self.run_block(block) for block in blocks]
        return simulate_blocks_batched(self, blocks)

    def run_blocks(self, program: Program) -> list[LayerResult]:
        """Simulate every block of a program independently (pipeline stage 2).

        Each block's result depends only on the block itself and the
        simulation-affecting configuration parameters, never on neighbouring
        blocks — which is what lets the evaluation session cache and reuse
        per-block results individually.
        """
        return self.simulate_compiled_blocks(list(program))

    def run_selected_blocks(
        self, program: Program, indices: Sequence[int]
    ) -> list[LayerResult]:
        """Simulate only the blocks at ``indices``, in the given order.

        This is the worker-side entry point of the cache-aware parallel
        protocol: the main process resolves every block it already has a
        cached :class:`~repro.sim.results.LayerResult` for and ships a
        worker just the indices that genuinely need simulating, so a
        partially-warm parallel run never re-simulates warm blocks.
        """
        return self.simulate_compiled_blocks(
            [program[index] for index in indices]
        )

    def run_program(self, program: Program, batch_size: int | None = None) -> NetworkResult:
        """Simulate a compiled program and compose the per-block results."""
        batch = self.config.batch_size if batch_size is None else batch_size
        return compose_network_result(
            network_name=program.network_name,
            platform=self.config.name,
            batch_size=batch,
            frequency_mhz=self.config.frequency_mhz,
            layers=self.run_blocks(program),
        )

    def run_network(
        self,
        network: Network,
        batch_size: int | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
    ) -> NetworkResult:
        """Compile and simulate a network in one call."""
        compiler = FusionCompiler(
            self.config,
            enable_loop_ordering=enable_loop_ordering,
            enable_layer_fusion=enable_layer_fusion,
        )
        program = compiler.compile(network, batch_size=batch_size)
        return self.run_program(program, batch_size=batch_size)


def simulate_network(
    network: Network, config: BitFusionConfig, batch_size: int | None = None
) -> NetworkResult:
    """Convenience wrapper: compile and simulate ``network`` on ``config``."""
    return BitFusionSimulator(config).run_network(network, batch_size=batch_size)
