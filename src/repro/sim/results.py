"""Result records produced by the simulator and the baseline models.

Every accelerator model in this reproduction (Bit Fusion itself, Eyeriss,
Stripes, the temporal design and the GPU rooflines) reports its results
through the same two records so the experiment harness can compute speedups
and energy ratios uniformly:

* :class:`LayerResult` — cycles, memory traffic and energy for one layer
  (or one fused layer group) at one batch size.
* :class:`NetworkResult` — the ordered layer results for one network on one
  platform, with aggregate latency / throughput / energy properties.

Both records are frozen and serialize losslessly to JSON (ints, floats and
strings only), which is what lets the evaluation session cache them:
``LayerResult`` is the per-block artifact of the simulate stage, keyed by
block fingerprint plus the simulation-affecting configuration (see
:func:`repro.session.engine.block_cache_key`), and a cached record read
back from disk is bit-identical to the freshly simulated one.  A cached
layer result is invalidated only by its key changing — there is no epoch
or timestamp scheme; if the block content or any simulation-affecting
parameter changes, the old entry is simply never looked up again.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Iterable

from repro.energy.breakdown import EnergyBreakdown

__all__ = [
    "MemoryTraffic",
    "LayerResult",
    "NetworkResult",
    "layer_result_to_dict",
    "layer_result_from_dict",
    "compose_network_result",
]


@dataclass(frozen=True)
class MemoryTraffic:
    """Bits moved per batch, split by memory structure.

    Traffic is counted at the point data crosses each structure's port:
    DRAM reads/writes on the off-chip interface, one read per operand
    delivered from the input/weight scratchpads, and reads plus writes on
    the output buffer (partial sums travel both ways).  The energy model
    charges each structure's per-bit cost against exactly these counts, so
    the Figure 14 breakdown follows directly from this record.
    """

    dram_read_bits: int = 0
    dram_write_bits: int = 0
    ibuf_read_bits: int = 0
    wbuf_read_bits: int = 0
    obuf_read_bits: int = 0
    obuf_write_bits: int = 0
    register_file_bits: int = 0

    def __post_init__(self) -> None:
        for label, value in self.as_dict().items():
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")

    @property
    def dram_total_bits(self) -> int:
        return self.dram_read_bits + self.dram_write_bits

    @property
    def buffer_total_bits(self) -> int:
        return (
            self.ibuf_read_bits
            + self.wbuf_read_bits
            + self.obuf_read_bits
            + self.obuf_write_bits
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "dram_read_bits": self.dram_read_bits,
            "dram_write_bits": self.dram_write_bits,
            "ibuf_read_bits": self.ibuf_read_bits,
            "wbuf_read_bits": self.wbuf_read_bits,
            "obuf_read_bits": self.obuf_read_bits,
            "obuf_write_bits": self.obuf_write_bits,
            "register_file_bits": self.register_file_bits,
        }

    def __add__(self, other: "MemoryTraffic") -> "MemoryTraffic":
        if not isinstance(other, MemoryTraffic):
            return NotImplemented
        return MemoryTraffic(
            **{
                key: value + other.as_dict()[key]
                for key, value in self.as_dict().items()
            }
        )


@dataclass(frozen=True)
class LayerResult:
    """Performance and energy of one layer (or fused group) for one batch.

    Attributes
    ----------
    name:
        Layer / block name.
    macs:
        Multiply-accumulates executed for the whole batch.
    input_bits, weight_bits:
        Operand bitwidths the layer executed at on this platform.
    compute_cycles, memory_cycles:
        Cycles the compute fabric and the off-chip interface would each need
        in isolation; the block's latency is their maximum because the ISA
        decouples on-chip execution from off-chip transfers (Section IV-A).
    overhead_cycles:
        Instruction fetch/decode and array fill/drain overhead.
    traffic:
        Bits moved per batch, by memory structure.
    energy:
        Energy per batch, by hardware component.
    utilization:
        Fraction of peak multiply-accumulate throughput achieved during the
        compute phase (1.0 = every Fused-PE busy every cycle).
    """

    name: str
    macs: int
    input_bits: int
    weight_bits: int
    compute_cycles: int
    memory_cycles: int
    overhead_cycles: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    utilization: float = 0.0

    def __post_init__(self) -> None:
        if self.macs < 0:
            raise ValueError(f"macs must be non-negative, got {self.macs}")
        for label, value in (
            ("compute_cycles", self.compute_cycles),
            ("memory_cycles", self.memory_cycles),
            ("overhead_cycles", self.overhead_cycles),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError(f"utilization must be in [0, 1], got {self.utilization}")

    @property
    def total_cycles(self) -> int:
        """Latency of the block: decoupled compute/memory overlap plus overheads."""
        return max(self.compute_cycles, self.memory_cycles) + self.overhead_cycles

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles


@dataclass(frozen=True)
class NetworkResult:
    """Aggregate result of running one network on one platform.

    All per-layer quantities are *per batch*; the aggregate properties below
    convert to per-inference numbers using :attr:`batch_size`.
    """

    network_name: str
    platform: str
    batch_size: int
    frequency_mhz: float
    layers: tuple[LayerResult, ...]

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency_mhz must be positive, got {self.frequency_mhz}")
        if not self.layers:
            raise ValueError("a NetworkResult needs at least one layer result")

    # ------------------------------------------------------------------ #
    # Cycle / time aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> int:
        """Cycles to process one batch."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def compute_cycles(self) -> int:
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def memory_cycles(self) -> int:
        return sum(layer.memory_cycles for layer in self.layers)

    @property
    def batch_latency_s(self) -> float:
        """Wall-clock seconds to process one batch."""
        return self.total_cycles / (self.frequency_mhz * 1e6)

    @property
    def latency_per_inference_s(self) -> float:
        """Average seconds per inference at this batch size."""
        return self.batch_latency_s / self.batch_size

    @property
    def throughput_inferences_per_s(self) -> float:
        """Inferences per second at this batch size."""
        return 1.0 / self.latency_per_inference_s

    # ------------------------------------------------------------------ #
    # Work / traffic / energy aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_macs(self) -> int:
        """Multiply-accumulates per batch."""
        return sum(layer.macs for layer in self.layers)

    @property
    def traffic(self) -> MemoryTraffic:
        total = MemoryTraffic()
        for layer in self.layers:
            total = total + layer.traffic
        return total

    @property
    def energy(self) -> EnergyBreakdown:
        """Energy per batch, by component."""
        return EnergyBreakdown.sum([layer.energy for layer in self.layers])

    @property
    def energy_per_inference_j(self) -> float:
        return self.energy.total / self.batch_size

    @property
    def average_power_w(self) -> float:
        """Average power while processing (energy per batch / batch latency)."""
        return self.energy.total / self.batch_latency_s

    @property
    def effective_throughput_gops(self) -> float:
        """Delivered throughput counting one multiply-accumulate as two operations."""
        return 2.0 * self.total_macs / self.batch_latency_s / 1e9

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def speedup_over(self, other: "NetworkResult") -> float:
        """How many times faster this platform finishes one inference than ``other``."""
        return other.latency_per_inference_s / self.latency_per_inference_s

    def energy_reduction_over(self, other: "NetworkResult") -> float:
        """How many times less energy per inference this platform uses than ``other``."""
        return other.energy_per_inference_j / self.energy_per_inference_j

    def layer(self, name: str) -> LayerResult:
        """Look up a layer result by (block) name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer result named {name!r} in {self.network_name}")

    def summary(self) -> str:
        """Human-readable per-layer summary."""
        lines = [
            f"{self.network_name} on {self.platform} "
            f"(batch {self.batch_size}, {self.frequency_mhz:.0f} MHz)"
        ]
        header = (
            f"{'layer':30s} {'bits':>7s} {'Mcycles':>9s} {'bound':>7s} "
            f"{'util':>6s} {'energy (uJ)':>12s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for layer in self.layers:
            bound = "mem" if layer.is_memory_bound else "compute"
            lines.append(
                f"{layer.name:30s} {layer.input_bits:>3d}/{layer.weight_bits:<3d} "
                f"{layer.total_cycles / 1e6:9.3f} {bound:>7s} "
                f"{layer.utilization:6.2f} {layer.energy.total * 1e6:12.2f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"total: {self.total_cycles / 1e6:.3f} Mcycles/batch, "
            f"{self.latency_per_inference_s * 1e3:.3f} ms/inference, "
            f"{self.energy_per_inference_j * 1e3:.3f} mJ/inference"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Per-layer serialization and result composition (pipeline stage 3)
# ---------------------------------------------------------------------- #
def layer_result_to_dict(layer: LayerResult) -> dict[str, Any]:
    """Serialize one layer result to a JSON-compatible dictionary.

    Every field is an int, float or string and Python's JSON round-trips
    floats exactly, so an entry read back from disk is bit-identical to the
    freshly simulated result.  This is the unit the staged pipeline caches:
    one payload per simulated instruction block.
    """
    return asdict(layer)


def layer_result_from_dict(payload: dict[str, Any]) -> LayerResult:
    """Rebuild a layer result from :func:`layer_result_to_dict` output."""
    return LayerResult(
        name=payload["name"],
        macs=payload["macs"],
        input_bits=payload["input_bits"],
        weight_bits=payload["weight_bits"],
        compute_cycles=payload["compute_cycles"],
        memory_cycles=payload["memory_cycles"],
        overhead_cycles=payload["overhead_cycles"],
        traffic=MemoryTraffic(**payload["traffic"]),
        energy=EnergyBreakdown(**payload["energy"]),
        utilization=payload["utilization"],
    )


def compose_network_result(
    network_name: str,
    platform: str,
    batch_size: int,
    frequency_mhz: float,
    layers: Iterable[LayerResult],
) -> NetworkResult:
    """Compose per-block/per-layer results into one :class:`NetworkResult`.

    This is the final stage of the compile → simulate-blocks → compose
    pipeline and the single constructor every platform model routes through:
    the per-layer records may come from a fresh simulation, from the
    per-block artifact cache, or from a mix of both — composition is pure,
    so the result is byte-identical either way.
    """
    return NetworkResult(
        network_name=network_name,
        platform=platform,
        batch_size=batch_size,
        frequency_mhz=frequency_mhz,
        layers=tuple(layers),
    )
