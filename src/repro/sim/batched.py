"""Batched numpy evaluation of the cycle/energy hot path (pipeline stage 2).

PR 5 vectorized the compiler's tiling search; after it, cold ``run_many``
batches and large design-space sweeps are dominated by per-block cycle and
energy simulation in pure Python (:mod:`repro.sim.cycle_model` +
:mod:`repro.sim.executor`).  This module applies the same playbook to the
simulator: score whole batches of compiled blocks — and whole grids of
``(sim-config, block)`` pairs — in a handful of numpy passes, while the
scalar :meth:`~repro.sim.executor.BitFusionSimulator.run_block` survives as
the property-tested reference oracle (``BitFusionSimulator(config,
batched=False)``).

The contract is **bit-identity**: every :class:`~repro.sim.results.LayerResult`
materialized here must equal the scalar one field for field, float bits
included.  That holds because the batched path replays the *exact same*
float operation sequence the scalar path performs:

* all integer quantities (cycles, traffic bits) are computed in ``int64``
  with the same formulas, so they are exact;
* the scalar path's only float operations are true divisions of integers
  (``math.ceil(a / b)``, ``ideal / total``, the energy pricing products).
  IEEE-754 division and multiplication are deterministic, and an integer
  below :data:`2**53 <_INT_LIMIT>` converts to ``float64`` exactly — so as
  long as every integer operand stays under that limit, ``np.float64``
  reproduces the Python ``float`` result bit for bit;
* energy formulas keep the scalar code's association order
  (``(bits * pj_per_bit) * 1e-12``, buffer terms summed left to right, the
  sum scaled last), and the per-configuration scalars (peak MAC rate, MAC
  energy, per-bit SRAM/DRAM prices) are obtained *from the simulator's own
  energy models*, never recomputed.

Blocks whose magnitudes could break the exactness argument (MAC counts or
DRAM traffic near ``2**53``) fail the exactness guard in
:func:`_simulate_batched_rows` and fall back to ``run_block`` per block —
mirroring the tiling search's int64-overflow fallback.  No in-zoo workload
comes near the guard.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.fusion_unit import FusionConfig, fusion_config_for
from repro.energy.breakdown import EnergyBreakdown
from repro.isa.program import CompiledBlock
from repro.sim.results import LayerResult, MemoryTraffic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from repro.sim.executor import BitFusionSimulator

__all__ = ["simulate_blocks_batched", "simulate_blocks_grid"]

#: Partial sums accumulate at 32 bits in the output buffer (Figure 4).
_PARTIAL_SUM_BITS = 32

#: Largest integer exactly representable in a float64 mantissa.  Every
#: integer the scalar path pushes through a true division must stay below
#: this for the numpy replay to be bit-identical.
_INT_LIMIT = 1 << 53


def _tiled_quotient_sum(
    extent: np.ndarray, tile: np.ndarray, divisor: np.ndarray
) -> np.ndarray:
    """Vector form of :func:`repro.sim.cycle_model._tiled_quotient_sum`.

    Mirrors the scalar helper operation for operation: an integer
    ``divmod`` plus ``ceil`` of *true divisions* (the scalar code divides
    Python ints, producing floats).  ``ceil(0 / d) == 0`` so the
    empty-remainder case needs no mask.
    """
    full = extent // tile
    remainder = extent - full * tile
    divisor_f = divisor.astype(np.float64)
    per_full = np.ceil(tile.astype(np.float64) / divisor_f).astype(np.int64)
    per_rem = np.ceil(remainder.astype(np.float64) / divisor_f).astype(np.int64)
    return full * per_full + per_rem


def _ceil_div(numerator_f: np.ndarray, divisor_f) -> np.ndarray:
    """``math.ceil(a / b)`` replayed on float64 arrays, returned as int64."""
    return np.ceil(numerator_f / divisor_f).astype(np.int64)


def _materialize(
    name: str,
    macs: int,
    input_bits: int,
    weight_bits: int,
    compute_cycles: int,
    memory_cycles: int,
    overhead_cycles: int,
    dram_read_bits: int,
    dram_write_bits: int,
    ibuf_read_bits: int,
    wbuf_read_bits: int,
    obuf_read_bits: int,
    obuf_write_bits: int,
    compute_j: float,
    buffers_j: float,
    dram_j: float,
    utilization: float,
) -> LayerResult:
    """Construct a :class:`LayerResult` without re-running field validation.

    The batched path produces the same values the (validating) scalar
    constructors would accept; skipping ``__post_init__`` here keeps
    materialization from dominating the vectorized win.  The frozen
    dataclasses are not slotted, so populating the instance ``__dict__``
    in one assignment is both legal and the fastest construction path;
    field-based equality, hashing and ``asdict`` serialization are
    unaffected.
    """
    set_ = object.__setattr__
    traffic = MemoryTraffic.__new__(MemoryTraffic)
    set_(
        traffic,
        "__dict__",
        {
            "dram_read_bits": dram_read_bits,
            "dram_write_bits": dram_write_bits,
            "ibuf_read_bits": ibuf_read_bits,
            "wbuf_read_bits": wbuf_read_bits,
            "obuf_read_bits": obuf_read_bits,
            "obuf_write_bits": obuf_write_bits,
            "register_file_bits": 0,
        },
    )
    energy = EnergyBreakdown.__new__(EnergyBreakdown)
    set_(
        energy,
        "__dict__",
        {
            "compute": compute_j,
            "buffers": buffers_j,
            "register_file": 0.0,
            "dram": dram_j,
        },
    )
    result = LayerResult.__new__(LayerResult)
    set_(
        result,
        "__dict__",
        {
            "name": name,
            "macs": macs,
            "input_bits": input_bits,
            "weight_bits": weight_bits,
            "compute_cycles": compute_cycles,
            "memory_cycles": memory_cycles,
            "overhead_cycles": overhead_cycles,
            "traffic": traffic,
            "energy": energy,
            "utilization": utilization,
        },
    )
    return result


def simulate_blocks_batched(
    simulator: "BitFusionSimulator", blocks: Sequence[CompiledBlock]
) -> list[LayerResult]:
    """Simulate ``blocks`` under one configuration in one numpy pass.

    Returns results in block order, bit-identical to
    ``[simulator.run_block(b) for b in blocks]``.
    """
    return simulate_blocks_grid([simulator], blocks)[0]


def simulate_blocks_grid(
    simulators: Sequence["BitFusionSimulator"], blocks: Sequence[CompiledBlock]
) -> list[list[LayerResult]]:
    """Simulate a ``(sim-config, block)`` grid in one vectorized pass.

    ``simulators`` are rows, ``blocks`` are columns; row ``i`` of the
    return value is bit-identical to ``[simulators[i].run_block(b) for b
    in blocks]``.  This is the 2-D entry point the session engine uses for
    sweeps that vary only simulation parameters (bandwidth, frequency,
    array geometry): the per-block structure-of-arrays extraction is done
    once and broadcast across every configuration row.

    Rows whose simulator was built with ``batched=False`` run through the
    scalar oracle instead; blocks whose magnitudes fail the exactness
    guard fall back to ``run_block`` per ``(row, block)`` pair.
    """
    blocks = list(blocks)
    results: list[list[LayerResult | None]] = [
        [None] * len(blocks) for _ in simulators
    ]
    if not blocks:
        return [list() for _ in simulators]

    scalar_rows = [i for i, sim in enumerate(simulators) if not sim.batched]
    for row in scalar_rows:
        results[row] = [simulators[row].run_block(block) for block in blocks]
    batched_rows = [i for i, sim in enumerate(simulators) if sim.batched]
    if not batched_rows:
        return results  # type: ignore[return-value]

    fallback = _simulate_batched_rows(
        [simulators[row] for row in batched_rows],
        blocks,
        [results[row] for row in batched_rows],
    )
    for index in fallback:
        block = blocks[index]
        for row in batched_rows:
            results[row][index] = simulators[row].run_block(block)
    return results  # type: ignore[return-value]


def _simulate_batched_rows(
    simulators: Sequence["BitFusionSimulator"],
    blocks: list[CompiledBlock],
    rows_out: list[list[LayerResult | None]],
) -> list[int]:
    """Vectorized core: fill every ``rows_out[r][j]`` whose block is batchable.

    Returns the indices of blocks that failed the exactness guard (the
    caller runs those through the scalar oracle).  The guard bounds every
    intermediate the batched path materializes by multiples of values it
    checks against :data:`_INT_LIMIT`:

    * traffic bits are at most ``32 * macs`` per structure and the energy
      model sums output-buffer reads and writes (``<= 64 * macs``),
    * compute cycles are at most ``4 * macs`` (``temporal_passes <= 4``)
      and fill/drain is at most ``m * r * (rows + columns)``, so their sum
      bounds total/overhead cycles (``max_fill`` uses the largest array
      among the configuration rows),
    * the memory-cycle conversion divides the summed DRAM traffic.
    """
    max_fill = max(sim.config.rows + sim.config.columns for sim in simulators)
    limit = _INT_LIMIT

    # ---- structure-of-arrays extraction (shared across all config rows) --
    # One tuple per batchable block, transposed into columns afterwards:
    # a single ``append`` per block beats one list per field by a wide
    # margin, and this loop is the sequential floor of the batched path.
    fusion_index: dict[tuple[int, int], int] = {}
    fusions: list[FusionConfig] = []
    fallback: list[int] = []
    lanes: list[tuple] = []
    append = lanes.append
    for index, block in enumerate(blocks):
        tiling = block.tiling
        workload = tiling.workload
        m_v = workload.m
        n_v = workload.n
        r_v = workload.r
        macs_v = m_v * n_v * r_v
        dram_read_v = int(
            tiling.dram_weight_bits
            + tiling.dram_input_bits
            + tiling.dram_output_read_bits
        )
        dram_write_v = int(tiling.dram_output_write_bits)
        gemm = block.layer.has_gemm()
        tm, tn, tr = tiling.tile_m, tiling.tile_n, tiling.tile_r
        if (
            64 * macs_v >= limit
            or 4 * macs_v + m_v * r_v * max_fill >= limit
            or dram_read_v + dram_write_v >= limit
            # The scalar cycle model rejects non-positive tiles; let it.
            or (gemm and (tm <= 0 or tn <= 0 or tr <= 0))
        ):
            fallback.append(index)
            continue
        key = (workload.input_bits, workload.weight_bits)
        fusion = fusion_index.get(key)
        if fusion is None:
            fusion = len(fusions)
            fusion_index[key] = fusion
            fusions.append(fusion_config_for(*key))
        if not gemm:
            # Sanitized tile extents keep the (masked-out) vector lanes of
            # the cycle model free of divisions by zero.
            tm = tm if tm > 0 else 1
            tn = tn if tn > 0 else 1
            tr = tr if tr > 0 else 1
        append(
            (
                index,
                block.name,
                key[0],
                key[1],
                fusion,
                m_v,
                n_v,
                r_v,
                macs_v,
                gemm,
                tm,
                tn,
                tr,
                dram_read_v,
                dram_write_v,
                len(block.block),
            )
        )

    count = len(lanes)
    if not count:
        return fallback
    (
        out_indices,
        names,
        ib_list,
        wb_list,
        fi_l,
        m_l,
        n_l,
        r_l,
        macs_l,
        gemm_l,
        tile_m_l,
        tile_n_l,
        tile_r_l,
        dram_read_list,
        dram_write_list,
        block_len_l,
    ) = zip(*lanes)
    fi = np.array(fi_l, dtype=np.int64)
    m = np.array(m_l, dtype=np.int64)
    n = np.array(n_l, dtype=np.int64)
    r = np.array(r_l, dtype=np.int64)
    macs = np.array(macs_l, dtype=np.int64)
    tile_m = np.array(tile_m_l, dtype=np.int64)
    tile_n = np.array(tile_n_l, dtype=np.int64)
    tile_r = np.array(tile_r_l, dtype=np.int64)
    dram_read = np.array(dram_read_list, dtype=np.int64)
    dram_write = np.array(dram_write_list, dtype=np.int64)
    block_len = np.array(block_len_l, dtype=np.int64)
    is_gemm = np.array(gemm_l, dtype=bool)

    # Per-fusion, configuration-independent lane widths and pass counts.
    temporal = np.array([f.temporal_passes for f in fusions], dtype=np.int64)
    fused_pes = np.array([f.fused_pes for f in fusions], dtype=np.int64)
    input_lane = np.array(
        [f.input_lane_bits * f.temporal_passes for f in fusions], dtype=np.int64
    )
    weight_lane = np.array(
        [f.weight_lane_bits * f.temporal_passes for f in fusions], dtype=np.int64
    )

    m_f = m.astype(np.float64)
    r_f = r.astype(np.float64)
    macs_f = macs.astype(np.float64)
    temporal_b = temporal[fi]
    input_lane_b = input_lane[fi]
    weight_lane_b = weight_lane[fi]

    # Tile counts are float-ceil of true divisions (TilingPlan properties).
    m_tiles = _ceil_div(m_f, tile_m.astype(np.float64))
    n_tiles = _ceil_div(n.astype(np.float64), tile_n.astype(np.float64))
    r_tiles = _ceil_div(r_f, tile_r.astype(np.float64))
    reduction_passes = np.where(is_gemm, np.maximum(1, n_tiles), 1)

    # Traffic shared across configuration rows except the ibuf column term.
    outputs = m * r
    wbuf_bits = macs * weight_lane_b
    obuf_write_bits = outputs * _PARTIAL_SUM_BITS * np.maximum(1, reduction_passes)
    obuf_read_bits = outputs * _PARTIAL_SUM_BITS * np.maximum(0, reduction_passes - 1)
    obuf_total_f = (obuf_read_bits + obuf_write_bits).astype(np.float64)
    dram_total = dram_read + dram_write
    dram_total_f = dram_total.astype(np.float64)
    wbuf_f = wbuf_bits.astype(np.float64)

    wbuf_list = wbuf_bits.tolist()
    obuf_read_list = obuf_read_bits.tolist()
    obuf_write_list = obuf_write_bits.tolist()

    for sim, out in zip(simulators, rows_out):
        config = sim.config
        models = sim._energy
        rows = config.rows
        columns = config.columns
        scale = config.technology.energy_scale
        bandwidth = float(config.dram_bandwidth_bits_per_cycle)
        ibuf_pj = models.ibuf.energy_per_bit_pj
        wbuf_pj = models.wbuf.energy_per_bit_pj
        obuf_pj = models.obuf.energy_per_bit_pj
        dram_pj = models.dram.pj_per_bit
        # Per-fusion scalars computed through the simulator's own models so
        # the float values are the scalar path's, bit for bit.
        logical_rows = rows * fused_pes
        peak = np.array(
            [
                rows * columns * f.fused_pes / f.temporal_passes
                for f in fusions
            ],
            dtype=np.float64,
        )
        mac_pj = np.array(
            [models.compute.fusion_mac_energy_pj(f) for f in fusions],
            dtype=np.float64,
        )

        # ---- cycle model (GemmCycleModel.estimate, vectorized) ----------
        red = _tiled_quotient_sum(n, tile_n, logical_rows[fi])
        out_passes = _tiled_quotient_sum(m, tile_m, np.full(count, columns, dtype=np.int64))
        compute = red * out_passes * r * temporal_b
        fill_drain = m_tiles * r_tiles * (rows + columns)
        ideal = _ceil_div(macs_f, peak[fi])
        total = compute + fill_drain
        utilization = np.where(
            total > 0,
            np.minimum(
                1.0, ideal.astype(np.float64) / np.maximum(total, 1).astype(np.float64)
            ),
            0.0,
        )

        compute_out = np.where(is_gemm, compute, 0)
        overhead_out = np.where(is_gemm, fill_drain + block_len, block_len)
        util_out = np.where(is_gemm, utilization, 0.0)
        macs_out = np.where(is_gemm, macs, 0)

        # ---- traffic + memory cycles (_buffer_traffic + conversion) -----
        ibuf_bits = _ceil_div(macs_f, float(columns)) * input_lane_b
        memory = _ceil_div(dram_total_f, bandwidth)

        # ---- energy pricing (_energy_breakdown, association preserved) --
        compute_j = macs_out.astype(np.float64) * mac_pj[fi] * 1e-12
        buffers_j = (
            ibuf_bits.astype(np.float64) * ibuf_pj * 1e-12
            + wbuf_f * wbuf_pj * 1e-12
            + obuf_total_f * obuf_pj * 1e-12
        ) * scale
        dram_j = dram_total_f * dram_pj * 1e-12

        lanes = zip(
            out_indices,
            names,
            macs_out.tolist(),
            ib_list,
            wb_list,
            compute_out.tolist(),
            memory.tolist(),
            overhead_out.tolist(),
            dram_read_list,
            dram_write_list,
            ibuf_bits.tolist(),
            wbuf_list,
            obuf_read_list,
            obuf_write_list,
            compute_j.tolist(),
            buffers_j.tolist(),
            dram_j.tolist(),
            util_out.tolist(),
        )
        for target, *values in lanes:
            out[target] = _materialize(*values)
    return fallback
