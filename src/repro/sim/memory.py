"""Scratchpad-buffer and DRAM-channel accounting.

The Fusion-ISA decouples on-chip buffer accesses (``rd-buf``/``wr-buf``)
from off-chip transfers (``ld-mem``/``st-mem``).  The simulator therefore
tracks the two separately:

* :class:`ScratchpadBuffer` counts data-array accesses of a fixed width
  (32 bits in the evaluated configuration, Section II-B) and converts bit
  totals to access counts — the quantity the CACTI-like energy model prices.
* :class:`DramChannel` accumulates off-chip traffic and converts it to
  transfer cycles at the configured bandwidth — the quantity the decoupled
  access/execute timing model overlaps with compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

__all__ = ["ScratchpadBuffer", "DramChannel"]


@dataclass
class ScratchpadBuffer:
    """One on-chip scratchpad (IBUF, OBUF or WBUF) with access accounting.

    Parameters
    ----------
    name:
        Buffer name used in reports.
    capacity_kb:
        Storage capacity.
    access_bits:
        Width of one data-array access; the data-infusion register splits
        this row into operand lanes, so one access can feed several
        low-bitwidth operands.
    """

    name: str
    capacity_kb: float
    access_bits: int = 32
    read_accesses: int = field(default=0, init=False)
    write_accesses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("buffer name must be non-empty")
        if self.capacity_kb <= 0:
            raise ValueError(f"capacity_kb must be positive, got {self.capacity_kb}")
        if self.access_bits <= 0:
            raise ValueError(f"access_bits must be positive, got {self.access_bits}")

    @property
    def capacity_bits(self) -> int:
        return int(self.capacity_kb * 1024 * 8)

    def fits(self, bits: int) -> bool:
        """Whether a tile of ``bits`` fits in the buffer."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return bits <= self.capacity_bits

    def accesses_for_bits(self, bits: int) -> int:
        """Data-array accesses needed to move ``bits`` through the buffer."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return ceil(bits / self.access_bits)

    def record_reads(self, bits: int) -> int:
        """Account for reading ``bits`` from the buffer; returns accesses added."""
        accesses = self.accesses_for_bits(bits)
        self.read_accesses += accesses
        return accesses

    def record_writes(self, bits: int) -> int:
        """Account for writing ``bits`` into the buffer; returns accesses added."""
        accesses = self.accesses_for_bits(bits)
        self.write_accesses += accesses
        return accesses

    @property
    def total_accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    def reset(self) -> None:
        self.read_accesses = 0
        self.write_accesses = 0


@dataclass
class DramChannel:
    """Off-chip memory channel with bandwidth-based timing.

    Parameters
    ----------
    bandwidth_bits_per_cycle:
        Sustained transfer rate seen by the accelerator (the paper's default
        configuration provides 128 bits per cycle).
    """

    bandwidth_bits_per_cycle: int
    read_bits: int = field(default=0, init=False)
    write_bits: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_cycle <= 0:
            raise ValueError(
                "bandwidth must be positive, got "
                f"{self.bandwidth_bits_per_cycle} bits/cycle"
            )

    def record_read(self, bits: int) -> None:
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        self.read_bits += bits

    def record_write(self, bits: int) -> None:
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        self.write_bits += bits

    @property
    def total_bits(self) -> int:
        return self.read_bits + self.write_bits

    def cycles_for_bits(self, bits: int) -> int:
        """Cycles needed to transfer ``bits`` at the channel bandwidth."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return ceil(bits / self.bandwidth_bits_per_cycle)

    @property
    def total_cycles(self) -> int:
        """Cycles to transfer everything recorded so far."""
        return self.cycles_for_bits(self.total_bits)

    def reset(self) -> None:
        self.read_bits = 0
        self.write_bits = 0
