"""Aggregation helpers shared by the experiment harness.

The paper summarizes its per-benchmark comparisons with geometric means
("geomean" columns of Figures 13, 15-18); these helpers keep that math in
one place and guard against the usual pitfalls (empty inputs, non-positive
ratios).
"""

from __future__ import annotations

from math import exp, log

from repro.sim.results import NetworkResult

__all__ = ["geometric_mean", "speedup", "energy_reduction", "normalize"]


def geometric_mean(values: list[float] | tuple[float, ...]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        total += log(value)
    return exp(total / len(values))


def speedup(candidate: NetworkResult, baseline: NetworkResult) -> float:
    """Per-inference speedup of ``candidate`` over ``baseline``."""
    return candidate.speedup_over(baseline)


def energy_reduction(candidate: NetworkResult, baseline: NetworkResult) -> float:
    """Per-inference energy reduction of ``candidate`` over ``baseline``."""
    return candidate.energy_reduction_over(baseline)


def normalize(values: dict[str, float], reference_key: str) -> dict[str, float]:
    """Express every value relative to the entry named ``reference_key``."""
    if reference_key not in values:
        raise KeyError(f"reference {reference_key!r} not present in {sorted(values)}")
    reference = values[reference_key]
    if reference == 0:
        raise ValueError(f"reference value for {reference_key!r} is zero")
    return {key: value / reference for key, value in values.items()}
