"""Cycle-level performance and energy simulator for Bit Fusion.

The paper drives its evaluation with a cycle-accurate simulator that
executes Fusion-ISA instruction blocks and reports cycle counts plus the
number of accesses to the on-chip buffers and off-chip memory; energy comes
from multiplying those counts by synthesis / CACTI / DRAM per-access
energies.  This package is the equivalent component of the reproduction:

* :mod:`repro.sim.results`     — per-layer and per-network result records.
* :mod:`repro.sim.memory`      — scratchpad and DRAM traffic accounting.
* :mod:`repro.sim.cycle_model` — compute-cycle model of the systolic array
  executing one tiled GEMM at a given fusion configuration.
* :mod:`repro.sim.executor`    — the simulator proper: executes a compiled
  :class:`~repro.isa.program.Program` block by block and produces a
  :class:`~repro.sim.results.NetworkResult`.
* :mod:`repro.sim.batched`     — the vectorized block executor: evaluates
  whole batches of ``(sim-config, block)`` pairs in numpy passes,
  bit-identical to the scalar ``run_block`` oracle.
* :mod:`repro.sim.stats`       — aggregation helpers (geometric means,
  speedups, energy ratios) shared by the experiment harness.
"""

from repro.sim.results import LayerResult, MemoryTraffic, NetworkResult
from repro.sim.memory import ScratchpadBuffer, DramChannel
from repro.sim.cycle_model import GemmCycleModel, CycleEstimate
from repro.sim.batched import simulate_blocks_batched, simulate_blocks_grid
from repro.sim.executor import BitFusionSimulator, simulate_network
from repro.sim.stats import geometric_mean, speedup, energy_reduction

__all__ = [
    "LayerResult",
    "MemoryTraffic",
    "NetworkResult",
    "ScratchpadBuffer",
    "DramChannel",
    "GemmCycleModel",
    "CycleEstimate",
    "BitFusionSimulator",
    "simulate_network",
    "simulate_blocks_batched",
    "simulate_blocks_grid",
    "geometric_mean",
    "speedup",
    "energy_reduction",
]
