"""Compute-cycle model of the systolic array executing one tiled GEMM.

The Bit Fusion systolic array behaves as a single matrix-vector engine whose
throughput depends on the fusion configuration: an ``R×C`` array of Fusion
Units, each forming ``F`` Fused-PEs, retires ``R·C·F / passes``
multiply-accumulates per cycle (Section II-C).  This module turns a tiled
GEMM (from the compiler's :class:`~repro.isa.tiling.TilingPlan`) into cycle
counts:

* every ``(M-tile, N-tile, R-tile)`` combination maps the tile's reduction
  dimension onto the array's logical rows and its output neurons onto the
  columns, retiring one column of partial sums per cycle per temporal pass;
* partially filled tiles (edges of the iteration space) and reduction /
  output dimensions that do not fill the array cost the same cycles as full
  ones — this quantization is exactly the utilization loss that keeps small
  layers (LeNet-5's 6-channel convolutions, for instance) well below peak;
* each output tile additionally pays an array fill/drain latency of
  ``rows + columns`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.core.config import BitFusionConfig
from repro.core.fusion_unit import FusionConfig, fusion_config_for
from repro.isa.tiling import TilingPlan

__all__ = ["CycleEstimate", "GemmCycleModel"]


@dataclass(frozen=True)
class CycleEstimate:
    """Compute-phase cycle estimate of one block.

    Attributes
    ----------
    compute_cycles:
        Cycles the systolic array spends issuing multiply-accumulates.
    fill_drain_cycles:
        Pipeline fill/drain cycles across all output tiles.
    ideal_cycles:
        Cycles a perfectly utilized array would need (``MACs / peak rate``).
    """

    compute_cycles: int
    fill_drain_cycles: int
    ideal_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.fill_drain_cycles

    @property
    def utilization(self) -> float:
        """Achieved fraction of the array's peak throughput (0..1)."""
        if self.total_cycles == 0:
            return 0.0
        return min(1.0, self.ideal_cycles / self.total_cycles)


def _tiled_quotient_sum(extent: int, tile: int, divisor: int) -> int:
    """Sum of ``ceil(tile_size / divisor)`` over the tiles covering ``extent``.

    Edge tiles are smaller than ``tile``; this helper accounts for them
    exactly instead of multiplying the full-tile cost by the tile count.
    """
    if extent <= 0 or tile <= 0 or divisor <= 0:
        raise ValueError(
            f"extent, tile and divisor must be positive, got {extent}, {tile}, {divisor}"
        )
    full_tiles, remainder = divmod(extent, tile)
    total = full_tiles * ceil(tile / divisor)
    if remainder:
        total += ceil(remainder / divisor)
    return total


class GemmCycleModel:
    """Maps tiled GEMMs onto the systolic array and reports cycle counts."""

    def __init__(self, config: BitFusionConfig) -> None:
        self.config = config

    def fusion_config(self, input_bits: int, weight_bits: int) -> FusionConfig:
        """Fusion configuration the ``setup`` instruction establishes."""
        return fusion_config_for(input_bits, weight_bits)

    def estimate(self, tiling: TilingPlan) -> CycleEstimate:
        """Cycle estimate for executing one tiled GEMM on the array."""
        workload = tiling.workload
        fusion = self.fusion_config(workload.input_bits, workload.weight_bits)

        rows = self.config.rows
        columns = self.config.columns
        logical_rows = rows * fusion.fused_pes

        # Reduction dimension: each pass through the array covers
        # ``logical_rows`` elements of N; output dimension: ``columns``
        # neurons per pass.  Edge tiles are accounted exactly.
        reduction_passes = _tiled_quotient_sum(workload.n, tiling.tile_n, logical_rows)
        output_passes = _tiled_quotient_sum(workload.m, tiling.tile_m, columns)

        compute_cycles = (
            reduction_passes * output_passes * workload.r * fusion.temporal_passes
        )

        # One fill/drain per output tile per R tile (outputs stream through
        # the column accumulators once per input-column group).
        output_tiles = tiling.m_tiles * tiling.r_tiles
        fill_drain_cycles = output_tiles * (rows + columns)

        peak_macs_per_cycle = rows * columns * fusion.fused_pes / fusion.temporal_passes
        ideal_cycles = ceil(workload.macs / peak_macs_per_cycle)

        return CycleEstimate(
            compute_cycles=int(compute_cycles),
            fill_drain_cycles=int(fill_drain_cycles),
            ideal_cycles=int(ideal_cycles),
        )

    # ------------------------------------------------------------------ #
    # Buffer-access model
    # ------------------------------------------------------------------ #
    def buffer_accesses_per_compute_cycle(self, fusion: FusionConfig) -> dict[str, int]:
        """Data-array accesses per active compute cycle, by scratchpad.

        The systolic data flow reads one input word per row per cycle
        (shared across the row's Fusion Units), one weight word per Fusion
        Unit per cycle (private WBUF) and accumulates one partial-sum word
        per column per cycle in the output buffer (read + write).
        """
        del fusion  # access counts are set by the array geometry, not the bitwidth
        return {
            "ibuf_reads": self.config.rows,
            "wbuf_reads": self.config.fusion_units,
            "obuf_reads": self.config.columns,
            "obuf_writes": self.config.columns,
        }
