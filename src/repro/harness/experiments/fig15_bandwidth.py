"""Figure 15 — sensitivity of Bit Fusion performance to off-chip bandwidth.

The default configuration provides 128 bits/cycle; the sweep scales it from
0.25x to 4x.  The paper's headline observations, which the acceptance checks
verify, are that the recurrent benchmarks (LSTM, RNN) scale almost linearly
with bandwidth because they are bandwidth-bound, while the convolutional
benchmarks saturate thanks to on-chip data reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, resolve_session

__all__ = ["BandwidthRow", "DEFAULT_BANDWIDTHS", "run", "format_table"]

#: Bandwidths swept by the paper, in bits per cycle.
DEFAULT_BANDWIDTHS = (32, 64, 128, 256, 512)

#: The baseline bandwidth all speedups are normalized to.
REFERENCE_BANDWIDTH = 128


@dataclass(frozen=True)
class BandwidthRow:
    """One benchmark's normalized performance across the bandwidth sweep."""

    benchmark: str
    speedup_by_bandwidth: dict[int, float]
    paper_speedup_by_bandwidth: dict[int, float]

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {"benchmark": self.benchmark}
        for bandwidth, value in sorted(self.speedup_by_bandwidth.items()):
            row[f"{bandwidth} b/c"] = value
        return row


def run(
    batch_size: int = 16,
    bandwidths: tuple[int, ...] = DEFAULT_BANDWIDTHS,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> list[BandwidthRow]:
    """Sweep the off-chip bandwidth and normalize to the 128 bits/cycle default.

    The scan itself is one declarative :meth:`EvaluationSession.sweep` call;
    the session deduplicates the 128 bits/cycle points against any other
    experiment that already simulated the default configuration.
    """
    if REFERENCE_BANDWIDTH not in bandwidths:
        raise ValueError(
            f"the sweep must include the reference bandwidth {REFERENCE_BANDWIDTH}"
        )
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    sweep = resolve_session(session).sweep(
        names, batch_sizes=(batch_size,), bandwidths=bandwidths
    )

    rows: list[BandwidthRow] = []
    for name in names:
        latency_by_bandwidth = {
            bandwidth: sweep.latency(network=name, bandwidth=bandwidth)
            for bandwidth in bandwidths
        }
        reference = latency_by_bandwidth[REFERENCE_BANDWIDTH]
        rows.append(
            BandwidthRow(
                benchmark=name,
                speedup_by_bandwidth={
                    bandwidth: reference / latency
                    for bandwidth, latency in latency_by_bandwidth.items()
                },
                paper_speedup_by_bandwidth=dict(
                    paper_data.FIG15_BANDWIDTH_SPEEDUP.get(name, {})
                ),
            )
        )
    return rows


def format_table(rows: list[BandwidthRow]) -> str:
    from repro.harness.reporting import format_table as _format

    return _format(
        rows, title="Figure 15 - speedup vs off-chip bandwidth (normalized to 128 bits/cycle)"
    )
