"""Figure 16 — sensitivity of Bit Fusion performance to batch size.

Batching amortizes weight reads across inputs.  The paper sweeps batch sizes
1 through 256 (default 16) and observes that the bandwidth-bound recurrent
benchmarks gain more than 20x while the convolutional benchmarks, which
already reuse weights across spatial positions, gain less than 1.6x; gains
flatten beyond batch 64 once the bandwidth suffices to keep the Fusion Units
busy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, resolve_session

__all__ = ["BatchRow", "DEFAULT_BATCH_SIZES", "run", "format_table"]

#: Batch sizes swept by the paper.
DEFAULT_BATCH_SIZES = (1, 4, 16, 64, 256)


@dataclass(frozen=True)
class BatchRow:
    """One benchmark's per-inference speedup across the batch sweep."""

    benchmark: str
    speedup_by_batch: dict[int, float]
    paper_speedup_by_batch: dict[int, float]

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {"benchmark": self.benchmark}
        for batch, value in sorted(self.speedup_by_batch.items()):
            row[f"batch {batch}"] = value
        return row


def run(
    batch_sizes: tuple[int, ...] = DEFAULT_BATCH_SIZES,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> list[BatchRow]:
    """Sweep the batch size and normalize per-inference latency to batch 1.

    One declarative :meth:`EvaluationSession.sweep` call over the batch
    axis; the batch-16 points dedupe against the other experiments' default
    workloads through the shared session cache.
    """
    if 1 not in batch_sizes:
        raise ValueError("the sweep must include batch size 1 (the normalization baseline)")
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    sweep = resolve_session(session).sweep(names, batch_sizes=batch_sizes)

    rows: list[BatchRow] = []
    for name in names:
        latency_by_batch = {
            batch: sweep.latency(network=name, batch_size=batch) for batch in batch_sizes
        }
        reference = latency_by_batch[1]
        rows.append(
            BatchRow(
                benchmark=name,
                speedup_by_batch={
                    batch: reference / latency for batch, latency in latency_by_batch.items()
                },
                paper_speedup_by_batch=dict(paper_data.FIG16_BATCH_SPEEDUP.get(name, {})),
            )
        )
    return rows


def format_table(rows: list[BatchRow]) -> str:
    from repro.harness.reporting import format_table as _format

    return _format(rows, title="Figure 16 - speedup vs batch size (normalized to batch 1)")
