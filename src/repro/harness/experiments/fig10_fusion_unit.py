"""Figure 10 — Fusion Unit versus temporal design, area and power.

The figure compares the synthesized area and power of the hybrid
spatio-temporal Fusion Unit against a purely temporal design with the same
number of 2-bit multipliers.  The reproduction reports the published
synthesis constants (the proprietary flow cannot be re-run) and, on top of
them, the derived same-area throughput advantage of spatial fusion that
motivates the design choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.temporal import TemporalDesignComparison, TemporalDesignModel
from repro.harness import paper_data
from repro.session import EvaluationSession

__all__ = ["FusionUnitRow", "run", "run_throughput_advantage", "format_table"]


@dataclass(frozen=True)
class FusionUnitRow:
    """One component row of the Figure 10 comparison."""

    metric: str
    component: str
    temporal: float
    fusion_unit: float
    reduction: float

    def as_row(self) -> dict[str, object]:
        return {
            "metric": self.metric,
            "component": self.component,
            "temporal": self.temporal,
            "fusion unit": self.fusion_unit,
            "reduction": self.reduction,
        }


def run(session: EvaluationSession | None = None) -> list[FusionUnitRow]:
    """Build the Figure 10 area and power rows.

    ``session`` is accepted for harness uniformity; the rows derive from
    published synthesis constants, so no simulation is cached.
    """
    del session
    comparison = TemporalDesignComparison()
    rows: list[FusionUnitRow] = []
    for entry in comparison.area_rows():
        rows.append(
            FusionUnitRow(
                metric="area (um^2)",
                component=str(entry["component"]),
                temporal=float(entry["temporal_um2"]),
                fusion_unit=float(entry["fusion_um2"]),
                reduction=float(entry["reduction"]),
            )
        )
    for entry in comparison.power_rows():
        rows.append(
            FusionUnitRow(
                metric="power (nW)",
                component=str(entry["component"]),
                temporal=float(entry["temporal_nw"]),
                fusion_unit=float(entry["fusion_nw"]),
                reduction=float(entry["reduction"]),
            )
        )
    return rows


def run_throughput_advantage(
    compute_area_mm2: float = 1.1,
    bit_pairs: tuple[tuple[int, int], ...] = ((2, 2), (4, 4), (8, 8), (16, 16)),
) -> list[dict[str, float | str]]:
    """Same-area throughput of spatial fusion versus the temporal design."""
    model = TemporalDesignModel(compute_area_mm2=compute_area_mm2)
    rows: list[dict[str, float | str]] = []
    for input_bits, weight_bits in bit_pairs:
        rows.append(
            {
                "bitwidth": f"{input_bits}x{weight_bits}",
                "temporal MACs/cycle": model.temporal_macs_per_cycle(input_bits, weight_bits),
                "fusion MACs/cycle": model.fusion_macs_per_cycle(input_bits, weight_bits),
                "advantage": model.throughput_advantage(input_bits, weight_bits),
            }
        )
    return rows


def format_table(rows: list[FusionUnitRow]) -> str:
    from repro.harness.reporting import format_table as _format

    paper_area, paper_power = paper_data.FIG10_FUSION_VS_TEMPORAL
    table = _format(rows, title="Figure 10 - Fusion Unit vs temporal design")
    return (
        f"{table}\n"
        f"paper totals: {paper_area:.1f}x area reduction, {paper_power:.1f}x power reduction"
    )
