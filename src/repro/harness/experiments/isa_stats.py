"""Section IV — Fusion-ISA instruction-block statistics.

The paper claims that blocks of 30-86 instructions suffice to express the
LSTM, CNN, pooling and fully-connected layers of the evaluated benchmarks,
which keeps the von Neumann overhead negligible because each block is
fetched and decoded once per layer.  This experiment compiles every
benchmark and reports per-block instruction counts and binary footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.harness import paper_data
from repro.isa.compiler import FusionCompiler

__all__ = ["IsaStatsRow", "run", "format_table"]


@dataclass(frozen=True)
class IsaStatsRow:
    """Instruction-count statistics for one compiled benchmark."""

    benchmark: str
    blocks: int
    min_instructions: int
    max_instructions: int
    mean_instructions: float
    total_instructions: int
    binary_bytes: int

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "blocks": self.blocks,
            "min instrs": self.min_instructions,
            "max instrs": self.max_instructions,
            "mean instrs": self.mean_instructions,
            "total instrs": self.total_instructions,
            "binary bytes": self.binary_bytes,
        }


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    config: BitFusionConfig | None = None,
) -> list[IsaStatsRow]:
    """Compile every benchmark and collect per-block instruction statistics."""
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    compiler = FusionCompiler(
        config if config is not None else BitFusionConfig.eyeriss_matched(batch_size=batch_size)
    )
    rows: list[IsaStatsRow] = []
    for name in names:
        program = compiler.compile(models.load(name), batch_size=batch_size)
        counts = [len(compiled.block) for compiled in program]
        rows.append(
            IsaStatsRow(
                benchmark=name,
                blocks=len(program),
                min_instructions=min(counts),
                max_instructions=max(counts),
                mean_instructions=sum(counts) / len(counts),
                total_instructions=program.total_instructions(),
                binary_bytes=program.total_binary_bytes(),
            )
        )
    return rows


def format_table(rows: list[IsaStatsRow]) -> str:
    from repro.harness.reporting import format_table as _format

    low, high = paper_data.ISA_BLOCK_INSTRUCTION_RANGE
    table = _format(rows, title="Fusion-ISA block statistics (Section IV)")
    return f"{table}\npaper: {low}-{high} instructions per block for the evaluated layers"
