"""Section IV — Fusion-ISA instruction-block statistics.

The paper claims that blocks of 30-86 instructions suffice to express the
LSTM, CNN, pooling and fully-connected layers of the evaluated benchmarks,
which keeps the von Neumann overhead negligible because each block is
fetched and decoded once per layer.  This experiment compiles every
benchmark and reports per-block instruction counts and binary footprints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, Workload, resolve_session

__all__ = ["IsaStatsRow", "run", "format_table"]


@dataclass(frozen=True)
class IsaStatsRow:
    """Instruction-count statistics for one compiled benchmark."""

    benchmark: str
    blocks: int
    min_instructions: int
    max_instructions: int
    mean_instructions: float
    total_instructions: int
    binary_bytes: int

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "blocks": self.blocks,
            "min instrs": self.min_instructions,
            "max instrs": self.max_instructions,
            "mean instrs": self.mean_instructions,
            "total instrs": self.total_instructions,
            "binary bytes": self.binary_bytes,
        }


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    config: BitFusionConfig | None = None,
    session: EvaluationSession | None = None,
) -> list[IsaStatsRow]:
    """Compile every benchmark and collect per-block instruction statistics.

    Compilation goes through the session's :meth:`~repro.session.session.
    EvaluationSession.compile_stats`, so repeated report runs against a
    persistent cache directory skip recompilation entirely.
    """
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    rows: list[IsaStatsRow] = []
    for name in names:
        stats = session.compile_stats(
            Workload.bitfusion(name, batch_size=batch_size, config=config)
        )
        counts = stats.block_instruction_counts
        rows.append(
            IsaStatsRow(
                benchmark=name,
                blocks=stats.blocks,
                min_instructions=min(counts),
                max_instructions=max(counts),
                mean_instructions=sum(counts) / len(counts),
                total_instructions=stats.total_instructions,
                binary_bytes=stats.binary_bytes,
            )
        )
    return rows


def format_table(rows: list[IsaStatsRow]) -> str:
    from repro.harness.reporting import format_table as _format

    low, high = paper_data.ISA_BLOCK_INSTRUCTION_RANGE
    table = _format(rows, title="Fusion-ISA block statistics (Section IV)")
    return f"{table}\npaper: {low}-{high} instructions per block for the evaluated layers"
