"""Figure 13 — Bit Fusion performance and energy improvements over Eyeriss.

Methodology (Section V-A/V-B1): both accelerators get the same compute-area
budget, the same 500 MHz clock and the same 45 nm node; AlexNet and
ResNet-18 run their regular models on Eyeriss and their widened quantized
models on Bit Fusion (which is why those two see the smallest gains).  The
experiment also reproduces the per-layer AlexNet breakdown embedded in the
figure's data (convolution and fully-connected layers grouped by bitwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, Workload, resolve_session
from repro.sim.results import NetworkResult
from repro.sim.stats import geometric_mean

__all__ = ["EyerissComparisonRow", "ComparisonSummary", "run", "run_alexnet_per_layer", "format_table"]


@dataclass(frozen=True)
class EyerissComparisonRow:
    """Per-benchmark speedup and energy reduction over Eyeriss."""

    benchmark: str
    speedup: float
    paper_speedup: float
    energy_reduction: float
    paper_energy_reduction: float
    bitfusion_ms_per_inference: float
    eyeriss_ms_per_inference: float

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "speedup": self.speedup,
            "paper speedup": self.paper_speedup,
            "energy reduction": self.energy_reduction,
            "paper energy red.": self.paper_energy_reduction,
            "BF ms/inf": self.bitfusion_ms_per_inference,
            "Eyeriss ms/inf": self.eyeriss_ms_per_inference,
        }


@dataclass(frozen=True)
class ComparisonSummary:
    """Rows plus geometric means for one accelerator-vs-accelerator figure."""

    rows: tuple[EyerissComparisonRow, ...]
    geomean_speedup: float
    geomean_energy_reduction: float
    paper_geomean_speedup: float
    paper_geomean_energy_reduction: float


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    config: BitFusionConfig | None = None,
    session: EvaluationSession | None = None,
) -> ComparisonSummary:
    """Run every benchmark on Bit Fusion and Eyeriss and compare."""
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    workloads = [
        Workload.bitfusion(name, batch_size=batch_size, config=config) for name in names
    ] + [Workload.eyeriss(name, batch_size=batch_size) for name in names]
    results = session.run_many(workloads)
    bf_results, ey_results = results[: len(names)], results[len(names) :]

    rows: list[EyerissComparisonRow] = []
    for name, bf_result, ey_result in zip(names, bf_results, ey_results):
        rows.append(
            EyerissComparisonRow(
                benchmark=name,
                speedup=bf_result.speedup_over(ey_result),
                paper_speedup=paper_data.FIG13_SPEEDUP_OVER_EYERISS[name],
                energy_reduction=bf_result.energy_reduction_over(ey_result),
                paper_energy_reduction=paper_data.FIG13_ENERGY_REDUCTION_OVER_EYERISS[name],
                bitfusion_ms_per_inference=bf_result.latency_per_inference_s * 1e3,
                eyeriss_ms_per_inference=ey_result.latency_per_inference_s * 1e3,
            )
        )

    paper_speed, paper_energy = paper_data.FIG13_GEOMEAN
    return ComparisonSummary(
        rows=tuple(rows),
        geomean_speedup=geometric_mean([row.speedup for row in rows]),
        geomean_energy_reduction=geometric_mean([row.energy_reduction for row in rows]),
        paper_geomean_speedup=paper_speed,
        paper_geomean_energy_reduction=paper_energy,
    )


def run_alexnet_per_layer(
    batch_size: int = 16, session: EvaluationSession | None = None
) -> list[dict[str, object]]:
    """Per-layer-group AlexNet improvement over Eyeriss (Figure 13 aux data).

    Layers are grouped the way the paper's embedded table groups them: the
    8-bit convolution (conv1), the 4-bit/1-bit convolutions, the 4-bit/1-bit
    fully-connected layers, and the 8-bit classifier.
    """
    session = resolve_session(session)
    bf_result, ey_result = session.run_many(
        [
            Workload.bitfusion("AlexNet", batch_size=batch_size),
            Workload.eyeriss("AlexNet", batch_size=batch_size),
        ]
    )

    def _group(result: NetworkResult, wide: bool) -> dict[str, tuple[float, float]]:
        groups: dict[str, tuple[float, float]] = {}
        for layer in result.layers:
            base_name = layer.name.split("+")[0]
            if base_name.startswith("conv"):
                kind = "conv"
            elif base_name.startswith("fc"):
                kind = "fc"
            else:
                continue
            if wide:
                bits = "8/8-bit" if layer.input_bits == 8 else "4/1-bit"
            else:
                bits = "8/8-bit" if base_name in ("conv1", "fc8") else "4/1-bit"
            key = f"{kind} {bits}"
            cycles, energy = groups.get(key, (0.0, 0.0))
            groups[key] = (cycles + layer.total_cycles, energy + layer.energy.total)
        return groups

    bf_groups = _group(bf_result, wide=True)
    ey_groups = _group(ey_result, wide=False)

    rows: list[dict[str, object]] = []
    for key in ("conv 8/8-bit", "conv 4/1-bit", "fc 4/1-bit", "fc 8/8-bit"):
        if key not in bf_groups or key not in ey_groups:
            continue
        bf_cycles, bf_energy = bf_groups[key]
        ey_cycles, ey_energy = ey_groups[key]
        bf_time = bf_cycles / (bf_result.frequency_mhz * 1e6)
        ey_time = ey_cycles / (ey_result.frequency_mhz * 1e6)
        paper_speed, paper_energy = paper_data.FIG13_ALEXNET_PER_LAYER.get(key, (None, None))
        rows.append(
            {
                "layer group": key,
                "speedup": ey_time / bf_time if bf_time else float("inf"),
                "paper speedup": paper_speed,
                "energy reduction": ey_energy / bf_energy if bf_energy else float("inf"),
                "paper energy red.": paper_energy,
            }
        )
    return rows


def format_table(summary: ComparisonSummary) -> str:
    from repro.harness.reporting import format_table as _format

    table = _format(summary.rows, title="Figure 13 - improvement over Eyeriss")
    return (
        f"{table}\n"
        f"geomean speedup {summary.geomean_speedup:.2f} (paper {summary.paper_geomean_speedup:.1f}), "
        f"geomean energy reduction {summary.geomean_energy_reduction:.2f} "
        f"(paper {summary.paper_geomean_energy_reduction:.1f})"
    )
