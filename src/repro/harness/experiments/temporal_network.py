"""Section III-C — whole-network comparison against the temporal design.

Figure 10 compares the spatial Fusion Unit against the temporal bit-serial
unit at the level of one multiply-accumulate (area, power, and same-area
peak throughput).  This experiment extends the comparison to the full
benchmark networks: the whole-network
:class:`~repro.baselines.temporal.TemporalAcceleratorModel` speaks the
shared ``evaluate(network, batch_size)`` protocol, so it runs through the
same cached evaluation session as every other platform, and the table
reports how much faster (and more energy-efficient) the Eyeriss-matched
Bit Fusion design is than a same-area temporal design on each benchmark.

Because both designs execute layers at their quantized bitwidths, the gap
here isolates the cost of *temporal* bit-flexibility itself — the per-unit
shifter and wide accumulator that spatial fusion amortizes across the
BitBrick array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.session import EvaluationSession, Workload, resolve_session
from repro.sim.stats import geometric_mean

__all__ = ["TemporalComparisonRow", "TemporalComparisonSummary", "run", "format_table"]


@dataclass(frozen=True)
class TemporalComparisonRow:
    """Per-benchmark comparison of Bit Fusion against the temporal design."""

    benchmark: str
    temporal_latency_ms: float
    bitfusion_latency_ms: float
    speedup: float
    energy_reduction: float

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "temporal ms/inf": self.temporal_latency_ms,
            "bitfusion ms/inf": self.bitfusion_latency_ms,
            "speedup": self.speedup,
            "energy reduction": self.energy_reduction,
        }


@dataclass(frozen=True)
class TemporalComparisonSummary:
    rows: tuple[TemporalComparisonRow, ...]
    geomean_speedup: float
    geomean_energy_reduction: float


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> TemporalComparisonSummary:
    """Run every benchmark on the temporal design and on Bit Fusion.

    Both platforms go through one :meth:`~repro.session.session.
    EvaluationSession.run_many` batch, so the Bit Fusion points dedupe
    against the other experiments' default workloads and the temporal runs
    are cached for any future comparison.
    """
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    results = session.run_many(
        [Workload.temporal(name, batch_size=batch_size) for name in names]
        + [Workload.bitfusion(name, batch_size=batch_size) for name in names]
    )
    temporal_results, bf_results = results[: len(names)], results[len(names) :]

    rows = tuple(
        TemporalComparisonRow(
            benchmark=name,
            temporal_latency_ms=temporal.latency_per_inference_s * 1e3,
            bitfusion_latency_ms=bitfusion.latency_per_inference_s * 1e3,
            speedup=bitfusion.speedup_over(temporal),
            energy_reduction=bitfusion.energy_reduction_over(temporal),
        )
        for name, temporal, bitfusion in zip(names, temporal_results, bf_results)
    )
    return TemporalComparisonSummary(
        rows=rows,
        geomean_speedup=geometric_mean([row.speedup for row in rows]),
        geomean_energy_reduction=geometric_mean([row.energy_reduction for row in rows]),
    )


def format_table(summary: TemporalComparisonSummary) -> str:
    from repro.harness.reporting import format_table as _format

    table = _format(
        summary.rows,
        title="Section III-C - whole-network comparison vs the temporal design",
    )
    return (
        f"{table}\n"
        f"geomean speedup {summary.geomean_speedup:.2f}, "
        f"geomean energy reduction {summary.geomean_energy_reduction:.2f} "
        f"(same-area temporal design, quantized bitwidths on both platforms)"
    )
