"""Design-space exploration section of the report (``dse``).

The paper's 16x16, 8-bit-fused configuration is the product of a design
space exploration (Section V); this section reproduces a small slice of it:
a built-in :class:`~repro.dse.spec.SweepSpec` crossing systolic-array
geometry with technology node over the two fastest benchmarks, reduced to a
latency/energy/area Pareto frontier.  Larger explorations run the same
machinery from a spec file via ``python -m repro.harness sweep`` (see
``docs/sweeps.md``).
"""

from __future__ import annotations

from repro.dse.report import format_sweep_report
from repro.dse.runner import DesignSpaceResult, run_sweep
from repro.dse.spec import SweepSpec
from repro.session import EvaluationSession, resolve_session

__all__ = ["DEFAULT_NETWORKS", "default_spec", "run", "format_table"]

#: Benchmarks the built-in exploration sweeps (the two cheapest to
#: simulate, so the section stays a small fraction of the full report).
DEFAULT_NETWORKS = ("LeNet-5", "LSTM")


def default_spec(benchmarks: tuple[str, ...] | None = None) -> SweepSpec:
    """The report's built-in two-axis exploration (array x technology node)."""
    return SweepSpec.from_dict(
        {
            "name": "array geometry x technology node",
            "networks": list(benchmarks or DEFAULT_NETWORKS),
            "batch_sizes": [16],
            "axes": {
                "array": [[16, 16], [32, 16], [32, 32]],
                "technology": ["45nm", "16nm"],
            },
            "objectives": ["latency", "energy", "area"],
        }
    )


def run(
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> DesignSpaceResult:
    """Run the built-in exploration through the shared evaluation session.

    The 32x16 / 45 nm points are the paper's Eyeriss-matched configuration,
    so they deduplicate against every other experiment in the report that
    already simulated it.
    """
    return run_sweep(default_spec(benchmarks), resolve_session(session))


def format_table(result: DesignSpaceResult) -> str:
    """Render the exploration as the report section body."""
    return format_sweep_report(result)
