"""Figure 17 — performance comparison with GPUs.

Bit Fusion is scaled to the GPUs' 16 nm node (4,096 Fusion Units, same
500 MHz clock) and compared against the Tegra X2 (FP32) and the Titan Xp in
both FP32 and INT8 modes, all normalized to the Tegra X2.  The regular
(non-widened) AlexNet and ResNet-18 models run on the GPUs, mirroring the
Eyeriss methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig
from repro.baselines.gpu import GpuPrecision, TEGRA_X2, TITAN_XP
from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, Workload, resolve_session
from repro.sim.stats import geometric_mean

__all__ = ["GpuComparisonRow", "GpuComparisonSummary", "run", "format_table"]


@dataclass(frozen=True)
class GpuComparisonRow:
    """Speedups over the Tegra X2 baseline for one benchmark."""

    benchmark: str
    titanx_fp32: float
    titanx_int8: float
    bitfusion: float
    paper_titanx_fp32: float | None
    paper_titanx_int8: float | None
    paper_bitfusion: float | None
    bitfusion_power_w: float

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "TitanX FP32": self.titanx_fp32,
            "TitanX INT8": self.titanx_int8,
            "Bit Fusion": self.bitfusion,
            "paper FP32": self.paper_titanx_fp32,
            "paper INT8": self.paper_titanx_int8,
            "paper BF": self.paper_bitfusion,
            "BF power (W)": self.bitfusion_power_w,
        }


@dataclass(frozen=True)
class GpuComparisonSummary:
    """Per-benchmark rows plus geometric means over the Tegra X2 baseline."""

    rows: tuple[GpuComparisonRow, ...]
    geomean_titanx_fp32: float
    geomean_titanx_int8: float
    geomean_bitfusion: float


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> GpuComparisonSummary:
    """Run the GPU comparison at the 16 nm Bit Fusion scale point."""
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    per_name = [
        (
            Workload.gpu(name, TEGRA_X2, GpuPrecision.FP32, batch_size=batch_size),
            Workload.gpu(name, TITAN_XP, GpuPrecision.FP32, batch_size=batch_size),
            Workload.gpu(name, TITAN_XP, GpuPrecision.INT8, batch_size=batch_size),
            Workload.bitfusion(
                name,
                batch_size=batch_size,
                config=BitFusionConfig.gpu_scaled_16nm(batch_size=batch_size),
            ),
        )
        for name in names
    ]
    results = session.run_many([w for group in per_name for w in group])

    rows: list[GpuComparisonRow] = []
    for index, name in enumerate(names):
        tx2_result, fp32_result, int8_result, bf_result = results[4 * index : 4 * index + 4]
        paper = paper_data.FIG17_SPEEDUP_OVER_TX2.get(name, {})
        rows.append(
            GpuComparisonRow(
                benchmark=name,
                titanx_fp32=fp32_result.speedup_over(tx2_result),
                titanx_int8=int8_result.speedup_over(tx2_result),
                bitfusion=bf_result.speedup_over(tx2_result),
                paper_titanx_fp32=paper.get("titanx-fp32"),
                paper_titanx_int8=paper.get("titanx-int8"),
                paper_bitfusion=paper.get("bitfusion"),
                bitfusion_power_w=bf_result.average_power_w,
            )
        )

    return GpuComparisonSummary(
        rows=tuple(rows),
        geomean_titanx_fp32=geometric_mean([row.titanx_fp32 for row in rows]),
        geomean_titanx_int8=geometric_mean([row.titanx_int8 for row in rows]),
        geomean_bitfusion=geometric_mean([row.bitfusion for row in rows]),
    )


def format_table(summary: GpuComparisonSummary) -> str:
    from repro.harness.reporting import format_table as _format

    paper = paper_data.FIG17_SPEEDUP_OVER_TX2["geomean"]
    table = _format(summary.rows, title="Figure 17 - speedup over Tegra X2")
    return (
        f"{table}\n"
        f"geomean: TitanX FP32 {summary.geomean_titanx_fp32:.1f}x "
        f"(paper {paper['titanx-fp32']:.0f}x), "
        f"TitanX INT8 {summary.geomean_titanx_int8:.1f}x (paper {paper['titanx-int8']:.0f}x), "
        f"Bit Fusion {summary.geomean_bitfusion:.1f}x (paper {paper['bitfusion']:.0f}x)"
    )
