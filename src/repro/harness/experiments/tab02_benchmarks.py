"""Table II — benchmark characteristics (multiply-adds and model size).

The table lists, for each of the eight benchmarks, its type, domain,
dataset, the number of multiply-add operations per inference and the model
weight footprint.  The reproduction reports the same columns from the model
zoo and places the paper's published numbers alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession

__all__ = ["BenchmarkRow", "run", "format_table"]


@dataclass(frozen=True)
class BenchmarkRow:
    """One row of Table II, measured and published."""

    benchmark: str
    kind: str
    domain: str
    dataset: str
    macs_mops: float
    paper_macs_mops: float
    weights_mb: float
    paper_weights_mb: float
    layer_count: int

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "type": self.kind,
            "dataset": self.dataset,
            "MACs (Mops)": self.macs_mops,
            "paper MACs": self.paper_macs_mops,
            "weights (MB)": self.weights_mb,
            "paper weights": self.paper_weights_mb,
            "layers": self.layer_count,
        }


def run(
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> list[BenchmarkRow]:
    """Build the Table II rows from the model zoo.

    ``session`` is accepted for harness uniformity; the table is pure
    network statistics, so no simulation is cached.
    """
    del session
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    rows: list[BenchmarkRow] = []
    for name in names:
        info = models.BENCHMARKS[name]
        network = info.build()
        rows.append(
            BenchmarkRow(
                benchmark=name,
                kind=info.kind,
                domain=info.domain,
                dataset=info.dataset,
                macs_mops=network.total_macs() / 1e6,
                paper_macs_mops=float(paper_data.TABLE2_MACS_MOPS[name]),
                weights_mb=network.total_weight_bytes() / 1e6,
                paper_weights_mb=paper_data.TABLE2_WEIGHTS_MB[name],
                layer_count=len(network),
            )
        )
    return rows


def format_table(rows: list[BenchmarkRow]) -> str:
    from repro.harness.reporting import format_table as _format

    return _format(rows, title="Table II - evaluated CNN/RNN benchmarks")
