"""Figure 1 — bitwidth variation across the benchmark DNNs.

Figure 1(a) plots, for each benchmark, the fraction of multiply-add
operations at each (input, weight) bitwidth pair; Figure 1(b) plots the
fraction of weights stored at each bitwidth; the embedded table reports the
fraction of all operations that are multiply-adds (>99% everywhere).  All
three derive directly from the model zoo's layer shapes and per-layer
bitwidth declarations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.session import EvaluationSession

__all__ = ["BitwidthRow", "run", "format_table"]


@dataclass(frozen=True)
class BitwidthRow:
    """One benchmark's bitwidth profile.

    Attributes
    ----------
    benchmark:
        Benchmark name.
    mac_fraction_by_bits:
        ``{(input_bits, weight_bits): fraction}`` of multiply-adds.
    weight_fraction_by_bits:
        ``{weight_bits: fraction}`` of stored weights.
    dominant_bits:
        The (input, weight) pair carrying the largest multiply-add share.
    macs_at_or_below_4bit:
        Fraction of multiply-adds whose operands are both four bits or fewer.
    mac_op_fraction:
        Fraction of all operations that are multiply-adds (Figure 1 table).
    """

    benchmark: str
    mac_fraction_by_bits: dict[tuple[int, int], float]
    weight_fraction_by_bits: dict[int, float]
    dominant_bits: tuple[int, int]
    macs_at_or_below_4bit: float
    mac_op_fraction: float

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "dominant (in/wt)": f"{self.dominant_bits[0]}/{self.dominant_bits[1]}",
            "MACs <= 4 bits": self.macs_at_or_below_4bit,
            "MAC share of ops": self.mac_op_fraction,
        }


def run(
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> list[BitwidthRow]:
    """Compute the Figure 1 bitwidth profiles for the selected benchmarks.

    ``session`` is accepted for harness uniformity; this experiment derives
    everything from the network structures and performs no simulation, so
    there is nothing for the session to cache.
    """
    del session
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    rows: list[BitwidthRow] = []
    for name in names:
        network = models.load(name)
        profile = network.bitwidth_profile()
        dominant = max(profile.mac_fraction, key=profile.mac_fraction.get)
        rows.append(
            BitwidthRow(
                benchmark=name,
                mac_fraction_by_bits=dict(profile.mac_fraction),
                weight_fraction_by_bits=dict(profile.weight_fraction),
                dominant_bits=dominant,
                macs_at_or_below_4bit=profile.macs_at_or_below(4),
                mac_op_fraction=network.mac_fraction(),
            )
        )
    return rows


def format_table(rows: list[BitwidthRow]) -> str:
    """Render the Figure 1 summary as a text table."""
    from repro.harness.reporting import format_table as _format

    return _format(rows, title="Figure 1 - bitwidth variation across benchmarks")
