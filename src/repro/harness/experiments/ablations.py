"""Ablations of the design choices DESIGN.md calls out.

The paper motivates three mechanisms beyond raw bit-level fusion; these
ablations quantify each one on the reproduction's simulator:

* **Loop ordering** (Section IV-B) — disable the output/weight/input
  stationary search and always use the naive output-stationary order.
* **Layer fusion** (Section IV-B) — give every pooling/activation layer its
  own block so intermediate activations round-trip through DRAM.
* **Bit-level fusion itself** — force every layer to execute at a fixed
  8-bit/8-bit configuration, which is what a fixed-bitwidth accelerator with
  the same systolic fabric would do.  The gap between this and the
  bit-flexible run is the paper's headline claim, isolated from the
  baseline-accelerator modelling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.session import EvaluationSession, Workload, resolve_session
from repro.sim.stats import geometric_mean

__all__ = ["AblationRow", "run", "format_table"]


@dataclass(frozen=True)
class AblationRow:
    """Effect of disabling one mechanism, for one benchmark."""

    benchmark: str
    baseline_ms: float
    no_loop_ordering_slowdown: float
    no_layer_fusion_slowdown: float
    fixed_8bit_slowdown: float
    no_loop_ordering_energy_increase: float
    no_layer_fusion_energy_increase: float
    fixed_8bit_energy_increase: float

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "flexible ms/inf": self.baseline_ms,
            "no loop-order (perf x)": self.no_loop_ordering_slowdown,
            "no fusion (perf x)": self.no_layer_fusion_slowdown,
            "fixed 8-bit (perf x)": self.fixed_8bit_slowdown,
            "no loop-order (energy x)": self.no_loop_ordering_energy_increase,
            "no fusion (energy x)": self.no_layer_fusion_energy_increase,
            "fixed 8-bit (energy x)": self.fixed_8bit_energy_increase,
        }


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    fixed_bits: int = 8,
    session: EvaluationSession | None = None,
) -> list[AblationRow]:
    """Measure the slowdown and energy increase from disabling each mechanism.

    Each ablation is a declarative workload variation — compiler flags or a
    fixed-bitwidth network transform — so the whole experiment is one
    deduplicated batch, and the flexible baseline runs are shared with every
    other experiment that simulates the default configuration.
    """
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    per_name = [
        (
            Workload.bitfusion(name, batch_size=batch_size),
            Workload.bitfusion(name, batch_size=batch_size, enable_loop_ordering=False),
            Workload.bitfusion(name, batch_size=batch_size, enable_layer_fusion=False),
            Workload.bitfusion(name, batch_size=batch_size, fixed_bits=fixed_bits),
        )
        for name in names
    ]
    results = session.run_many([w for group in per_name for w in group])

    rows: list[AblationRow] = []
    for index, name in enumerate(names):
        base, without_ordering, without_fusion, fixed = results[4 * index : 4 * index + 4]

        rows.append(
            AblationRow(
                benchmark=name,
                baseline_ms=base.latency_per_inference_s * 1e3,
                no_loop_ordering_slowdown=without_ordering.latency_per_inference_s
                / base.latency_per_inference_s,
                no_layer_fusion_slowdown=without_fusion.latency_per_inference_s
                / base.latency_per_inference_s,
                fixed_8bit_slowdown=fixed.latency_per_inference_s
                / base.latency_per_inference_s,
                no_loop_ordering_energy_increase=without_ordering.energy_per_inference_j
                / base.energy_per_inference_j,
                no_layer_fusion_energy_increase=without_fusion.energy_per_inference_j
                / base.energy_per_inference_j,
                fixed_8bit_energy_increase=fixed.energy_per_inference_j
                / base.energy_per_inference_j,
            )
        )
    return rows


def geomean_summary(rows: list[AblationRow]) -> dict[str, float]:
    """Geometric means of every ablation's slowdown / energy increase."""
    return {
        "no_loop_ordering_slowdown": geometric_mean(
            [row.no_loop_ordering_slowdown for row in rows]
        ),
        "no_layer_fusion_slowdown": geometric_mean(
            [row.no_layer_fusion_slowdown for row in rows]
        ),
        "fixed_8bit_slowdown": geometric_mean([row.fixed_8bit_slowdown for row in rows]),
        "no_loop_ordering_energy_increase": geometric_mean(
            [row.no_loop_ordering_energy_increase for row in rows]
        ),
        "no_layer_fusion_energy_increase": geometric_mean(
            [row.no_layer_fusion_energy_increase for row in rows]
        ),
        "fixed_8bit_energy_increase": geometric_mean(
            [row.fixed_8bit_energy_increase for row in rows]
        ),
    }


def format_table(rows: list[AblationRow]) -> str:
    from repro.harness.reporting import format_table as _format

    return _format(rows, title="Compiler / fusion ablations (slowdown and energy vs full Bit Fusion)")
