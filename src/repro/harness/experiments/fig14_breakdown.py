"""Figure 14 — energy breakdown of Bit Fusion and Eyeriss.

The figure splits each accelerator's energy per benchmark into compute,
on-chip buffers, register file and DRAM.  Two properties carry the paper's
argument and are what the acceptance checks look for:

* memory (buffers + DRAM) dominates both accelerators (>80% of energy), and
* Eyeriss spends over half its energy in per-PE register files, a component
  Bit Fusion's systolic organization eliminates entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, Workload, resolve_session

__all__ = ["BreakdownRow", "run", "format_table"]


@dataclass(frozen=True)
class BreakdownRow:
    """Energy fractions of one platform on one benchmark."""

    benchmark: str
    platform: str
    compute: float
    buffers: float
    register_file: float
    dram: float
    paper_compute: float | None = None
    paper_buffers: float | None = None
    paper_register_file: float | None = None
    paper_dram: float | None = None

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "platform": self.platform,
            "compute": self.compute,
            "buffers": self.buffers,
            "register file": self.register_file,
            "DRAM": self.dram,
        }

    @property
    def memory_fraction(self) -> float:
        """Fraction of energy spent moving data (buffers + register file + DRAM)."""
        return self.buffers + self.register_file + self.dram


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> list[BreakdownRow]:
    """Compute the per-component energy fractions for both accelerators."""
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    results = session.run_many(
        [Workload.bitfusion(name, batch_size=batch_size) for name in names]
        + [Workload.eyeriss(name, batch_size=batch_size) for name in names]
    )
    bf_results, ey_results = results[: len(names)], results[len(names) :]

    rows: list[BreakdownRow] = []
    for name, bf_result, ey_result in zip(names, bf_results, ey_results):
        bf_fraction = bf_result.energy.fractions()
        ey_fraction = ey_result.energy.fractions()
        paper_bf = paper_data.FIG14_BITFUSION_FRACTIONS.get(name)
        paper_ey = paper_data.FIG14_EYERISS_FRACTIONS.get(name)
        rows.append(
            BreakdownRow(
                benchmark=name,
                platform="bitfusion",
                compute=bf_fraction["compute"],
                buffers=bf_fraction["buffers"],
                register_file=bf_fraction["register_file"],
                dram=bf_fraction["dram"],
                paper_compute=paper_bf[0] if paper_bf else None,
                paper_buffers=paper_bf[1] if paper_bf else None,
                paper_register_file=paper_bf[2] if paper_bf else None,
                paper_dram=paper_bf[3] if paper_bf else None,
            )
        )
        rows.append(
            BreakdownRow(
                benchmark=name,
                platform="eyeriss",
                compute=ey_fraction["compute"],
                buffers=ey_fraction["buffers"],
                register_file=ey_fraction["register_file"],
                dram=ey_fraction["dram"],
                paper_compute=paper_ey[0] if paper_ey else None,
                paper_buffers=paper_ey[1] if paper_ey else None,
                paper_register_file=paper_ey[2] if paper_ey else None,
                paper_dram=paper_ey[3] if paper_ey else None,
            )
        )
    return rows


def format_table(rows: list[BreakdownRow]) -> str:
    from repro.harness.reporting import format_table as _format

    return _format(rows, title="Figure 14 - energy breakdown (fractions of total)")
