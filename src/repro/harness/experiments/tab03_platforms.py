"""Table III — the evaluated ASIC and GPU platforms.

The table summarizes the hardware configurations used throughout the
evaluation: Eyeriss and Stripes (the ASIC baselines), the two GPUs, and the
Bit Fusion configurations matched to each comparison.  The reproduction
assembles the same table from the configuration objects so any drift between
the models and the documented setup is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.eyeriss import EyerissConfig
from repro.baselines.gpu import TEGRA_X2, TITAN_XP
from repro.baselines.stripes import StripesConfig
from repro.baselines.temporal import TemporalAcceleratorModel
from repro.core.config import BitFusionConfig
from repro.session import EvaluationSession

__all__ = ["PlatformRow", "run", "format_table"]


@dataclass(frozen=True)
class PlatformRow:
    """One platform of Table III."""

    platform: str
    compute_units: str
    frequency_mhz: float
    on_chip_memory: str
    technology: str
    precision: str

    def as_row(self) -> dict[str, object]:
        return {
            "platform": self.platform,
            "compute units": self.compute_units,
            "freq (MHz)": self.frequency_mhz,
            "on-chip memory": self.on_chip_memory,
            "technology": self.technology,
            "precision": self.precision,
        }


def run(session: EvaluationSession | None = None) -> list[PlatformRow]:
    """Assemble the Table III platform rows from the configuration objects.

    ``session`` is accepted for harness uniformity; the table reads static
    configuration objects, so no simulation is cached.
    """
    del session
    eyeriss = EyerissConfig()
    stripes = StripesConfig()
    temporal = TemporalAcceleratorModel()
    bf_eyeriss = BitFusionConfig.eyeriss_matched()
    bf_stripes = BitFusionConfig.stripes_matched()
    bf_gpu = BitFusionConfig.gpu_scaled_16nm()

    return [
        PlatformRow(
            platform="Eyeriss",
            compute_units=f"{eyeriss.pe_count} PEs",
            frequency_mhz=eyeriss.frequency_mhz,
            on_chip_memory=f"{eyeriss.global_buffer_kb:.1f} KB",
            technology=eyeriss.technology.name,
            precision=f"{eyeriss.operand_bits}-bit fixed",
        ),
        PlatformRow(
            platform="Stripes",
            compute_units=f"{stripes.tiles}x{stripes.sips_per_tile} SIPs",
            frequency_mhz=stripes.frequency_mhz,
            on_chip_memory=f"{stripes.edram_kb / 1024:.0f} MB eDRAM + {stripes.sram_kb:.0f} KB SRAM",
            technology=stripes.technology.name,
            precision=f"{stripes.input_bits}-bit inputs x serial weights",
        ),
        PlatformRow(
            platform="Tegra X2",
            compute_units="256 CUDA cores",
            frequency_mhz=875.0,
            on_chip_memory="8 GB LPDDR4 (device memory)",
            technology="16nm",
            precision="FP32",
        ),
        PlatformRow(
            platform="Titan Xp",
            compute_units="3,584 CUDA cores",
            frequency_mhz=1531.0,
            on_chip_memory="12 GB GDDR5X (device memory)",
            technology="16nm",
            precision=f"FP32 / INT8 ({TITAN_XP.peak_int8_gops / 1e3:.0f} TOPS peak)",
        ),
        PlatformRow(
            platform="Temporal bit-serial (same area)",
            compute_units=(
                f"{temporal.design.temporal_units_in_area} units ({temporal.lanes} lanes)"
            ),
            frequency_mhz=temporal.frequency_mhz,
            on_chip_memory=f"n/a ({temporal.design.compute_area_mm2} mm2 area-matched)",
            technology="45nm",
            precision="2-bit serial slices",
        ),
        PlatformRow(
            platform="Bit Fusion (Eyeriss-matched)",
            compute_units=f"{bf_eyeriss.fusion_units} Fusion Units ({bf_eyeriss.bitbricks} BitBricks)",
            frequency_mhz=bf_eyeriss.frequency_mhz,
            on_chip_memory=f"{bf_eyeriss.total_sram_kb:.0f} KB",
            technology=bf_eyeriss.technology.name,
            precision="2-16 bit fused",
        ),
        PlatformRow(
            platform="Bit Fusion (Stripes-matched)",
            compute_units=f"{bf_stripes.fusion_units} Fusion Units",
            frequency_mhz=bf_stripes.frequency_mhz,
            on_chip_memory=f"{bf_stripes.total_sram_kb:.0f} KB",
            technology=bf_stripes.technology.name,
            precision="2-16 bit fused",
        ),
        PlatformRow(
            platform="Bit Fusion (16 nm, GPU comparison)",
            compute_units=f"{bf_gpu.fusion_units} Fusion Units",
            frequency_mhz=bf_gpu.frequency_mhz,
            on_chip_memory=f"{bf_gpu.total_sram_kb:.0f} KB",
            technology=bf_gpu.technology.name,
            precision="2-16 bit fused",
        ),
    ]


def format_table(rows: list[PlatformRow]) -> str:
    from repro.harness.reporting import format_table as _format

    return _format(rows, title="Table III - evaluated platforms")


# The Tegra X2 spec is referenced for completeness even though its row is
# assembled from literals; keeping the import makes the linkage explicit.
_ = TEGRA_X2
