"""Figure 18 — Bit Fusion performance and energy improvements over Stripes.

Methodology (Section V-B4): the 4,096 bit-serial SIPs in each of Stripes'
16 tiles are replaced by a 512-Fusion-Unit systolic array in the same
compute-area budget, at Stripes' 980 MHz clock and with the same on-chip
storage.  Stripes exploits reduced precision only for weights (its inputs
stay at 16 bits), so benchmarks with low *input* bitwidths are where Bit
Fusion pulls ahead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.harness import paper_data
from repro.session import EvaluationSession, Workload, resolve_session
from repro.sim.stats import geometric_mean

__all__ = ["StripesComparisonRow", "StripesComparisonSummary", "run", "format_table"]


@dataclass(frozen=True)
class StripesComparisonRow:
    """Per-benchmark speedup and energy reduction over Stripes."""

    benchmark: str
    speedup: float
    paper_speedup: float
    energy_reduction: float
    paper_energy_reduction: float

    def as_row(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "speedup": self.speedup,
            "paper speedup": self.paper_speedup,
            "energy reduction": self.energy_reduction,
            "paper energy red.": self.paper_energy_reduction,
        }


@dataclass(frozen=True)
class StripesComparisonSummary:
    rows: tuple[StripesComparisonRow, ...]
    geomean_speedup: float
    geomean_energy_reduction: float
    paper_geomean_speedup: float
    paper_geomean_energy_reduction: float


def run(
    batch_size: int = 16,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> StripesComparisonSummary:
    """Run every benchmark on the Stripes-matched Bit Fusion and on Stripes."""
    names = benchmarks if benchmarks is not None else tuple(models.benchmark_names())
    session = resolve_session(session)
    stripes_matched = BitFusionConfig.stripes_matched(batch_size=batch_size)
    results = session.run_many(
        [
            Workload.bitfusion(name, batch_size=batch_size, config=stripes_matched)
            for name in names
        ]
        + [Workload.stripes(name, batch_size=batch_size) for name in names]
    )
    bf_results, stripes_results = results[: len(names)], results[len(names) :]

    rows: list[StripesComparisonRow] = []
    for name, bf_result, stripes_result in zip(names, bf_results, stripes_results):
        rows.append(
            StripesComparisonRow(
                benchmark=name,
                speedup=bf_result.speedup_over(stripes_result),
                paper_speedup=paper_data.FIG18_SPEEDUP_OVER_STRIPES[name],
                energy_reduction=bf_result.energy_reduction_over(stripes_result),
                paper_energy_reduction=paper_data.FIG18_ENERGY_REDUCTION_OVER_STRIPES[name],
            )
        )

    paper_speed, paper_energy = paper_data.FIG18_GEOMEAN
    return StripesComparisonSummary(
        rows=tuple(rows),
        geomean_speedup=geometric_mean([row.speedup for row in rows]),
        geomean_energy_reduction=geometric_mean([row.energy_reduction for row in rows]),
        paper_geomean_speedup=paper_speed,
        paper_geomean_energy_reduction=paper_energy,
    )


def format_table(summary: StripesComparisonSummary) -> str:
    from repro.harness.reporting import format_table as _format

    table = _format(summary.rows, title="Figure 18 - improvement over Stripes")
    return (
        f"{table}\n"
        f"geomean speedup {summary.geomean_speedup:.2f} "
        f"(paper {summary.paper_geomean_speedup:.1f}), "
        f"geomean energy reduction {summary.geomean_energy_reduction:.2f} "
        f"(paper {summary.paper_geomean_energy_reduction:.1f})"
    )
