"""Experiment runners, one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` entry point returning plain result rows
and a ``format_table(...)`` (or ``summary``) helper; the benchmark suite
under ``benchmarks/`` wraps these runners in ``pytest-benchmark`` fixtures.
"""

from repro.harness.experiments import (
    ablations,
    dse_explore,
    fig01_bitwidths,
    fig10_fusion_unit,
    fig13_eyeriss,
    fig14_breakdown,
    fig15_bandwidth,
    fig16_batch,
    fig17_gpu,
    fig18_stripes,
    isa_stats,
    tab02_benchmarks,
    tab03_platforms,
    temporal_network,
)

__all__ = [
    "ablations",
    "dse_explore",
    "fig01_bitwidths",
    "fig10_fusion_unit",
    "fig13_eyeriss",
    "fig14_breakdown",
    "fig15_bandwidth",
    "fig16_batch",
    "fig17_gpu",
    "fig18_stripes",
    "isa_stats",
    "tab02_benchmarks",
    "tab03_platforms",
    "temporal_network",
]
