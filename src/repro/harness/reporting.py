"""Table formatting shared by the experiment runners and the benchmarks.

The experiments return plain rows (lists of dictionaries or dataclasses with
``as_row()``); these helpers render them as aligned text tables (for
benchmark console output) or GitHub-flavoured markdown (for EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "markdown_table", "format_ratio"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def _normalize_rows(rows: Sequence[Mapping[str, Any] | Any]) -> list[dict[str, Any]]:
    normalized: list[dict[str, Any]] = []
    for row in rows:
        if isinstance(row, Mapping):
            normalized.append(dict(row))
        elif hasattr(row, "as_row"):
            normalized.append(dict(row.as_row()))
        elif hasattr(row, "__dataclass_fields__"):
            normalized.append(
                {name: getattr(row, name) for name in row.__dataclass_fields__}
            )
        else:
            raise TypeError(f"cannot turn {type(row).__name__} into a table row")
    return normalized


def format_table(rows: Sequence[Mapping[str, Any] | Any], title: str | None = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return title or "(no rows)"
    normalized = _normalize_rows(rows)
    columns = list(normalized[0].keys())
    widths = {
        column: max(len(column), *(len(_format_value(row.get(column, ""))) for row in normalized))
        for column in columns
    }
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in normalized:
        lines.append(
            "  ".join(
                _format_value(row.get(column, "")).rjust(widths[column])
                if isinstance(row.get(column), (int, float)) and not isinstance(row.get(column), bool)
                else _format_value(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def markdown_table(rows: Sequence[Mapping[str, Any] | Any]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return ""
    normalized = _normalize_rows(rows)
    columns = list(normalized[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in normalized:
        lines.append(
            "| " + " | ".join(_format_value(row.get(column, "")) for column in columns) + " |"
        )
    return "\n".join(lines)


def format_ratio(measured: float, paper: float | None) -> str:
    """Render a measured value next to the paper's published value."""
    if paper is None:
        return f"{measured:.2f} (paper: n/a)"
    return f"{measured:.2f} (paper: {paper:.2f})"
