"""Published numbers from the paper's evaluation, for side-by-side reporting.

The benchmark harness prints each reproduced table/figure next to the
numbers the paper reports so EXPERIMENTS.md can record paper-vs-measured at
a glance.  Everything here is transcribed from the paper (figures 1 and
13-18, tables II and III, and the embedded data tables in the arXiv
source); nothing in the simulator reads these values.
"""

from __future__ import annotations

__all__ = [
    "BENCHMARK_ORDER",
    "TABLE2_MACS_MOPS",
    "TABLE2_WEIGHTS_MB",
    "FIG1_DOMINANT_BITWIDTHS",
    "FIG13_SPEEDUP_OVER_EYERISS",
    "FIG13_ENERGY_REDUCTION_OVER_EYERISS",
    "FIG13_GEOMEAN",
    "FIG13_ALEXNET_PER_LAYER",
    "FIG14_BITFUSION_FRACTIONS",
    "FIG14_EYERISS_FRACTIONS",
    "FIG15_BANDWIDTH_SPEEDUP",
    "FIG16_BATCH_SPEEDUP",
    "FIG17_SPEEDUP_OVER_TX2",
    "FIG18_SPEEDUP_OVER_STRIPES",
    "FIG18_ENERGY_REDUCTION_OVER_STRIPES",
    "FIG18_GEOMEAN",
    "FIG10_FUSION_VS_TEMPORAL",
    "ISA_BLOCK_INSTRUCTION_RANGE",
]

#: Benchmark ordering used across all of the paper's figures.
BENCHMARK_ORDER = (
    "AlexNet",
    "Cifar-10",
    "LSTM",
    "LeNet-5",
    "ResNet-18",
    "RNN",
    "SVHN",
    "VGG-7",
)

#: Table II: multiply-add operations per inference (millions).
TABLE2_MACS_MOPS = {
    "AlexNet": 2678,
    "Cifar-10": 617,
    "LSTM": 13,
    "LeNet-5": 16,
    "ResNet-18": 4269,
    "RNN": 17,
    "SVHN": 158,
    "VGG-7": 317,
}

#: Table II: model weights (megabytes, as published).
TABLE2_WEIGHTS_MB = {
    "AlexNet": 116.3,
    "Cifar-10": 3.3,
    "LSTM": 6.2,
    "LeNet-5": 0.5,
    "ResNet-18": 13.0,
    "RNN": 8.0,
    "SVHN": 0.8,
    "VGG-7": 2.7,
}

#: Figure 1(a): the (input, weight) bitwidth pair carrying most multiply-adds.
FIG1_DOMINANT_BITWIDTHS = {
    "AlexNet": (4, 1),
    "Cifar-10": (1, 1),
    "LSTM": (4, 4),
    "LeNet-5": (2, 2),
    "ResNet-18": (2, 2),
    "RNN": (4, 4),
    "SVHN": (1, 1),
    "VGG-7": (2, 2),
}

#: Figure 13: Bit Fusion speedup over Eyeriss (same area, frequency, 45 nm).
FIG13_SPEEDUP_OVER_EYERISS = {
    "AlexNet": 1.9,
    "Cifar-10": 13.0,
    "LSTM": 2.4,
    "LeNet-5": 2.7,
    "ResNet-18": 1.9,
    "RNN": 2.7,
    "SVHN": 8.6,
    "VGG-7": 7.7,
}

#: Figure 13: Bit Fusion energy reduction over Eyeriss.
FIG13_ENERGY_REDUCTION_OVER_EYERISS = {
    "AlexNet": 1.5,
    "Cifar-10": 14.0,
    "LSTM": 4.8,
    "LeNet-5": 4.3,
    "ResNet-18": 1.9,
    "RNN": 5.1,
    "SVHN": 10.0,
    "VGG-7": 9.9,
}

#: Figure 13 geometric means: (speedup, energy reduction).
FIG13_GEOMEAN = (3.9, 5.1)

#: Embedded per-layer AlexNet data accompanying Figure 13:
#: layer group -> (speedup over Eyeriss, energy reduction over Eyeriss).
FIG13_ALEXNET_PER_LAYER = {
    "conv 8/8-bit": (1.67, 6.50),
    "conv 4/1-bit": (6.39, 16.84),
    "fc 4/1-bit": (3.31, 30.74),
    "fc 8/8-bit": (1.01, 10.29),
}

#: Figure 14: Bit Fusion energy fractions (compute, buffers, register file, DRAM).
FIG14_BITFUSION_FRACTIONS = {
    "AlexNet": (0.111, 0.211, 0.0, 0.678),
    "Cifar-10": (0.089, 0.172, 0.0, 0.738),
    "LSTM": (0.093, 0.233, 0.0, 0.675),
    "LeNet-5": (0.113, 0.134, 0.0, 0.754),
    "ResNet-18": (0.079, 0.199, 0.0, 0.722),
    "RNN": (0.067, 0.191, 0.0, 0.742),
    "SVHN": (0.097, 0.233, 0.0, 0.670),
    "VGG-7": (0.094, 0.248, 0.0, 0.658),
}

#: Figure 14: Eyeriss energy fractions (compute, buffers, register file, DRAM).
FIG14_EYERISS_FRACTIONS = {
    "AlexNet": (0.156, 0.011, 0.559, 0.274),
    "Cifar-10": (0.163, 0.009, 0.577, 0.251),
    "LSTM": (0.171, 0.007, 0.616, 0.206),
    "LeNet-5": (0.136, 0.015, 0.461, 0.388),
    "ResNet-18": (0.165, 0.010, 0.566, 0.259),
    "RNN": (0.156, 0.008, 0.576, 0.260),
    "SVHN": (0.068, 0.021, 0.219, 0.692),
    "VGG-7": (0.069, 0.029, 0.218, 0.684),
}

#: Figure 15: speedup relative to the default 128 bits/cycle, keyed by
#: benchmark then bandwidth (bits/cycle).
FIG15_BANDWIDTH_SPEEDUP = {
    "AlexNet": {32: 0.27, 64: 0.55, 128: 1.00, 256: 1.66, 512: 2.22},
    "Cifar-10": {32: 0.25, 64: 0.50, 128: 1.00, 256: 2.00, 512: 2.46},
    "LSTM": {32: 0.25, 64: 0.50, 128: 1.00, 256: 2.00, 512: 4.00},
    "LeNet-5": {32: 0.26, 64: 0.53, 128: 1.00, 256: 1.67, 512: 2.50},
    "ResNet-18": {32: 0.25, 64: 0.50, 128: 1.00, 256: 2.00, 512: 2.87},
    "RNN": {32: 0.25, 64: 0.50, 128: 1.00, 256: 2.00, 512: 4.00},
    "SVHN": {32: 0.25, 64: 0.50, 128: 1.00, 256: 1.96, 512: 2.56},
    "VGG-7": {32: 0.25, 64: 0.50, 128: 1.00, 256: 2.00, 512: 2.77},
}

#: Figure 16: speedup relative to batch size 1, keyed by benchmark then batch.
FIG16_BATCH_SPEEDUP = {
    "AlexNet": {1: 1.0, 4: 1.33, 16: 1.41, 64: 1.41, 256: 1.42},
    "Cifar-10": {1: 1.0, 4: 1.29, 16: 1.41, 64: 1.43, 256: 1.44},
    "LSTM": {1: 1.0, 4: 3.95, 16: 14.80, 64: 21.14, 256: 21.14},
    "LeNet-5": {1: 1.0, 4: 1.40, 16: 1.50, 64: 1.53, 256: 1.53},
    "ResNet-18": {1: 1.0, 4: 1.02, 16: 1.04, 64: 1.04, 256: 1.04},
    "RNN": {1: 1.0, 4: 3.95, 16: 15.12, 64: 21.41, 256: 21.42},
    "SVHN": {1: 1.0, 4: 1.18, 16: 1.24, 64: 1.24, 256: 1.25},
    "VGG-7": {1: 1.0, 4: 1.30, 16: 1.43, 64: 1.44, 256: 1.45},
}

#: Figure 17: speedup over the Tegra X2 FP32 baseline (per benchmark).
FIG17_SPEEDUP_OVER_TX2 = {
    "AlexNet": {"titanx-fp32": 12.0, "titanx-int8": 23.0, "bitfusion": 3.2},
    "Cifar-10": {"titanx-fp32": 13.0, "titanx-int8": 29.0, "bitfusion": 34.0},
    "LSTM": {"titanx-fp32": 6.4, "titanx-int8": 6.7, "bitfusion": 38.0},
    "LeNet-5": {"titanx-fp32": 20.0, "titanx-int8": 27.0, "bitfusion": 11.0},
    "ResNet-18": {"titanx-fp32": 13.0, "titanx-int8": 31.0, "bitfusion": 5.0},
    "RNN": {"titanx-fp32": 6.9, "titanx-int8": 7.2, "bitfusion": 39.0},
    "SVHN": {"titanx-fp32": 14.0, "titanx-int8": 21.0, "bitfusion": 14.0},
    "VGG-7": {"titanx-fp32": 14.0, "titanx-int8": 30.0, "bitfusion": 48.0},
    "geomean": {"titanx-fp32": 12.0, "titanx-int8": 19.0, "bitfusion": 16.0},
}

#: Figure 18: Bit Fusion speedup over Stripes.
FIG18_SPEEDUP_OVER_STRIPES = {
    "AlexNet": 1.8,
    "Cifar-10": 4.0,
    "LSTM": 2.1,
    "LeNet-5": 5.2,
    "ResNet-18": 2.6,
    "RNN": 2.0,
    "SVHN": 1.8,
    "VGG-7": 2.9,
}

#: Figure 18: Bit Fusion energy reduction over Stripes.
FIG18_ENERGY_REDUCTION_OVER_STRIPES = {
    "AlexNet": 2.7,
    "Cifar-10": 6.0,
    "LSTM": 3.1,
    "LeNet-5": 7.8,
    "ResNet-18": 4.4,
    "RNN": 3.0,
    "SVHN": 2.7,
    "VGG-7": 4.4,
}

#: Figure 18 geometric means: (speedup, energy reduction).
FIG18_GEOMEAN = (2.6, 3.9)

#: Figure 10: (area reduction, power reduction) of the hybrid Fusion Unit
#: over the temporal design at equal BitBrick count.
FIG10_FUSION_VS_TEMPORAL = (3.5, 3.2)

#: Section IV-A: instructions per block for the evaluated DNN layers.
ISA_BLOCK_INSTRUCTION_RANGE = (30, 86)
