"""``python -m repro.harness`` — regenerate the paper's tables and figures."""

from __future__ import annotations

import sys

from repro.harness.runner import main

if __name__ == "__main__":
    sys.exit(main())
