"""Experiment harness: one runner per table/figure of the paper's evaluation.

Each experiment module exposes a ``run(...)`` function that returns plain
data rows (dataclasses) plus a ``format_table(...)`` helper that renders the
same rows the paper reports.  The benchmark suite under ``benchmarks/``
wraps these runners with ``pytest-benchmark`` so that regenerating every
figure is a single ``pytest benchmarks/ --benchmark-only`` invocation, and
``EXPERIMENTS.md`` records the measured-versus-paper numbers.

Experiment index
----------------
==================================  =============================================
Module                              Paper artifact
==================================  =============================================
``experiments.fig01_bitwidths``     Figure 1 — bitwidth distributions
``experiments.tab02_benchmarks``    Table II — benchmark characteristics
``experiments.tab03_platforms``     Table III — evaluated platforms
``experiments.fig10_fusion_unit``   Figure 10 — Fusion Unit vs temporal design
``experiments.fig13_eyeriss``       Figure 13 — speedup / energy vs Eyeriss
``experiments.fig14_breakdown``     Figure 14 — energy breakdown
``experiments.fig15_bandwidth``     Figure 15 — bandwidth sensitivity
``experiments.fig16_batch``         Figure 16 — batch-size sensitivity
``experiments.fig17_gpu``           Figure 17 — comparison with GPUs
``experiments.fig18_stripes``       Figure 18 — speedup / energy vs Stripes
``experiments.isa_stats``           Section IV — instructions per block
``experiments.ablations``           Section IV-B — compiler-optimization ablations
==================================  =============================================
"""

from repro.harness.reporting import format_table, markdown_table
from repro.harness import paper_data

__all__ = ["format_table", "markdown_table", "paper_data"]
