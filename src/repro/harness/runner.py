"""One-shot experiment runner: regenerate every table and figure as a report.

``python -m repro.harness`` runs the whole evaluation (or a chosen subset of
experiments / benchmarks) and writes a markdown report with the reproduced
tables, each annotated with the paper's published numbers where available.
The benchmark suite under ``benchmarks/`` exercises the same runners through
``pytest-benchmark``; this module exists for users who want a single
command-line entry point and a saveable report.

Two further entry points share the same session machinery: ``python -m
repro.harness sweep SPEC`` runs a declarative multi-axis design-space sweep
(:mod:`repro.dse`) from a JSON/YAML spec file and reports its Pareto
frontier, and ``--cache-info`` summarizes a ``--cache-dir``'s contents
(entry counts and bytes per artifact kind, from ``manifest.json``) without
running anything.  ``docs/cli.md`` is the full command-line reference.

Every report is backed by one :class:`repro.session.EvaluationSession` — the
shared, cached workload engine under ``src/repro/session/``.  Experiments
declare (platform config, network, batch, compiler-flags) workloads and the
session runs them through a staged compile → simulate-blocks → compose
pipeline with a cacheable artifact at each seam, so a full report simulates
each unique workload exactly once no matter how many figures need it, and
finishes with per-stage cache statistics (workload, program, block and
layer-dedup hit counts; parallel runs add the worker-side reuse — work
units dispatched, blocks simulated remotely, blocks served from the
cache).  ``--jobs N`` fans uncached workloads out over a process pool,
scheduled longest-job-first, with compilation kept central and only
cache-missing blocks shipped to workers (results are ordered
deterministically, so parallel reports are byte-identical to serial ones
and a partially-warm parallel run does no redundant work);
``--cache-dir PATH`` persists compiled programs and per-block results as
JSON so later invocations skip recompilation and unchanged-block
simulation entirely, and ``--cache-max-mb`` bounds that directory with LRU
eviction.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import __version__
from repro.dnn import models
from repro.harness.experiments import (
    ablations,
    dse_explore,
    fig01_bitwidths,
    fig10_fusion_unit,
    fig13_eyeriss,
    fig14_breakdown,
    fig15_bandwidth,
    fig16_batch,
    fig17_gpu,
    fig18_stripes,
    isa_stats,
    tab02_benchmarks,
    tab03_platforms,
    temporal_network,
)
from repro.harness.reporting import format_table
from repro.session import (
    NAS_CHECKPOINT_NAME,
    SWEEP_CHECKPOINT_NAME,
    EvaluationSession,
    ExecutionBackend,
    ResultCache,
    SweepCheckpoint,
    make_backend,
    migrate_json_dir,
    resolve_session,
    use_session,
)
from repro.session import testing as session_testing

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "run_experiments",
    "build_report",
    "build_nas_report",
    "build_sweep_report",
    "build_sweep_dry_run_report",
    "format_cache_info",
    "main",
    "nas_main",
    "sweep_main",
    "worker_main",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: an identifier, a description and a renderer."""

    key: str
    description: str
    render: Callable[[tuple[str, ...] | None], str]


def _render_fig01(benchmarks):
    return fig01_bitwidths.format_table(fig01_bitwidths.run(benchmarks=benchmarks))


def _render_tab02(benchmarks):
    return tab02_benchmarks.format_table(tab02_benchmarks.run(benchmarks=benchmarks))


def _render_tab03(benchmarks):
    del benchmarks  # the platform table does not depend on the benchmark subset
    return tab03_platforms.format_table(tab03_platforms.run())


def _render_fig10(benchmarks):
    del benchmarks
    table = fig10_fusion_unit.format_table(fig10_fusion_unit.run())
    advantage = format_table(
        fig10_fusion_unit.run_throughput_advantage(),
        title="Same-area throughput: spatial fusion vs temporal design",
    )
    return f"{table}\n\n{advantage}"


def _render_fig13(benchmarks):
    summary = fig13_eyeriss.run(benchmarks=benchmarks)
    per_layer = format_table(
        fig13_eyeriss.run_alexnet_per_layer(),
        title="AlexNet per-layer improvement over Eyeriss",
    )
    return f"{fig13_eyeriss.format_table(summary)}\n\n{per_layer}"


def _render_fig14(benchmarks):
    return fig14_breakdown.format_table(fig14_breakdown.run(benchmarks=benchmarks))


def _render_fig15(benchmarks):
    return fig15_bandwidth.format_table(fig15_bandwidth.run(benchmarks=benchmarks))


def _render_fig16(benchmarks):
    return fig16_batch.format_table(fig16_batch.run(benchmarks=benchmarks))


def _render_fig17(benchmarks):
    return fig17_gpu.format_table(fig17_gpu.run(benchmarks=benchmarks))


def _render_fig18(benchmarks):
    return fig18_stripes.format_table(fig18_stripes.run(benchmarks=benchmarks))


def _render_isa(benchmarks):
    return isa_stats.format_table(isa_stats.run(benchmarks=benchmarks))


def _render_temporal(benchmarks):
    return temporal_network.format_table(temporal_network.run(benchmarks=benchmarks))


def _render_dse(benchmarks):
    return dse_explore.format_table(dse_explore.run(benchmarks=benchmarks))


def _render_ablations(benchmarks):
    rows = ablations.run(benchmarks=benchmarks)
    summary = ablations.geomean_summary(rows)
    lines = [ablations.format_table(rows), "", "geomean impact:"]
    lines.extend(f"  {key}: {value:.2f}x" for key, value in summary.items())
    return "\n".join(lines)


#: Registry of every experiment the runner knows about, in paper order.
EXPERIMENTS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("fig01", "Figure 1 - bitwidth variation", _render_fig01),
    ExperimentSpec("tab02", "Table II - benchmark characteristics", _render_tab02),
    ExperimentSpec("tab03", "Table III - evaluated platforms", _render_tab03),
    ExperimentSpec("fig10", "Figure 10 - Fusion Unit vs temporal design", _render_fig10),
    ExperimentSpec("fig13", "Figure 13 - improvement over Eyeriss", _render_fig13),
    ExperimentSpec("fig14", "Figure 14 - energy breakdown", _render_fig14),
    ExperimentSpec("fig15", "Figure 15 - bandwidth sensitivity", _render_fig15),
    ExperimentSpec("fig16", "Figure 16 - batch-size sensitivity", _render_fig16),
    ExperimentSpec("fig17", "Figure 17 - comparison with GPUs", _render_fig17),
    ExperimentSpec("fig18", "Figure 18 - improvement over Stripes", _render_fig18),
    ExperimentSpec(
        "temporal",
        "Section III-C - whole-network temporal design comparison",
        _render_temporal,
    ),
    ExperimentSpec("isa", "Section IV - ISA block statistics", _render_isa),
    ExperimentSpec("ablations", "Ablations of the design mechanisms", _render_ablations),
    ExperimentSpec(
        "dse",
        "Design-space exploration - array x technology Pareto frontier",
        _render_dse,
    ),
)

_EXPERIMENTS_BY_KEY = {spec.key: spec for spec in EXPERIMENTS}


def run_experiments(
    keys: list[str] | None = None,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
) -> list[tuple[ExperimentSpec, str, float]]:
    """Run the selected experiments; returns (spec, rendered table, seconds) tuples.

    All experiments run against one shared evaluation session (the given
    one, or the process default), so workloads appearing in several figures
    are simulated only once.
    """
    if keys:
        unknown = [key for key in keys if key not in _EXPERIMENTS_BY_KEY]
        if unknown:
            raise KeyError(
                f"unknown experiment(s) {unknown}; available: {sorted(_EXPERIMENTS_BY_KEY)}"
            )
        specs = [_EXPERIMENTS_BY_KEY[key] for key in keys]
    else:
        specs = list(EXPERIMENTS)

    results: list[tuple[ExperimentSpec, str, float]] = []
    with use_session(resolve_session(session)):
        for spec in specs:
            start = time.perf_counter()
            rendered = spec.render(benchmarks)
            results.append((spec, rendered, time.perf_counter() - start))
    return results


def build_report(
    keys: list[str] | None = None,
    benchmarks: tuple[str, ...] | None = None,
    session: EvaluationSession | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    max_cache_bytes: int | None = None,
    profile: bool = False,
    backend: ExecutionBackend | None = None,
) -> str:
    """Run the selected experiments and assemble a markdown report.

    One :class:`EvaluationSession` backs the whole report (built from
    ``jobs``/``cache_dir``/``max_cache_bytes``/``backend`` unless an
    explicit ``session`` is given); the report ends with the session's
    per-stage cache statistics.  ``profile=True`` (the ``--profile`` flag)
    appends a per-stage wall-time table (:func:`_profile_table`).
    """
    owns_session = session is None
    if session is None:
        session = EvaluationSession(
            jobs=jobs if backend is None else 1,
            cache_dir=cache_dir,
            max_cache_bytes=max_cache_bytes,
            backend=backend,
        )
    sections = [
        "# Bit Fusion reproduction — experiment report",
        "",
        f"_repro {__version__}_",
        "",
    ]
    try:
        for spec, rendered, elapsed in run_experiments(keys, benchmarks, session=session):
            sections.append(f"## {spec.description}")
            sections.append("")
            sections.append("```")
            sections.append(rendered)
            sections.append("```")
            sections.append(f"_(generated in {elapsed:.2f} s)_")
            sections.append("")
    finally:
        if owns_session:
            session.close()
    sections.append("## Evaluation session statistics")
    sections.append("")
    sections.append("```")
    sections.extend(_session_footer(session))
    sections.append("```")
    sections.append("")
    if profile:
        sections.append("## Stage timing profile")
        sections.append("")
        sections.append("```")
        sections.append(_profile_table(session))
        sections.append("```")
        sections.append("")
    return "\n".join(sections)


def _session_footer(session: EvaluationSession) -> list[str]:
    """The per-stage cache statistics footer shared by reports and sweeps.

    CI greps these lines to assert 100% program-cache hits on warm re-runs,
    so the report and the ``sweep`` subcommand must emit the same format.
    """
    lines = [session.stats.summary()]
    # Wall-clock cost of the compile stage (fresh compilations only —
    # cache hits cost nothing).  The perf suite tracks the same number as
    # a trajectory; the footer makes compile-cost regressions visible on
    # every ordinary report run.
    lines.append(f"compile time: {session.stats.compile_seconds:.3f} s")
    # Same idea for the simulate stage (fresh block/workload simulations,
    # including worker-side time on parallel runs).
    lines.append(f"sim time: {session.stats.sim_seconds:.3f} s")
    if session.cache.cache_dir is not None:
        lines.append(f"persistent cache: {session.cache.cache_dir}")
        if session.cache.max_bytes is not None:
            lines.append(
                f"cache size budget: {session.cache.max_bytes / (1024 * 1024):.1f} MB (LRU)"
            )
    backend = getattr(session, "backend", None)
    if backend is not None and backend.name != "inline":
        # Which execution backend dispatched the work, and to whom.
        lines.append(f"backend: {backend.describe()}")
        if session.jobs > 1:
            lines.append(f"worker processes: {session.jobs}")
        # Worker-side reuse: how much of the batch the cache-aware protocol
        # kept off the workers (the CI parallel smoke job greps this line
        # for "0 work units dispatched" on a warm re-run).
        lines.append(session.stats.workers.summary())
        per_worker = session.stats.workers.per_worker_summary()
        if per_worker is not None:
            lines.append(per_worker)
    return lines


def _profile_table(session: EvaluationSession) -> str:
    """The ``--profile`` per-stage wall-time table.

    Covers the tracked pipeline stages — compile (fresh compilations),
    simulate (fresh block/workload simulations, worker-side time included
    on parallel runs) and compose (result assembly + fresh-artifact
    stores).  The total is the tracked-stage sum, not the report's
    end-to-end wall clock — rendering and table formatting are
    deliberately excluded so the table answers "where does the *pipeline*
    spend its time", which is what future hot-path hunts need.  cache-IO
    (on-disk entry reads/writes) is reported separately below the total:
    it happens *inside* the stage rows (mostly compose, which stores fresh
    artifacts), so adding it in would double-count.
    """
    stats = session.stats
    rows = [
        ("compile", stats.compile_seconds),
        ("simulate", stats.sim_seconds),
        ("compose", stats.compose_seconds),
    ]
    total = sum(seconds for _, seconds in rows)
    lines = ["stage     seconds   share"]
    for name, seconds in rows:
        share = seconds / total if total else 0.0
        lines.append(f"{name:<8}  {seconds:7.3f}  {share:6.1%}")
    lines.append(f"{'total':<8}  {total:7.3f}")
    lines.append(
        f"{'cache-IO':<8}  {session.cache.io_seconds:7.3f}  (spent inside the stages above)"
    )
    workers = stats.workers
    if workers.backend:
        # Backend dispatch overhead: coordinator-side time spent submitting
        # units vs blocking on their replies.  Reply wait overlaps the
        # simulate row (workers simulate while the coordinator waits), so
        # like cache-IO it reports separately instead of joining the total.
        lines.append(
            f"{'dispatch':<8}  {workers.dispatch_seconds:7.3f}  "
            f"({workers.backend} backend: submitting work units)"
        )
        lines.append(
            f"{'wait':<8}  {workers.wait_seconds:7.3f}  "
            f"({workers.backend} backend: blocking on replies)"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Design-space sweeps (``python -m repro.harness sweep SPEC``)
# ---------------------------------------------------------------------- #
def build_sweep_report(
    spec_path: str,
    jobs: int = 1,
    cache_dir: str | None = None,
    max_cache_bytes: int | None = None,
    session: EvaluationSession | None = None,
    resume: bool = False,
    backend: ExecutionBackend | None = None,
) -> str:
    """Run one spec-file sweep and render its report (grid + Pareto + stats).

    With a ``--cache-dir``, the sweep journals its progress to
    ``<cache-dir>/sweep-checkpoint.jsonl`` (planned / completed / failed /
    quarantined events, flushed per event).  ``resume=True`` keeps the
    existing journal and reports how much of the planned grid was already
    complete — every completed fingerprint is double-checked against the
    artifact cache before being trusted, so a resumed leg re-executes
    nothing that survived the crash and everything that did not.  Without
    ``resume`` the journal is truncated so the sweep's accounting starts
    fresh (the artifact cache itself is untouched — warm artifacts still
    hit).  Workloads that fail execution are retried once and then
    quarantined: the sweep completes without them and the footer names each
    one with its error.

    The ``REPRO_SWEEP_KILL_AFTER`` environment variable (an integer N)
    SIGKILLs the process after N durable commits — the CI ``fault-smoke``
    job uses it to prove a killed sweep resumes with zero redundant work.
    """
    # Imported here so `python -m repro.harness --list` stays import-light.
    from repro.dse import SweepSpec, format_sweep_report, run_sweep
    from repro.session.engine import audit_workload_cache

    spec = SweepSpec.from_file(spec_path)
    owns_session = session is None
    checkpoint: SweepCheckpoint | None = None
    if session is None:
        if cache_dir is not None:
            checkpoint = SweepCheckpoint(Path(cache_dir) / SWEEP_CHECKPOINT_NAME)
            if not resume:
                checkpoint.reset()
        elif resume:
            raise ValueError(
                "--resume requires --cache-dir: the checkpoint journal lives "
                "next to the artifact cache"
            )
        session = EvaluationSession(
            jobs=jobs if backend is None else 1,
            cache_dir=cache_dir,
            max_cache_bytes=max_cache_bytes,
            checkpoint=checkpoint,
            backend=backend,
        )
    resumed_line: str | None = None
    if resume and checkpoint is not None:
        # Progress accounting for the footer: a point counts as already
        # complete only when the journal says so *and* the artifact cache
        # can actually serve it (the journal is advisory; artifacts are the
        # source of truth).
        unique: dict[str, object] = {}
        for point in spec.expand():
            unique.setdefault(point.workload.fingerprint(), point.workload)
        already = sum(
            1
            for key, workload in unique.items()
            if key in checkpoint.completed
            and audit_workload_cache(workload, session.cache).state == "cached"
        )
        resumed_line = (
            f"resumed: {already}/{len(unique)} points, "
            f"quarantined: {len(checkpoint.quarantined)}"
        )
    kill_after = os.environ.get("REPRO_SWEEP_KILL_AFTER")
    if kill_after:
        session_testing.install_kill_after_commits(int(kill_after))
    try:
        result = run_sweep(spec, session, allow_failures=True)
    finally:
        if owns_session:
            session.close()
    footer = _session_footer(session)
    if resumed_line is not None:
        footer.append(resumed_line)
    if result.quarantined:
        footer.append(
            f"quarantined workloads: {len(result.quarantined)} "
            "(each retried once, then excluded from the grid)"
        )
        footer.extend(
            f"  {record.label}: {record.error}" for record in result.quarantined
        )
    sections = [
        "# Bit Fusion design-space sweep",
        "",
        f"_repro {__version__} — spec: {spec_path}_",
        "",
        "```",
        format_sweep_report(result),
        "```",
        "",
        "## Evaluation session statistics",
        "",
        "```",
        *footer,
        "```",
        "",
    ]
    return "\n".join(sections)


def build_sweep_dry_run_report(spec_path: str, cache_dir: str | None = None) -> str:
    """Expand a sweep spec and diff the planned grid against a cache directory.

    Nothing compiles or simulates: every expanded workload is audited
    against the ``--cache-dir`` artifacts
    (:func:`~repro.session.engine.audit_workload_cache`) and the report
    says how much of the planned grid is already cached — fully
    composable, partially cached (program present, some blocks missing) or
    cold — plus the directory's per-kind entry summary.  Run this before
    committing to an expensive sweep to see what it will actually cost.
    """
    from repro.dse import SweepSpec
    from repro.session.engine import CacheAudit, audit_workload_cache

    spec = SweepSpec.from_file(spec_path)
    points = spec.expand()
    if cache_dir is not None and not Path(cache_dir).is_dir():
        raise ValueError(f"cache directory {cache_dir!r} does not exist")
    cache = ResultCache(cache_dir) if cache_dir is not None else ResultCache()

    audited: dict[str, CacheAudit] = {}
    grid_states: list[str] = []
    for point in points:
        key = point.workload.fingerprint()
        if key not in audited:
            audited[key] = audit_workload_cache(point.workload, cache)
        grid_states.append(audited[key].state)

    unique = list(audited.values())
    counts = {
        state: sum(1 for audit in unique if audit.state == state)
        for state in ("cached", "partial", "cold")
    }
    missing_blocks = sum(audit.missing_blocks for audit in unique)
    partial_blocks = sum(
        audit.total_blocks for audit in unique if audit.state == "partial"
    )
    lines = [
        "# Bit Fusion design-space sweep — dry run",
        "",
        f"_repro {__version__} — spec: {spec_path}_",
        "",
        "```",
        spec.describe(),
        f"grid: {len(points)} points, {len(audited)} unique workloads",
        (
            f"fully cached: {counts['cached']} workloads "
            f"(would compose without any fresh work)"
        ),
        (
            f"partially cached: {counts['partial']} workloads "
            f"({missing_blocks} of {partial_blocks} blocks missing)"
        ),
        f"cold: {counts['cold']} workloads (no usable artifacts)",
    ]
    # The tiling memo serves cold workloads before their programs exist, so
    # "cold" alone overstates the cost of a grid whose GEMM shapes already
    # planned: say how many of the searches a cold start would actually run.
    tilings_total = sum(audit.tilings_total for audit in unique)
    if tilings_total:
        tilings_cached = sum(audit.tilings_cached for audit in unique)
        lines.append(
            f"tiling memo: {tilings_cached}/{tilings_total} searches of the "
            "cold workloads already memoized"
        )
    cached_points = sum(1 for state in grid_states if state == "cached")
    fraction = cached_points / len(points) if points else 0.0
    lines.append(
        f"planned grid already cached: {cached_points}/{len(points)} points ({fraction:.0%})"
    )
    lines.append("```")
    lines.append("")
    if cache_dir is not None:
        lines.extend(["## Cache directory", "", "```", format_cache_info(cache_dir), "```", ""])
    else:
        lines.append("(no --cache-dir given: every workload counts as cold)")
        lines.append("")
    return "\n".join(lines)


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``--backend`` / ``--workers`` flags shared by report and sweep."""
    parser.add_argument(
        "--backend",
        choices=("inline", "pool", "remote"),
        default=None,
        metavar="NAME",
        help="execution backend: inline (serial), pool (local process pool, "
        "the --jobs default), or remote (TCP worker daemons started with "
        "'python -m repro.harness worker'); default: pool when --jobs > 1, "
        "inline otherwise",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="comma-separated worker addresses for --backend remote",
    )


def _resolve_backend(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> ExecutionBackend | None:
    """Build the requested backend, or ``None`` for the historical default."""
    workers = [
        address.strip()
        for address in (args.workers or "").split(",")
        if address.strip()
    ]
    if workers and args.backend != "remote":
        parser.error("--workers requires --backend remote")
    if args.backend is None:
        return None
    try:
        return make_backend(args.backend, jobs=args.jobs, workers=workers)
    except ValueError as error:
        parser.error(str(error))
    return None  # unreachable; parser.error raises


def sweep_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``sweep`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness sweep",
        description="Run a declarative multi-axis design-space sweep from a "
        "JSON (or YAML) spec file and report its Pareto frontier. "
        "See docs/sweeps.md for the spec schema.",
    )
    parser.add_argument("spec", metavar="SPEC", help="path to the sweep spec (.json/.yaml)")
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the sweep report to a file instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for uncached simulations (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persist compiled programs and per-block simulation results "
        "under PATH and reuse them across invocations",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size budget for the on-disk cache (requires --cache-dir)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="expand the grid and report how much of it the --cache-dir "
        "already holds (fully/partially cached vs cold) without running "
        "any compilation or simulation",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="keep the --cache-dir's sweep-checkpoint.jsonl journal and "
        "resume an interrupted sweep: completed points (journal entry "
        "cross-checked against cached artifacts) are served without fresh "
        "work, and the footer reports 'resumed: X/Y points, quarantined: Z' "
        "(requires --cache-dir)",
    )
    _add_backend_arguments(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    backend = _resolve_backend(parser, args)
    if args.resume and args.cache_dir is None:
        parser.error("--resume requires --cache-dir")
    if args.resume and args.dry_run:
        parser.error("--resume and --dry-run are mutually exclusive")
    max_cache_bytes = None
    if args.cache_max_mb is not None:
        if args.cache_dir is None:
            parser.error("--cache-max-mb requires --cache-dir")
        if args.cache_max_mb <= 0:
            parser.error(f"--cache-max-mb must be positive, got {args.cache_max_mb}")
        max_cache_bytes = int(args.cache_max_mb * 1024 * 1024)
    try:
        if args.dry_run:
            report = build_sweep_dry_run_report(args.spec, cache_dir=args.cache_dir)
        else:
            report = build_sweep_report(
                args.spec,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                max_cache_bytes=max_cache_bytes,
                resume=args.resume,
                backend=backend,
            )
    except (OSError, RuntimeError, ValueError) as error:
        parser.error(str(error))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote sweep report to {args.output}")
    else:
        print(report)
    return 0


# ---------------------------------------------------------------------- #
# NAS candidate search (``python -m repro.harness nas SPEC``)
# ---------------------------------------------------------------------- #
def build_nas_report(
    spec_path: str,
    cache_dir: str | None = None,
    max_cache_bytes: int | None = None,
) -> str:
    """Run one spec-file NAS search and render its report.

    The search prices candidates through the cache-composition estimator
    (:mod:`repro.nas`); ``--cache-dir`` makes the layer cache persistent,
    so a second search — or a search after a report run against the same
    directory — starts warm.  The footer reports the estimator's hit rate,
    layers simulated vs composed, and candidates per second.

    With a ``--cache-dir``, candidate progress journals to
    ``<cache-dir>/nas-checkpoint.jsonl`` (planned / completed fingerprints,
    same format as the sweep journal), so an interrupted search leaves a
    durable record of exactly which candidates were priced.
    """
    # Imported here so `python -m repro.harness --list` stays import-light.
    from repro.nas import Estimator, SearchSpec, format_search_report, run_search

    spec = SearchSpec.from_file(spec_path)
    cache = ResultCache(cache_dir, max_bytes=max_cache_bytes)
    checkpoint: SweepCheckpoint | None = None
    if cache_dir is not None:
        checkpoint = SweepCheckpoint(Path(cache_dir) / NAS_CHECKPOINT_NAME)
    estimator = Estimator(cache=cache, batch_size=spec.batch_size)
    try:
        result = run_search(spec, estimator=estimator, checkpoint=checkpoint)
    finally:
        if checkpoint is not None:
            checkpoint.close()
    stats = estimator.stats
    footer = [
        stats.summary(),
        f"candidates/second: {result.candidates_per_second:.1f}",
        f"estimate time: {stats.estimate_seconds:.3f} s "
        f"(sim {stats.sim_seconds:.3f} s)",
    ]
    if cache.cache_dir is not None:
        footer.append(f"persistent cache: {cache.cache_dir}")
        if cache.max_bytes is not None:
            footer.append(
                f"cache size budget: {cache.max_bytes / (1024 * 1024):.1f} MB (LRU)"
            )
    sections = [
        "# Bit Fusion NAS candidate search",
        "",
        f"_repro {__version__} — spec: {spec_path}_",
        "",
        "```",
        format_search_report(result),
        "```",
        "",
        "## Estimator statistics",
        "",
        "```",
        *footer,
        "```",
        "",
    ]
    return "\n".join(sections)


def nas_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``nas`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness nas",
        description="Run a NAS-style candidate search from a JSON spec file: "
        "random + evolutionary mutation over a zoo network, priced through "
        "the cache-composition surrogate estimator. See docs/nas.md for "
        "the spec schema.",
    )
    parser.add_argument("spec", metavar="SPEC", help="path to the nas spec (.json)")
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the search report to a file instead of stdout",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persist programs and per-layer simulation results under PATH; "
        "searches (and report runs) sharing the directory start warm",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size budget for the on-disk cache (requires --cache-dir)",
    )
    args = parser.parse_args(argv)
    max_cache_bytes = None
    if args.cache_max_mb is not None:
        if args.cache_dir is None:
            parser.error("--cache-max-mb requires --cache-dir")
        if args.cache_max_mb <= 0:
            parser.error(f"--cache-max-mb must be positive, got {args.cache_max_mb}")
        max_cache_bytes = int(args.cache_max_mb * 1024 * 1024)
    try:
        report = build_nas_report(
            args.spec, cache_dir=args.cache_dir, max_cache_bytes=max_cache_bytes
        )
    except (KeyError, OSError, RuntimeError, ValueError) as error:
        parser.error(str(error))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote nas report to {args.output}")
    else:
        print(report)
    return 0


# ---------------------------------------------------------------------- #
# Remote worker daemon (``python -m repro.harness worker``)
# ---------------------------------------------------------------------- #
def worker_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``worker`` subcommand: one remote worker daemon.

    Binds a TCP socket, prints ``worker listening on HOST:PORT`` (flushed,
    so coordinators launching workers on port 0 can parse the ephemeral
    port), and serves coordinator connections until a ``shutdown`` request
    or SIGINT.  With ``--cache-dir`` the worker also stores every freshly
    simulated layer record into that (typically shared) artifact cache.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness worker",
        description="Run a remote execution worker for sharded sweeps: "
        "accepts serialized work units over TCP from a coordinator started "
        "with --backend remote --workers HOST:PORT[,...]. "
        "See docs/sweeps.md for the multi-host walkthrough.",
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="address to listen on (port 0 picks an ephemeral port; "
        "default: 127.0.0.1:0)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="store freshly simulated layer records under PATH (point every "
        "worker and the coordinator at one shared directory)",
    )
    parser.add_argument(
        "--fail-after",
        type=int,
        default=None,
        metavar="N",
        help="chaos knob: serve N work units, then hard-exit without "
        "replying on the next one (deterministic stand-in for a worker "
        "SIGKILLed mid-unit; used by the CI remote-smoke job)",
    )
    args = parser.parse_args(argv)
    from repro.session.remote import WorkerServer, parse_worker_address

    try:
        host, port = parse_worker_address(args.bind)
    except ValueError as error:
        parser.error(str(error))
    if args.fail_after is not None and args.fail_after < 0:
        parser.error(f"--fail-after must be >= 0, got {args.fail_after}")
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    server = WorkerServer(host, port, cache=cache, fail_after=args.fail_after)
    print(f"worker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if cache is not None:
            cache.flush()
    return 0


# ---------------------------------------------------------------------- #
# Cache introspection (``--cache-info``)
# ---------------------------------------------------------------------- #
def format_cache_info(cache_dir: str) -> str:
    """Summarize a cache directory: entries and bytes per artifact kind.

    The numbers come straight from the directory's ``manifest.json`` index
    (rebuilt from the entry files if missing or stale), so the output always
    matches what the manifest records.  A path that is not an existing
    directory is an error: introspection must never create the directory a
    mistyped ``--cache-dir`` points at.
    """
    from pathlib import Path

    if not Path(cache_dir).is_dir():
        raise ValueError(f"cache directory {cache_dir!r} does not exist")
    cache = ResultCache(cache_dir)
    summary = cache.entry_summary()
    lines = [
        f"cache directory: {cache.cache_dir}",
        f"format: {cache.describe_layout()}",
    ]
    if not summary:
        lines.append("(empty)")
        return "\n".join(lines)
    total_entries = sum(bucket["entries"] for bucket in summary.values())
    total_bytes = sum(bucket["bytes"] for bucket in summary.values())
    for kind in sorted(summary):
        bucket = summary[kind]
        line = f"{kind}: {bucket['entries']} entries, {bucket['bytes'] / 1024:.1f} KiB"
        # Reuse traffic per kind: how many lookups the directory has served
        # since its entries were written (touch counts from the manifest).
        if bucket.get("refs"):
            line += f", {bucket['refs']} reuse hits"
        lines.append(line)
    lines.append(f"total: {total_entries} entries, {total_bytes / 1024:.1f} KiB")
    # The layer level is what the NAS estimator composes from for free:
    # report its dedupe ratio (reuse hits per stored entry) and the hottest
    # content fingerprints so users can see what a search will inherit.
    layers = summary.get("layer")
    if layers and layers["entries"]:
        ratio = layers["refs"] / layers["entries"]
        lines.append(f"layer dedupe ratio: {ratio:.1f} reuse hits per stored layer")
        top = cache.top_referenced("layer", limit=5)
        if top:
            lines.append("most-referenced layers:")
            for entry in top:
                workload = entry.get("workload") or {}
                origin = workload.get("network") or workload.get("workload") or "?"
                lines.append(
                    f"  {entry['key'][:16]}…  {entry['refs']} hits  "
                    f"(first stored by {origin})"
                )
    return "\n".join(lines)


def cache_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``cache`` subcommand: store maintenance.

    ``cache migrate --cache-dir PATH`` converts a legacy JSON-per-entry
    cache directory to the segmented pack-file layout in place (batched
    group commits, then the per-entry files are deleted).  Idempotent: a
    directory that is already segmented migrates zero entries.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cache",
        description="Artifact-store maintenance for a --cache-dir directory.",
    )
    parser.add_argument(
        "action",
        choices=["migrate"],
        help="migrate: convert a JSON-layout cache directory to the "
        "segmented pack-file store in place",
    )
    parser.add_argument(
        "--cache-dir",
        required=True,
        metavar="PATH",
        help="cache directory to operate on (must exist)",
    )
    args = parser.parse_args(argv)
    try:
        entries, size = migrate_json_dir(args.cache_dir)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if entries:
        print(
            f"migrated {entries} entries ({size / 1024:.1f} KiB) "
            f"to the segmented pack store"
        )
    else:
        print("nothing to migrate: no JSON-layout entries found")
    print(format_cache_info(args.cache_dir))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point (``python -m repro.harness``)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "nas":
        return nas_main(argv[1:])
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the Bit Fusion paper's tables and figures. "
        "Design-space sweeps run via the 'sweep' subcommand "
        "(python -m repro.harness sweep SPEC [options]) and NAS candidate "
        "searches via the 'nas' subcommand "
        "(python -m repro.harness nas SPEC [options]); "
        "full reference: docs/cli.md.",
    )
    parser.add_argument(
        "--experiments",
        nargs="*",
        metavar="KEY",
        help=f"subset of experiments to run (default: all of {[s.key for s in EXPERIMENTS]})",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        metavar="NAME",
        help="subset of benchmark DNNs to evaluate (default: all eight)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the markdown report to a file instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for uncached simulations (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="persist compiled programs and per-block simulation results as "
        "JSON under PATH and reuse them across report invocations",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size budget for the on-disk cache; least-recently-used entries "
        "are evicted past it (requires --cache-dir)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append a per-stage (compile / simulate / compose / cache-IO, "
        "plus backend dispatch/wait when a backend dispatched work) "
        "wall-time table to the report",
    )
    _add_backend_arguments(parser)
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--cache-info",
        action="store_true",
        help="summarize the --cache-dir contents (entries and bytes per "
        "artifact kind, from manifest.json) and exit without running anything",
    )
    args = parser.parse_args(argv)

    if args.list:
        for spec in EXPERIMENTS:
            print(f"{spec.key:10s} {spec.description}")
        return 0

    if args.cache_info:
        if args.cache_dir is None:
            parser.error("--cache-info requires --cache-dir")
        try:
            print(format_cache_info(args.cache_dir))
        except ValueError as error:
            parser.error(str(error))
        return 0

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    backend = _resolve_backend(parser, args)
    max_cache_bytes = None
    if args.cache_max_mb is not None:
        if args.cache_dir is None:
            parser.error("--cache-max-mb requires --cache-dir")
        if args.cache_max_mb <= 0:
            parser.error(f"--cache-max-mb must be positive, got {args.cache_max_mb}")
        max_cache_bytes = int(args.cache_max_mb * 1024 * 1024)
    benchmarks = None
    if args.benchmarks:
        try:
            # Accept the same aliases as the model zoo ("alexnet", "cifar10")
            # and hand every experiment the canonical paper names.
            benchmarks = tuple(models.canonical_name(name) for name in args.benchmarks)
        except KeyError as error:
            parser.error(str(error).strip('"'))
    report = build_report(
        keys=args.experiments,
        benchmarks=benchmarks,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        max_cache_bytes=max_cache_bytes,
        profile=args.profile,
        backend=backend,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
