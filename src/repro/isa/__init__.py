"""Fusion-ISA: the block-structured instruction set of Bit Fusion (Section IV).

The ISA exposes the accelerator's bit-level fusion capability to software
while amortizing the von Neumann overhead of instruction handling:

* **Block structure** — every DNN layer compiles to one *instruction block*
  bracketed by ``setup`` (which fixes the fusion configuration of the
  BitBricks for the whole block) and ``block-end`` (which names the next
  block).  Instructions are fetched and decoded once per block.
* **Iterative semantics** — ``loop`` instructions with iteration counts and
  ``gen-addr`` instructions with per-loop strides concisely express the
  multi-dimensional walks of convolution, fully-connected, recurrent and
  pooling layers (Equation 4).
* **Decoupled memory access** — ``ld-mem``/``st-mem`` move variable-bitwidth
  arrays between DRAM and the on-chip scratchpads; ``rd-buf``/``wr-buf``
  move data between the scratchpads and the compute fabric.  Their operand
  sizes depend on the fusion configuration set by the block's ``setup``.

Sub-modules
-----------
:mod:`repro.isa.instructions`  instruction dataclasses and opcodes (Table I).
:mod:`repro.isa.encoding`      32-bit binary encoding / decoding.
:mod:`repro.isa.block`         instruction blocks and per-block statistics.
:mod:`repro.isa.program`       a compiled network: an ordered list of blocks.
:mod:`repro.isa.tiling`        loop tiling against the scratchpad capacities.
:mod:`repro.isa.optimizations` loop ordering and layer fusion (Section IV-B).
:mod:`repro.isa.compiler`      the layer-to-block / network-to-program compiler.
"""

from repro.isa.instructions import (
    Opcode,
    ScratchpadType,
    LoopOrder,
    Instruction,
    Setup,
    BlockEnd,
    Loop,
    GenAddr,
    Compute,
    LdMem,
    StMem,
    RdBuf,
    WrBuf,
)
from repro.isa.encoding import encode_instruction, decode_instruction, encode_block
from repro.isa.block import InstructionBlock, BlockStats
from repro.isa.program import Program
from repro.isa.tiling import TilingPlan, plan_tiling
from repro.isa.optimizations import choose_loop_order, fuse_layers, FusionDecision
from repro.isa.compiler import FusionCompiler, compile_layer, compile_network
from repro.isa.interpreter import BlockTrace, MemoryEvent, interpret_block
from repro.isa.multiblock import (
    BitwidthRegion,
    compile_layer_with_regions,
    split_layer_by_regions,
)

__all__ = [
    "Opcode",
    "ScratchpadType",
    "LoopOrder",
    "Instruction",
    "Setup",
    "BlockEnd",
    "Loop",
    "GenAddr",
    "Compute",
    "LdMem",
    "StMem",
    "RdBuf",
    "WrBuf",
    "encode_instruction",
    "decode_instruction",
    "encode_block",
    "InstructionBlock",
    "BlockStats",
    "Program",
    "TilingPlan",
    "plan_tiling",
    "choose_loop_order",
    "fuse_layers",
    "FusionDecision",
    "FusionCompiler",
    "compile_layer",
    "compile_network",
    "BlockTrace",
    "MemoryEvent",
    "interpret_block",
    "BitwidthRegion",
    "compile_layer_with_regions",
    "split_layer_by_regions",
]
