"""Tile-level interpreter for Fusion-ISA instruction blocks.

The cycle simulator computes traffic and cycles in closed form from a
block's tiling plan; this module provides the complementary *operational*
view: it walks the block's memory-level loop nest iteration by iteration,
applies the ``gen-addr`` semantics of Equation 4
(``address = base + Σ loop_iterator[id] × stride[id]``) and emits one event
per ``ld-mem``/``st-mem`` execution.

Two things use it:

* tests, to prove that the ``gen-addr`` strides the compiler emits generate
  exactly one distinct tile address per tile of each tensor (the number of
  unique addresses per scratchpad equals the tiling plan's tile counts), and
* debugging/teaching: the trace shows exactly which tile of which tensor a
  block touches at every step, which is the easiest way to understand a
  compiled program.

Only the memory-level (level-0) loops are walked literally; the inner
buffer-level loops repeat identically inside every tile and are summarized
per event, keeping traces small even for ImageNet-scale layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.isa.block import InstructionBlock
from repro.isa.instructions import GenAddr, LdMem, Loop, ScratchpadType, StMem

__all__ = ["MemoryEvent", "BlockTrace", "interpret_block"]


@dataclass(frozen=True)
class MemoryEvent:
    """One executed ``ld-mem`` or ``st-mem`` instruction.

    Attributes
    ----------
    direction:
        ``"load"`` or ``"store"``.
    scratchpad:
        Target on-chip buffer.
    address:
        Tile-granular address computed from the loop iterators and the
        block's ``gen-addr`` strides (Equation 4), with base 0.
    words:
        The instruction's ``num-words`` operand.
    iteration:
        The memory-loop iterator values (in loop-declaration order) at which
        the event fired.
    """

    direction: str
    scratchpad: ScratchpadType
    address: int
    words: int
    iteration: tuple[int, ...]


@dataclass(frozen=True)
class BlockTrace:
    """The full memory-level trace of one instruction block."""

    block_name: str
    events: tuple[MemoryEvent, ...]

    def events_for(self, scratchpad: ScratchpadType, direction: str | None = None) -> list[MemoryEvent]:
        """Events touching one scratchpad, optionally filtered by direction."""
        return [
            event
            for event in self.events
            if event.scratchpad is scratchpad
            and (direction is None or event.direction == direction)
        ]

    def total_words(self, scratchpad: ScratchpadType, direction: str | None = None) -> int:
        """Total words moved for one scratchpad (and optional direction)."""
        return sum(event.words for event in self.events_for(scratchpad, direction))

    def unique_addresses(self, scratchpad: ScratchpadType) -> set[int]:
        """Distinct tile addresses touched in one scratchpad."""
        return {event.address for event in self.events_for(scratchpad)}

    @property
    def event_count(self) -> int:
        return len(self.events)


def _equation4_address(
    strides: dict[int, int], iterators: dict[int, int], base: int = 0
) -> int:
    """Equation 4: ``address = base + Σ_id loop_iterator[id] × stride[id]``."""
    return base + sum(iterators.get(loop_id, 0) * stride for loop_id, stride in strides.items())


def interpret_block(block: InstructionBlock, max_events: int = 1_000_000) -> BlockTrace:
    """Walk a block's memory-level loop nest and collect its transfer events.

    Parameters
    ----------
    block:
        A compiled instruction block.
    max_events:
        Safety bound on the trace length; blocks whose memory loop nest
        would emit more events raise :class:`ValueError` (the caller should
        trace a smaller configuration instead).
    """
    memory_loops: list[Loop] = block.loops_at_level(0)
    loop_ids = [loop.loop_id for loop in memory_loops]

    # gen-addr strides per scratchpad, restricted to the memory-level loops.
    strides: dict[ScratchpadType, dict[int, int]] = {pad: {} for pad in ScratchpadType}
    for instruction in block.address_generators():
        if instruction.loop_id in loop_ids:
            strides[instruction.scratchpad][instruction.loop_id] = instruction.stride

    transfers: list[tuple[str, ScratchpadType, int]] = []
    for instruction in block.memory_instructions():
        if isinstance(instruction, LdMem):
            transfers.append(("load", instruction.scratchpad, instruction.num_words))
        elif isinstance(instruction, StMem):
            transfers.append(("store", instruction.scratchpad, instruction.num_words))

    trip_counts = [loop.iterations for loop in memory_loops]
    total_iterations = 1
    for trips in trip_counts:
        total_iterations *= trips
    if total_iterations * max(1, len(transfers)) > max_events:
        raise ValueError(
            f"block {block.name!r} would emit more than {max_events} events "
            f"({total_iterations} iterations x {len(transfers)} transfers); "
            "trace a smaller configuration"
        )

    events: list[MemoryEvent] = []
    iteration_spaces = [range(trips) for trips in trip_counts] or [range(1)]
    for iteration in product(*iteration_spaces):
        iterators = dict(zip(loop_ids, iteration))
        for direction, scratchpad, words in transfers:
            events.append(
                MemoryEvent(
                    direction=direction,
                    scratchpad=scratchpad,
                    address=_equation4_address(strides[scratchpad], iterators),
                    words=words,
                    iteration=tuple(iteration),
                )
            )
    return BlockTrace(block_name=block.name, events=tuple(events))
