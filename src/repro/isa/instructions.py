"""Fusion-ISA instruction definitions (paper Table I).

Every instruction is a frozen dataclass whose fields mirror the operand
specification of Table I: a 5-bit opcode, followed by (depending on the
opcode) a scratchpad type, operand bitwidths, loop identifiers, iteration
counts, strides and immediates.  Field widths are validated on construction
so that a block that encodes also decodes to the same instructions.

The instruction classes are deliberately free of behaviour: semantics live
in the compiler (which emits them), the encoder (which packs them) and the
simulator (which consumes the block structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum, unique

__all__ = [
    "Opcode",
    "ScratchpadType",
    "ComputeFn",
    "LoopOrder",
    "Instruction",
    "Setup",
    "BlockEnd",
    "Loop",
    "GenAddr",
    "Compute",
    "LdMem",
    "StMem",
    "RdBuf",
    "WrBuf",
    "OPCODE_BITS",
    "SCRATCHPAD_BITS",
    "BITWIDTH_FIELD_BITS",
    "LOOP_ID_BITS",
    "IMMEDIATE_BITS",
]

#: Field widths of the 32-bit instruction word (Table I).
OPCODE_BITS = 5
SCRATCHPAD_BITS = 2
BITWIDTH_FIELD_BITS = 5
LOOP_ID_BITS = 6
IMMEDIATE_BITS = 16


@unique
class Opcode(IntEnum):
    """Operation codes of the Fusion-ISA (Table I)."""

    SETUP = 0
    BLOCK_END = 1
    LOOP = 2
    GEN_ADDR = 3
    COMPUTE = 4
    LD_MEM = 5
    ST_MEM = 6
    RD_BUF = 7
    WR_BUF = 8


@unique
class ScratchpadType(IntEnum):
    """On-chip scratchpad selector used by memory and buffer instructions."""

    IBUF = 0
    OBUF = 1
    WBUF = 2


@unique
class ComputeFn(Enum):
    """Function selector of the ``compute`` instruction."""

    MACC = "macc"
    MAX = "max"
    ADD = "add"
    ACTIVATION = "activation"


@unique
class LoopOrder(Enum):
    """Dataflow orderings the loop-ordering optimization chooses between.

    The names follow the paper's terminology (Section IV-B): the
    "stationary" tensor is the one kept resident on chip across the longest-
    running loop, minimizing its off-chip re-fetches.
    """

    OUTPUT_STATIONARY = "output-stationary"
    WEIGHT_STATIONARY = "weight-stationary"
    INPUT_STATIONARY = "input-stationary"


def _check_field(value: int, bits: int, name: str) -> int:
    if not isinstance(value, int):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0 or value >= (1 << bits):
        raise ValueError(f"{name}={value} does not fit in a {bits}-bit field")
    return value


def _check_bitwidth(bits: int, name: str) -> int:
    if bits not in (1, 2, 4, 8, 16):
        raise ValueError(f"{name} must be one of (1, 2, 4, 8, 16), got {bits}")
    return bits


@dataclass(frozen=True)
class Instruction:
    """Base class for all Fusion-ISA instructions."""

    @property
    def opcode(self) -> Opcode:
        raise NotImplementedError

    @property
    def mnemonic(self) -> str:
        """Assembly mnemonic, e.g. ``ld-mem`` or ``block-end``."""
        return self.opcode.name.lower().replace("_", "-")


@dataclass(frozen=True)
class Setup(Instruction):
    """Start a block: fix the fusion configuration for all its instructions.

    ``input_bits``/``weight_bits`` define how the BitBricks fuse into
    Fused-PEs for the duration of the block (Section IV-A).
    """

    input_bits: int
    weight_bits: int

    def __post_init__(self) -> None:
        _check_bitwidth(self.input_bits, "input_bits")
        _check_bitwidth(self.weight_bits, "weight_bits")

    @property
    def opcode(self) -> Opcode:
        return Opcode.SETUP


@dataclass(frozen=True)
class BlockEnd(Instruction):
    """End a block and name the address of the next instruction block."""

    next_block: int = 0

    def __post_init__(self) -> None:
        _check_field(self.next_block, IMMEDIATE_BITS, "next_block")

    @property
    def opcode(self) -> Opcode:
        return Opcode.BLOCK_END


@dataclass(frozen=True)
class Loop(Instruction):
    """Declare an iterative loop with a block-unique identifier.

    ``level`` distinguishes the outer (memory/tile) loop nest from the inner
    (buffer/compute) loop nest; the simulator and the address generators use
    the identifier, the iteration count is the loop's trip count.
    """

    loop_id: int
    iterations: int
    level: int = 0

    def __post_init__(self) -> None:
        _check_field(self.loop_id, LOOP_ID_BITS, "loop_id")
        _check_field(self.level, SCRATCHPAD_BITS, "level")
        if self.iterations <= 0:
            raise ValueError(f"loop iterations must be positive, got {self.iterations}")
        _check_field(self.iterations, IMMEDIATE_BITS, "iterations")

    @property
    def opcode(self) -> Opcode:
        return Opcode.LOOP


@dataclass(frozen=True)
class GenAddr(Instruction):
    """Attach an address-generation stride to a loop for one scratchpad.

    The generated address follows Equation 4 of the paper:
    ``address = base + Σ_id loop_iterator[id] × stride[id]``.
    """

    scratchpad: ScratchpadType
    loop_id: int
    stride: int

    def __post_init__(self) -> None:
        _check_field(self.loop_id, LOOP_ID_BITS, "loop_id")
        if self.stride < 0:
            raise ValueError(f"stride must be non-negative, got {self.stride}")
        _check_field(self.stride, IMMEDIATE_BITS, "stride")

    @property
    def opcode(self) -> Opcode:
        return Opcode.GEN_ADDR


@dataclass(frozen=True)
class Compute(Instruction):
    """Perform the block's arithmetic for the current loop iteration."""

    fn: ComputeFn = ComputeFn.MACC

    @property
    def opcode(self) -> Opcode:
        return Opcode.COMPUTE


@dataclass(frozen=True)
class LdMem(Instruction):
    """Load ``num_words`` variable-bitwidth words from DRAM into a scratchpad."""

    scratchpad: ScratchpadType
    num_words: int

    def __post_init__(self) -> None:
        if self.num_words <= 0:
            raise ValueError(f"num_words must be positive, got {self.num_words}")
        _check_field(self.num_words, IMMEDIATE_BITS, "num_words")

    @property
    def opcode(self) -> Opcode:
        return Opcode.LD_MEM


@dataclass(frozen=True)
class StMem(Instruction):
    """Store ``num_words`` variable-bitwidth words from a scratchpad to DRAM."""

    scratchpad: ScratchpadType
    num_words: int

    def __post_init__(self) -> None:
        if self.num_words <= 0:
            raise ValueError(f"num_words must be positive, got {self.num_words}")
        _check_field(self.num_words, IMMEDIATE_BITS, "num_words")

    @property
    def opcode(self) -> Opcode:
        return Opcode.ST_MEM


@dataclass(frozen=True)
class RdBuf(Instruction):
    """Read one fusion-configuration-sized operand group from a scratchpad."""

    scratchpad: ScratchpadType

    @property
    def opcode(self) -> Opcode:
        return Opcode.RD_BUF


@dataclass(frozen=True)
class WrBuf(Instruction):
    """Write one fusion-configuration-sized result group to a scratchpad."""

    scratchpad: ScratchpadType

    @property
    def opcode(self) -> Opcode:
        return Opcode.WR_BUF
