"""The Fusion-ISA compiler: DNN layers to instruction blocks (Section IV).

The compiler lowers every compute layer (convolution, fully-connected,
recurrent) to one instruction block:

1. The layer's GEMM shape and the batch size define the
   :class:`~repro.isa.tiling.GemmWorkload`.
2. The loop-ordering optimization picks the dataflow (output-, weight- or
   input-stationary) and the loop-tiling optimization picks tile sizes that
   fit the scratchpads (:func:`~repro.isa.optimizations.choose_loop_order`).
3. The layer-fusion optimization folds trailing pooling/activation layers
   into the block (:func:`~repro.isa.optimizations.fuse_layers`).
4. The block's instructions are emitted: a ``setup`` fixing the fusion
   configuration, the outer (memory-level) tile loops with their ``gen-addr``
   and ``ld-mem``/``st-mem`` instructions, the inner (buffer-level) loops
   with ``rd-buf``/``compute``/``wr-buf``, and the closing ``block-end``.

Standalone pooling/activation layers (ones with no preceding compute layer
to fuse into) compile to small blocks that exercise only the per-column
pooling/activation units and the input/output scratchpads.

The emitted blocks land in the 25-60 instruction range for the evaluated
layers, consistent with the paper's reported 30-86 instructions per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.config import BitFusionConfig
from repro.dnn.layers import (
    ActivationLayer,
    ConvLayer,
    FCLayer,
    Layer,
    LSTMLayer,
    PoolLayer,
    RNNLayer,
)
from repro.dnn.network import Network
from repro.isa.block import InstructionBlock
from repro.isa.instructions import (
    BlockEnd,
    Compute,
    ComputeFn,
    GenAddr,
    Instruction,
    LdMem,
    Loop,
    LoopOrder,
    RdBuf,
    ScratchpadType,
    Setup,
    StMem,
    WrBuf,
)
from repro.isa.optimizations import choose_loop_order, choose_loop_order_scalar, fuse_layers
from repro.isa.program import CompiledBlock, Program
from repro.isa.tiling import GemmWorkload, TilingPlan

__all__ = ["FusionCompiler", "PlanResolver", "compile_layer", "compile_network"]

#: Hook the evaluation session uses to memoize tiling searches across
#: compilations: ``(gemm, orders, compute)`` where ``compute`` runs the
#: actual search.  A resolver may serve the plan from a cache instead of
#: calling ``compute``; the plan it returns must be exactly what ``compute``
#: would have produced (plans serialize losslessly, so a cache round-trip
#: preserves this).
PlanResolver = Callable[
    [GemmWorkload, tuple[LoopOrder, ...], Callable[[], TilingPlan]], TilingPlan
]

_MAX_IMMEDIATE = (1 << 16) - 1

#: Loop identifiers of the outer (memory-level) tile loops.
_LOOP_M_TILE = 0
_LOOP_N_TILE = 1
_LOOP_R_TILE = 2

#: Loop identifiers of the inner (buffer-level) loops.
_LOOP_INNER_R = 8
_LOOP_INNER_M = 9
_LOOP_INNER_N = 10
_LOOP_KERNEL_Y = 11
_LOOP_KERNEL_X = 12
_LOOP_GATE = 13
_LOOP_CHANNEL = 14

#: First loop identifier available to fused pooling/activation followers.
_LOOP_FUSED_BASE = 24


def _clamp_iterations(value: int) -> int:
    """Clamp a loop trip count into the 16-bit immediate field."""
    return max(1, min(int(value), _MAX_IMMEDIATE))


def _clamp_stride(value: int) -> int:
    return max(0, min(int(value), _MAX_IMMEDIATE))


@dataclass(frozen=True)
class _GemmLowering:
    """Intermediate result of lowering one compute layer."""

    workload: GemmWorkload
    tiling: TilingPlan


class FusionCompiler:
    """Compiles layers and networks into Fusion-ISA programs.

    Parameters
    ----------
    config:
        The accelerator configuration (scratchpad sizes, batch size) the
        tiling decisions target.
    enable_loop_ordering:
        When ``False``, the compiler always uses the output-stationary order
        instead of searching (used by the ablation benchmarks).
    enable_layer_fusion:
        When ``False``, pooling/activation layers get their own blocks and
        their intermediate tensors travel through DRAM.
    plan_resolver:
        Optional :data:`PlanResolver` consulted before every tiling search.
        The evaluation session installs one backed by its artifact cache, so
        duplicate GEMM shapes — within a network, across networks, and
        across sweep points that share buffer geometry — skip the search
        entirely.  ``None`` (the default) searches unconditionally.
    vectorized_search:
        When ``False``, tiling searches run the pure-Python reference
        implementation instead of the vectorized grid scorer.  The two are
        bit-identical by contract (tested); the flag exists so the perf
        suite and the oracle tests can compile whole networks both ways.
    """

    def __init__(
        self,
        config: BitFusionConfig,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
        plan_resolver: PlanResolver | None = None,
        vectorized_search: bool = True,
    ) -> None:
        self.config = config
        self.enable_loop_ordering = enable_loop_ordering
        self.enable_layer_fusion = enable_layer_fusion
        self.plan_resolver = plan_resolver
        self.vectorized_search = vectorized_search

    def _plan_tiling(
        self, workload: GemmWorkload, orders: tuple[LoopOrder, ...]
    ) -> TilingPlan:
        """Search (or resolve from the memo) the tiling for one GEMM.

        ``orders`` names the dataflows the search may consider — the full
        tuple when loop ordering is enabled, just ``OUTPUT_STATIONARY``
        otherwise (and always for auxiliary layers) — and is part of the
        resolver's memo key, so ablation runs never share plans with
        optimized ones.
        """
        search = choose_loop_order if self.vectorized_search else choose_loop_order_scalar

        def compute() -> TilingPlan:
            return search(workload, self.config, orders)

        if self.plan_resolver is not None:
            return self.plan_resolver(workload, orders, compute)
        return compute()

    # ------------------------------------------------------------------ #
    # Workload lowering
    # ------------------------------------------------------------------ #
    def gemm_workload(self, layer: Layer, batch_size: int | None = None) -> GemmWorkload:
        """The GEMM a compute layer lowers to, with the batch folded into R."""
        if not layer.has_gemm():
            raise ValueError(f"layer {layer.name!r} does not lower to a GEMM")
        batch = self.config.batch_size if batch_size is None else batch_size
        if batch <= 0:
            raise ValueError(f"batch size must be positive, got {batch}")
        shape = layer.gemm_shape()
        return GemmWorkload(
            m=shape.m,
            n=shape.n,
            r=shape.repeats * batch,
            input_bits=layer.input_bits,
            weight_bits=layer.weight_bits,
            output_bits=layer.output_bits,
        )

    def gemm_orders(self) -> tuple[LoopOrder, ...]:
        """The loop orders a compute-layer tiling search may consider.

        Part of the tiling memo key — an ablation run (loop ordering
        disabled) never shares plans with an optimized one.
        """
        if self.enable_loop_ordering:
            return tuple(LoopOrder)
        return (LoopOrder.OUTPUT_STATIONARY,)

    def auxiliary_gemm_workload(
        self, layer: Layer, batch_size: int | None = None
    ) -> GemmWorkload:
        """The degenerate GEMM a pooling/activation layer lowers to.

        The data still flows as a (1, 1, elements x batch) workload so the
        simulator can charge its DRAM traffic; shared between
        :meth:`compile_auxiliary_layer` and :meth:`tiling_requests` so the
        search an audit predicts is exactly the search compilation runs.
        """
        batch = self.config.batch_size if batch_size is None else batch_size
        if batch <= 0:
            raise ValueError(f"batch size must be positive, got {batch}")
        return GemmWorkload(
            m=1,
            n=1,
            r=max(1, layer.input_elements() * batch),
            input_bits=layer.input_bits,
            weight_bits=layer.weight_bits,
            output_bits=layer.output_bits,
        )

    def tiling_requests(
        self, network: Network, batch_size: int | None = None
    ) -> list[tuple[GemmWorkload, tuple[LoopOrder, ...]]]:
        """The ``(gemm, orders)`` tiling searches compiling ``network`` would run.

        Derivable without searching or emitting a single instruction: fusion
        grouping plus GEMM-shape lowering only.  This is what lets a sweep
        ``--dry-run`` report how much of a *cold* workload's compile cost the
        persistent tiling memo already covers
        (:func:`~repro.session.engine.audit_workload_cache`) — the keys
        built from these pairs are exactly the keys
        :meth:`~FusionCompiler.compile` would consult through its plan
        resolver, in program order.
        """
        decision = fuse_layers(network.layers, enable=self.enable_layer_fusion)
        requests: list[tuple[GemmWorkload, tuple[LoopOrder, ...]]] = []
        for group in decision.groups:
            head = group[0]
            if head.has_gemm():
                requests.append((self.gemm_workload(head, batch_size), self.gemm_orders()))
            else:
                requests.append(
                    (
                        self.auxiliary_gemm_workload(head, batch_size),
                        (LoopOrder.OUTPUT_STATIONARY,),
                    )
                )
        return requests

    def _lower_gemm(self, layer: Layer, batch_size: int | None = None) -> _GemmLowering:
        workload = self.gemm_workload(layer, batch_size)
        return _GemmLowering(
            workload=workload, tiling=self._plan_tiling(workload, self.gemm_orders())
        )

    # ------------------------------------------------------------------ #
    # Instruction emission
    # ------------------------------------------------------------------ #
    def _emit_memory_level(
        self, tiling: TilingPlan, fused_output_words: int | None
    ) -> list[Instruction]:
        """Outer tile loops, address generators and DRAM transfer instructions."""
        instructions: list[Instruction] = []

        # The stationary tensor's loop sits outermost so its tile is re-used
        # across the inner tile loops; the declaration order encodes that.
        order_to_loops = {
            LoopOrder.OUTPUT_STATIONARY: (
                (_LOOP_M_TILE, tiling.m_tiles),
                (_LOOP_R_TILE, tiling.r_tiles),
                (_LOOP_N_TILE, tiling.n_tiles),
            ),
            LoopOrder.WEIGHT_STATIONARY: (
                (_LOOP_M_TILE, tiling.m_tiles),
                (_LOOP_N_TILE, tiling.n_tiles),
                (_LOOP_R_TILE, tiling.r_tiles),
            ),
            LoopOrder.INPUT_STATIONARY: (
                (_LOOP_N_TILE, tiling.n_tiles),
                (_LOOP_R_TILE, tiling.r_tiles),
                (_LOOP_M_TILE, tiling.m_tiles),
            ),
        }
        for loop_id, trips in order_to_loops[tiling.loop_order]:
            instructions.append(
                Loop(loop_id=loop_id, iterations=_clamp_iterations(trips), level=0)
            )

        # Address generation at tile granularity: tiles of each tensor are
        # laid out row-major in its address space, so the outer loop's stride
        # is the inner tile count and the inner loop's stride is one tile.
        instructions.extend(
            [
                GenAddr(
                    scratchpad=ScratchpadType.WBUF,
                    loop_id=_LOOP_M_TILE,
                    stride=_clamp_stride(tiling.n_tiles),
                ),
                GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=_LOOP_N_TILE, stride=1),
                GenAddr(
                    scratchpad=ScratchpadType.IBUF,
                    loop_id=_LOOP_N_TILE,
                    stride=_clamp_stride(tiling.r_tiles),
                ),
                GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=_LOOP_R_TILE, stride=1),
                GenAddr(
                    scratchpad=ScratchpadType.OBUF,
                    loop_id=_LOOP_M_TILE,
                    stride=_clamp_stride(tiling.r_tiles),
                ),
                GenAddr(scratchpad=ScratchpadType.OBUF, loop_id=_LOOP_R_TILE, stride=1),
            ]
        )

        weight_words = _clamp_iterations(tiling.tile_m * tiling.tile_n)
        input_words = _clamp_iterations(tiling.tile_n * tiling.tile_r)
        output_words = _clamp_iterations(
            fused_output_words
            if fused_output_words is not None
            else tiling.tile_m * tiling.tile_r
        )
        instructions.append(LdMem(scratchpad=ScratchpadType.WBUF, num_words=weight_words))
        instructions.append(LdMem(scratchpad=ScratchpadType.IBUF, num_words=input_words))
        if tiling.dram_output_read_bits > 0:
            instructions.append(
                LdMem(scratchpad=ScratchpadType.OBUF, num_words=output_words)
            )
        instructions.append(StMem(scratchpad=ScratchpadType.OBUF, num_words=output_words))
        return instructions

    def _emit_inner_level(self, layer: Layer, tiling: TilingPlan) -> list[Instruction]:
        """Buffer-level loops, address generators and compute instructions."""
        instructions: list[Instruction] = [
            Loop(
                loop_id=_LOOP_INNER_R,
                iterations=_clamp_iterations(tiling.tile_r),
                level=1,
            ),
            Loop(
                loop_id=_LOOP_INNER_M,
                iterations=_clamp_iterations(tiling.tile_m),
                level=1,
            ),
        ]
        gen_addrs: list[GenAddr] = [
            GenAddr(
                scratchpad=ScratchpadType.IBUF,
                loop_id=_LOOP_INNER_R,
                stride=_clamp_stride(tiling.tile_n),
            ),
            GenAddr(
                scratchpad=ScratchpadType.WBUF,
                loop_id=_LOOP_INNER_M,
                stride=_clamp_stride(tiling.tile_n),
            ),
            GenAddr(scratchpad=ScratchpadType.OBUF, loop_id=_LOOP_INNER_R, stride=1),
            GenAddr(
                scratchpad=ScratchpadType.OBUF,
                loop_id=_LOOP_INNER_M,
                stride=_clamp_stride(tiling.tile_r),
            ),
        ]

        if isinstance(layer, ConvLayer):
            inner_channels = max(
                1, tiling.tile_n // max(1, layer.kernel * layer.kernel)
            )
            instructions.extend(
                [
                    Loop(
                        loop_id=_LOOP_KERNEL_Y,
                        iterations=_clamp_iterations(layer.kernel),
                        level=1,
                    ),
                    Loop(
                        loop_id=_LOOP_KERNEL_X,
                        iterations=_clamp_iterations(layer.kernel),
                        level=1,
                    ),
                    Loop(
                        loop_id=_LOOP_CHANNEL,
                        iterations=_clamp_iterations(inner_channels),
                        level=1,
                    ),
                ]
            )
            gen_addrs.extend(
                [
                    GenAddr(
                        scratchpad=ScratchpadType.IBUF,
                        loop_id=_LOOP_KERNEL_Y,
                        stride=_clamp_stride(layer.in_width),
                    ),
                    GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=_LOOP_KERNEL_X, stride=1),
                    GenAddr(
                        scratchpad=ScratchpadType.IBUF,
                        loop_id=_LOOP_CHANNEL,
                        stride=_clamp_stride(layer.in_height * layer.in_width),
                    ),
                    GenAddr(
                        scratchpad=ScratchpadType.WBUF,
                        loop_id=_LOOP_KERNEL_Y,
                        stride=_clamp_stride(layer.kernel),
                    ),
                    GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=_LOOP_KERNEL_X, stride=1),
                    GenAddr(
                        scratchpad=ScratchpadType.WBUF,
                        loop_id=_LOOP_CHANNEL,
                        stride=_clamp_stride(layer.kernel * layer.kernel),
                    ),
                ]
            )
        elif isinstance(layer, (LSTMLayer, RNNLayer)):
            instructions.append(
                Loop(
                    loop_id=_LOOP_GATE,
                    iterations=_clamp_iterations(layer.gates),
                    level=1,
                )
            )
            gen_addrs.extend(
                [
                    GenAddr(
                        scratchpad=ScratchpadType.WBUF,
                        loop_id=_LOOP_GATE,
                        stride=_clamp_stride(layer.hidden_size),
                    ),
                    GenAddr(
                        scratchpad=ScratchpadType.OBUF,
                        loop_id=_LOOP_GATE,
                        stride=_clamp_stride(layer.hidden_size),
                    ),
                ]
            )
        else:
            # Fully-connected layers walk the reduction dimension explicitly.
            instructions.append(
                Loop(
                    loop_id=_LOOP_INNER_N,
                    iterations=_clamp_iterations(tiling.tile_n),
                    level=1,
                )
            )
            gen_addrs.extend(
                [
                    GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=_LOOP_INNER_N, stride=1),
                    GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=_LOOP_INNER_N, stride=1),
                ]
            )

        instructions.extend(gen_addrs)
        instructions.extend(
            [
                RdBuf(scratchpad=ScratchpadType.IBUF),
                RdBuf(scratchpad=ScratchpadType.WBUF),
                RdBuf(scratchpad=ScratchpadType.OBUF),
                Compute(fn=ComputeFn.MACC),
                WrBuf(scratchpad=ScratchpadType.OBUF),
            ]
        )
        return instructions

    def _emit_fused_followers(self, fused: tuple[Layer, ...]) -> list[Instruction]:
        """Compute instructions for pooling/activation layers fused into a block."""
        instructions: list[Instruction] = []
        for index, layer in enumerate(fused):
            if isinstance(layer, PoolLayer):
                instructions.extend(
                    [
                        Loop(
                            loop_id=_LOOP_FUSED_BASE + index,
                            iterations=_clamp_iterations(layer.kernel * layer.kernel),
                            level=1,
                        ),
                        Compute(fn=ComputeFn.MAX if layer.mode == "max" else ComputeFn.ADD),
                    ]
                )
            elif isinstance(layer, ActivationLayer):
                instructions.append(Compute(fn=ComputeFn.ACTIVATION))
        return instructions

    # ------------------------------------------------------------------ #
    # Layer compilation
    # ------------------------------------------------------------------ #
    def compile_compute_layer(
        self,
        layer: Layer,
        fused: tuple[Layer, ...] = (),
        batch_size: int | None = None,
    ) -> CompiledBlock:
        """Compile one GEMM-shaped layer (plus fused followers) to a block."""
        lowering = self._lower_gemm(layer, batch_size)
        tiling = lowering.tiling
        batch = self.config.batch_size if batch_size is None else batch_size

        fused_output_words: int | None = None
        if fused:
            final = fused[-1]
            stored_elements = final.output_elements() * batch
            tiling = tiling.with_output_store_bits(stored_elements * final.output_bits)
            fused_output_words = max(1, stored_elements // max(1, tiling.tile_count))

        instructions: list[Instruction] = [
            Setup(input_bits=layer.input_bits, weight_bits=layer.weight_bits)
        ]
        instructions.extend(self._emit_memory_level(tiling, fused_output_words))
        instructions.extend(self._emit_inner_level(layer, tiling))
        instructions.extend(self._emit_fused_followers(fused))
        instructions.append(BlockEnd(next_block=0))

        name = layer.name if not fused else f"{layer.name}+{'+'.join(l.name for l in fused)}"
        return CompiledBlock(
            block=InstructionBlock(name, instructions),
            layer=layer,
            tiling=tiling,
            loop_order=tiling.loop_order,
            fused_layers=fused,
        )

    def compile_auxiliary_layer(
        self, layer: Layer, batch_size: int | None = None
    ) -> CompiledBlock:
        """Compile a standalone pooling/activation layer to its own block.

        The data still lowers to a (degenerate) workload so the simulator can
        charge its DRAM traffic; the compute happens on the per-column units.
        """
        if layer.has_gemm():
            raise ValueError(
                f"layer {layer.name!r} lowers to a GEMM; use compile_compute_layer"
            )
        batch = self.config.batch_size if batch_size is None else batch_size
        workload = self.auxiliary_gemm_workload(layer, batch_size)
        tiling = self._plan_tiling(workload, (LoopOrder.OUTPUT_STATIONARY,))
        tiling = tiling.with_output_store_bits(
            layer.output_elements() * batch * layer.output_bits
        )

        if isinstance(layer, PoolLayer):
            inner_fn = ComputeFn.MAX if layer.mode == "max" else ComputeFn.ADD
            window = layer.kernel * layer.kernel
        else:
            inner_fn = ComputeFn.ACTIVATION
            window = 1

        instructions: list[Instruction] = [
            Setup(input_bits=layer.input_bits, weight_bits=layer.weight_bits),
            Loop(loop_id=_LOOP_R_TILE, iterations=_clamp_iterations(tiling.r_tiles), level=0),
            GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=_LOOP_R_TILE, stride=1),
            GenAddr(scratchpad=ScratchpadType.OBUF, loop_id=_LOOP_R_TILE, stride=1),
            LdMem(
                scratchpad=ScratchpadType.IBUF,
                num_words=_clamp_iterations(tiling.tile_r),
            ),
            Loop(
                loop_id=_LOOP_INNER_R,
                iterations=_clamp_iterations(tiling.tile_r // max(1, window)),
                level=1,
            ),
            Loop(loop_id=_LOOP_CHANNEL, iterations=_clamp_iterations(window), level=1),
            GenAddr(scratchpad=ScratchpadType.IBUF, loop_id=_LOOP_INNER_R, stride=1),
            GenAddr(scratchpad=ScratchpadType.OBUF, loop_id=_LOOP_INNER_R, stride=1),
            RdBuf(scratchpad=ScratchpadType.IBUF),
            Compute(fn=inner_fn),
            WrBuf(scratchpad=ScratchpadType.OBUF),
            StMem(
                scratchpad=ScratchpadType.OBUF,
                num_words=_clamp_iterations(max(1, tiling.tile_r // max(1, window))),
            ),
            BlockEnd(next_block=0),
        ]
        return CompiledBlock(
            block=InstructionBlock(layer.name, instructions),
            layer=layer,
            tiling=tiling,
            loop_order=LoopOrder.OUTPUT_STATIONARY,
            fused_layers=(),
        )

    # ------------------------------------------------------------------ #
    # Network compilation
    # ------------------------------------------------------------------ #
    def compile(self, network: Network, batch_size: int | None = None) -> Program:
        """Compile a whole network into an ordered program of blocks."""
        decision = fuse_layers(network.layers, enable=self.enable_layer_fusion)
        program = Program(network.name)
        for group in decision.groups:
            head, followers = group[0], group[1:]
            if head.has_gemm():
                program.append(
                    self.compile_compute_layer(head, fused=followers, batch_size=batch_size)
                )
            else:
                # A non-compute group never has followers (fusion only attaches
                # pool/activation layers to a preceding compute layer).
                program.append(self.compile_auxiliary_layer(head, batch_size=batch_size))
        return program


def compile_layer(
    layer: Layer, config: BitFusionConfig, batch_size: int | None = None
) -> CompiledBlock:
    """Convenience wrapper: compile a single layer with default optimizations."""
    compiler = FusionCompiler(config)
    if layer.has_gemm():
        return compiler.compile_compute_layer(layer, batch_size=batch_size)
    return compiler.compile_auxiliary_layer(layer, batch_size=batch_size)


def compile_network(
    network: Network, config: BitFusionConfig, batch_size: int | None = None
) -> Program:
    """Convenience wrapper: compile a network with default optimizations."""
    return FusionCompiler(config).compile(network, batch_size=batch_size)
