"""Loop tiling against the on-chip scratchpad capacities (Section IV-B).

The Fusion-ISA expresses each layer as a nest of ``loop`` instructions; the
compiler partitions those loops into *tiles* sized so that the data touched
by one tile fits in the input, weight and output scratchpads.  Tiling, and
the loop *order* wrapped around it, together determine how many times each
tensor is re-fetched from off-chip memory — the dominant term of the energy
and (for bandwidth-bound layers) performance model.

Every compute layer lowers to the GEMM ``out[M, R] = W[M, N] @ X[N, R]``
where ``R`` counts input columns (spatial output positions × timesteps ×
batch).  For a given tile choice ``(tile_m, tile_n, tile_r)`` the off-chip
traffic of the three dataflow orders is:

* **output-stationary** — partial sums stay in OBUF across the whole
  reduction; weights are re-fetched once per ``R``-tile, inputs once per
  ``M``-tile, outputs written exactly once.
* **weight-stationary** — each weight tile is fetched exactly once; inputs
  are re-fetched once per ``M``-tile and 32-bit partial sums spill to DRAM
  once per extra ``N``-tile.
* **input-stationary** — each input tile is fetched exactly once; weights
  are re-fetched once per ``R``-tile and partial sums spill as above.

:func:`plan_tiling` performs an exhaustive search over tile sizes for one
order; :func:`~repro.isa.optimizations.choose_loop_order` compares the
orders.  The search is deterministic, and since the candidate space is a
dense (tile_m x tile_n x loop_order) grid it is scored *vectorized*: numpy
broadcasts the buffer-feasibility masks, the traffic formulas and the
``(total_dram_bits, tile_count)`` tie-break key over the whole grid and a
single argmin picks the winner (:func:`search_tiling`).  The original
pure-Python double loop survives as :func:`search_tiling_scalar` /
:func:`plan_tiling_scalar` — the reference oracle the vectorized path is
property-tested against, and the fallback when a pathological GEMM would
overflow 64-bit traffic arithmetic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from math import ceil

import numpy as np

from repro.core.config import BitFusionConfig
from repro.fingerprint import fingerprint_payload
from repro.isa.instructions import LoopOrder

__all__ = [
    "GemmWorkload",
    "TilingPlan",
    "plan_tiling",
    "plan_tiling_scalar",
    "search_tiling",
    "search_tiling_scalar",
    "tile_candidates",
]

#: Partial sums travel at 32 bits (Figure 4); spilled partials use this width.
PARTIAL_SUM_BITS = 32


@dataclass(frozen=True)
class GemmWorkload:
    """The GEMM a layer lowers to, with operand bitwidths.

    ``out[M, R] = W[M, N] @ X[N, R]`` — ``R`` already includes spatial
    repeats, timesteps and the batch dimension.
    """

    m: int
    n: int
    r: int
    input_bits: int
    weight_bits: int
    output_bits: int

    def __post_init__(self) -> None:
        for label, value in (("m", self.m), ("n", self.n), ("r", self.r)):
            if value <= 0:
                raise ValueError(f"GEMM dimension {label} must be positive, got {value}")
        for label, value in (
            ("input_bits", self.input_bits),
            ("weight_bits", self.weight_bits),
            ("output_bits", self.output_bits),
        ):
            if value not in (1, 2, 4, 8, 16, 32):
                raise ValueError(f"{label} must be a supported bitwidth, got {value}")

    @property
    def macs(self) -> int:
        return self.m * self.n * self.r

    def to_dict(self) -> dict[str, int]:
        """JSON-compatible payload (every field is an int)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, int]) -> "GemmWorkload":
        """Rebuild (and re-validate) a workload from :meth:`to_dict` output."""
        return cls(**payload)

    @property
    def weight_footprint_bits(self) -> int:
        return self.m * self.n * self.weight_bits

    @property
    def input_footprint_bits(self) -> int:
        return self.n * self.r * self.input_bits

    @property
    def output_footprint_bits(self) -> int:
        return self.m * self.r * self.output_bits


@dataclass(frozen=True)
class TilingPlan:
    """A concrete tiling of one GEMM plus its off-chip traffic.

    Traffic numbers are totals in bits for executing the whole GEMM once
    (i.e. one batch worth of work when ``R`` includes the batch).
    """

    workload: GemmWorkload
    loop_order: LoopOrder
    tile_m: int
    tile_n: int
    tile_r: int
    dram_weight_bits: int
    dram_input_bits: int
    dram_output_write_bits: int
    dram_output_read_bits: int

    @property
    def m_tiles(self) -> int:
        return ceil(self.workload.m / self.tile_m)

    @property
    def n_tiles(self) -> int:
        return ceil(self.workload.n / self.tile_n)

    @property
    def r_tiles(self) -> int:
        return ceil(self.workload.r / self.tile_r)

    @property
    def tile_count(self) -> int:
        return self.m_tiles * self.n_tiles * self.r_tiles

    @property
    def total_dram_bits(self) -> int:
        return (
            self.dram_weight_bits
            + self.dram_input_bits
            + self.dram_output_write_bits
            + self.dram_output_read_bits
        )

    @property
    def fits_on_chip(self) -> bool:
        """Whether the whole GEMM fits in the scratchpads as a single tile."""
        return self.tile_count == 1

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible payload of the plan (workload nested, enum by value)."""
        return {
            "workload": self.workload.to_dict(),
            "loop_order": self.loop_order.value,
            "tile_m": self.tile_m,
            "tile_n": self.tile_n,
            "tile_r": self.tile_r,
            "dram_weight_bits": self.dram_weight_bits,
            "dram_input_bits": self.dram_input_bits,
            "dram_output_write_bits": self.dram_output_write_bits,
            "dram_output_read_bits": self.dram_output_read_bits,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TilingPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            workload=GemmWorkload.from_dict(dict(payload["workload"])),  # type: ignore[arg-type]
            loop_order=LoopOrder(payload["loop_order"]),
            tile_m=int(payload["tile_m"]),  # type: ignore[arg-type]
            tile_n=int(payload["tile_n"]),  # type: ignore[arg-type]
            tile_r=int(payload["tile_r"]),  # type: ignore[arg-type]
            dram_weight_bits=int(payload["dram_weight_bits"]),  # type: ignore[arg-type]
            dram_input_bits=int(payload["dram_input_bits"]),  # type: ignore[arg-type]
            dram_output_write_bits=int(payload["dram_output_write_bits"]),  # type: ignore[arg-type]
            dram_output_read_bits=int(payload["dram_output_read_bits"]),  # type: ignore[arg-type]
        )

    def fingerprint(self) -> str:
        """Stable content hash of the plan (tile choice plus traffic totals).

        Tiling plans carry no names — a plan is the same plan no matter
        which network's layer produced it — so this digest is what lets the
        content-addressed *layer* cache level recognize identical
        (layer, tiling) pairs across different networks in a model-family
        sweep.

        The digest is memoized on the (frozen) instance: plans ride along
        every block-cache lookup, so re-serializing the plan for each lookup
        would tax the warm path for no reason.  The memo lives outside the
        dataclass fields, so equality, ``asdict`` and pickling are unchanged.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_payload(self.to_dict())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def with_output_store_bits(self, output_write_bits: int) -> "TilingPlan":
        """Copy of this plan with a different output-store traffic total.

        Used by layer fusion: when a pooling/activation layer is folded into
        the block, the stored output shrinks to the fused layer's output.
        """
        if output_write_bits < 0:
            raise ValueError(f"output traffic must be non-negative, got {output_write_bits}")
        return TilingPlan(
            workload=self.workload,
            loop_order=self.loop_order,
            tile_m=self.tile_m,
            tile_n=self.tile_n,
            tile_r=self.tile_r,
            dram_weight_bits=self.dram_weight_bits,
            dram_input_bits=self.dram_input_bits,
            dram_output_write_bits=output_write_bits,
            dram_output_read_bits=self.dram_output_read_bits,
        )


def tile_candidates(extent: int, max_candidates: int = 16) -> list[int]:
    """Candidate tile sizes for a loop of the given extent.

    Powers of two up to the extent plus the extent itself, largest first.
    Keeping the candidate list short bounds the search while still finding
    tiles within a factor of two of the best.
    """
    if extent <= 0:
        raise ValueError(f"loop extent must be positive, got {extent}")
    candidates = {extent}
    size = 1
    while size < extent:
        candidates.add(size)
        size *= 2
    ordered = sorted(candidates, reverse=True)
    return ordered[:max_candidates]


def _traffic(
    workload: GemmWorkload,
    order: LoopOrder,
    m_tiles: int,
    n_tiles: int,
    r_tiles: int,
) -> tuple[int, int, int, int]:
    """Off-chip traffic (weights, inputs, output writes, output reads) in bits."""
    weight_bits = workload.weight_footprint_bits
    input_bits = workload.input_footprint_bits
    output_bits = workload.output_footprint_bits
    partial_bits = workload.m * workload.r * PARTIAL_SUM_BITS

    # A tensor that fits on chip in its entirety is fetched exactly once,
    # regardless of how the loops around it iterate.
    weight_refetch = 1 if (m_tiles == 1 and n_tiles == 1) else r_tiles
    input_refetch = 1 if (n_tiles == 1 and r_tiles == 1) else m_tiles

    if order is LoopOrder.OUTPUT_STATIONARY:
        return (
            weight_bits * weight_refetch,
            input_bits * input_refetch,
            output_bits,
            0,
        )
    if order is LoopOrder.WEIGHT_STATIONARY:
        spills = max(0, n_tiles - 1)
        return (
            weight_bits,
            input_bits * input_refetch,
            output_bits + partial_bits * spills,
            partial_bits * spills,
        )
    if order is LoopOrder.INPUT_STATIONARY:
        spills = max(0, n_tiles - 1)
        return (
            weight_bits * weight_refetch,
            input_bits,
            output_bits + partial_bits * spills,
            partial_bits * spills,
        )
    raise ValueError(f"unknown loop order {order}")  # pragma: no cover


def _no_feasible_tiling(workload: GemmWorkload, config: BitFusionConfig) -> ValueError:
    return ValueError(
        f"no feasible tiling for GEMM {workload.m}x{workload.n}x{workload.r} "
        f"at {workload.input_bits}/{workload.weight_bits} bits within buffers "
        f"IBUF={config.ibuf_kb}KB WBUF={config.wbuf_kb}KB OBUF={config.obuf_kb}KB"
    )


def plan_tiling_scalar(
    workload: GemmWorkload,
    config: BitFusionConfig,
    loop_order: LoopOrder = LoopOrder.OUTPUT_STATIONARY,
) -> TilingPlan:
    """Reference search: the pure-Python double loop over tile candidates.

    This is the oracle the vectorized :func:`search_tiling` is tested
    against (the two must agree plan-for-plan on every input), and the
    fallback for GEMMs so large that grid traffic arithmetic would overflow
    ``int64``.  The search enumerates power-of-two tile sizes for the ``M``
    and ``N`` loops, derives the largest ``R`` tile the input and output
    scratchpads allow, discards combinations that overflow the weight
    scratchpad, and keeps the candidate with the least total off-chip
    traffic (ties broken towards fewer, larger tiles).
    """
    ibuf_bits = int(config.ibuf_kb * 1024 * 8)
    wbuf_bits = int(config.wbuf_kb * 1024 * 8)
    obuf_bits = int(config.obuf_kb * 1024 * 8)

    best: TilingPlan | None = None
    best_key: tuple[int, int] | None = None

    for tile_m in tile_candidates(workload.m):
        for tile_n in tile_candidates(workload.n):
            if tile_m * tile_n * workload.weight_bits > wbuf_bits:
                continue
            # Largest R tile the input and output scratchpads both allow.
            r_by_ibuf = ibuf_bits // max(1, tile_n * workload.input_bits)
            r_by_obuf = obuf_bits // max(1, tile_m * PARTIAL_SUM_BITS)
            # Loop trip counts are encoded in 16-bit immediates (Table I),
            # so a single tile never spans more than 65535 input columns.
            tile_r = min(workload.r, r_by_ibuf, r_by_obuf, (1 << 16) - 1)
            if tile_r <= 0:
                continue

            m_tiles = ceil(workload.m / tile_m)
            n_tiles = ceil(workload.n / tile_n)
            r_tiles = ceil(workload.r / tile_r)
            weights, inputs, out_writes, out_reads = _traffic(
                workload, loop_order, m_tiles, n_tiles, r_tiles
            )
            plan = TilingPlan(
                workload=workload,
                loop_order=loop_order,
                tile_m=tile_m,
                tile_n=tile_n,
                tile_r=tile_r,
                dram_weight_bits=weights,
                dram_input_bits=inputs,
                dram_output_write_bits=out_writes,
                dram_output_read_bits=out_reads,
            )
            key = (plan.total_dram_bits, plan.tile_count)
            if best_key is None or key < best_key:
                best, best_key = plan, key

    if best is None:
        raise _no_feasible_tiling(workload, config)
    return best


def search_tiling_scalar(
    workload: GemmWorkload,
    config: BitFusionConfig,
    orders: tuple[LoopOrder, ...],
) -> TilingPlan:
    """Reference multi-order search: best scalar plan over ``orders``.

    Ties between orders break towards the earliest order in ``orders``,
    matching Python ``min`` over per-order winners.
    """
    if not orders:
        raise ValueError("at least one loop order must be considered")
    plans = [plan_tiling_scalar(workload, config, loop_order=order) for order in orders]
    return min(plans, key=lambda plan: (plan.total_dram_bits, plan.tile_count))


#: Grid traffic totals are scored in ``int64``; a workload whose worst-case
#: candidate traffic could exceed this bound falls back to the scalar search
#: (Python ints never overflow).  The margin of 2 bits absorbs the final
#: four-term sum.
_INT64_SAFE_BOUND = 1 << 62


def _int64_safe(workload: GemmWorkload) -> bool:
    """Whether every candidate's traffic terms provably fit in ``int64``.

    Worst cases over the whole grid: weights re-fetched once per ``R`` tile
    (at most ``r`` of them), inputs once per ``M`` tile (at most ``m``),
    partial sums spilled once per extra ``N`` tile (at most ``n``), and the
    tile count bounded by ``m * n * r``.
    """
    partial_bits = workload.m * workload.r * PARTIAL_SUM_BITS
    worst = max(
        workload.weight_footprint_bits * workload.r,
        workload.input_footprint_bits * workload.m,
        workload.output_footprint_bits + 2 * partial_bits * workload.n,
        workload.m * workload.n * workload.r,
    )
    return 4 * worst < _INT64_SAFE_BOUND


def search_tiling(
    workload: GemmWorkload,
    config: BitFusionConfig,
    orders: tuple[LoopOrder, ...],
) -> TilingPlan:
    """Vectorized search over the full (tile_m x tile_n x loop_order) grid.

    Scores every candidate cell at once with numpy: the buffer-feasibility
    mask, the derived ``R`` tile, the per-order traffic formulas and the
    ``(total_dram_bits, tile_count)`` tie-break key are all arrays, and the
    winner is the first cell (in the scalar search's iteration order —
    orders outermost, then tile_m and tile_n descending) achieving the
    minimal key.  The returned plan is bit-identical to
    :func:`search_tiling_scalar`: the winning cell's traffic is re-derived
    with exact Python-integer arithmetic, so vectorization decides *which*
    candidate wins but never touches the numbers stored in the plan.
    """
    if not orders:
        raise ValueError("at least one loop order must be considered")
    if not _int64_safe(workload):
        return search_tiling_scalar(workload, config, orders)

    ibuf_bits = int(config.ibuf_kb * 1024 * 8)
    wbuf_bits = int(config.wbuf_kb * 1024 * 8)
    obuf_bits = int(config.obuf_kb * 1024 * 8)

    tile_m = np.asarray(tile_candidates(workload.m), dtype=np.int64)[:, None]
    tile_n = np.asarray(tile_candidates(workload.n), dtype=np.int64)[None, :]

    feasible = tile_m * tile_n * workload.weight_bits <= wbuf_bits
    # Largest R tile the input and output scratchpads both allow (the
    # divisors are >= 1 by construction: tile sizes and bitwidths are
    # positive, and PARTIAL_SUM_BITS is a constant 32).
    r_by_ibuf = ibuf_bits // (tile_n * workload.input_bits)
    r_by_obuf = obuf_bits // (tile_m * PARTIAL_SUM_BITS)
    tile_r = np.minimum(
        np.minimum(r_by_ibuf, r_by_obuf), min(workload.r, (1 << 16) - 1)
    )
    feasible &= tile_r > 0
    if not feasible.any():
        raise _no_feasible_tiling(workload, config)

    m_tiles = -(-workload.m // tile_m)
    n_tiles = -(-workload.n // tile_n)
    r_tiles = -(-workload.r // np.maximum(tile_r, 1))
    tile_count = m_tiles * n_tiles * r_tiles

    weight_bits = workload.weight_footprint_bits
    input_bits = workload.input_footprint_bits
    output_bits = workload.output_footprint_bits
    partial_bits = workload.m * workload.r * PARTIAL_SUM_BITS
    weight_refetch = np.where((m_tiles == 1) & (n_tiles == 1), 1, r_tiles)
    input_refetch = np.where((n_tiles == 1) & (r_tiles == 1), 1, m_tiles)
    spilled = 2 * partial_bits * np.maximum(0, n_tiles - 1)

    totals = np.empty((len(orders),) + feasible.shape, dtype=np.int64)
    for index, order in enumerate(orders):
        if order is LoopOrder.OUTPUT_STATIONARY:
            total = weight_bits * weight_refetch + input_bits * input_refetch + output_bits
        elif order is LoopOrder.WEIGHT_STATIONARY:
            total = weight_bits + input_bits * input_refetch + output_bits + spilled
        elif order is LoopOrder.INPUT_STATIONARY:
            total = weight_bits * weight_refetch + input_bits + output_bits + spilled
        else:  # pragma: no cover - mirrors _traffic's guard
            raise ValueError(f"unknown loop order {order}")
        totals[index] = total

    # Lexicographic argmin over (total_dram_bits, tile_count), first
    # occurrence in C order — exactly the scalar search's "first strictly
    # smaller key wins" semantics with orders outermost.
    infinity = np.iinfo(np.int64).max
    masked_totals = np.where(feasible[None, :, :], totals, infinity)
    best_total = masked_totals.min()
    on_best_total = masked_totals == best_total
    masked_counts = np.where(
        on_best_total, np.broadcast_to(tile_count[None, :, :], totals.shape), infinity
    )
    best_count = masked_counts.min()
    winner = int(np.argmax(on_best_total & (masked_counts == best_count)))
    order_index, m_index, n_index = np.unravel_index(winner, totals.shape)

    # Re-derive the winner with exact integer arithmetic so the stored plan
    # is bit-for-bit the scalar search's.
    order = orders[order_index]
    chosen_m = int(tile_m[m_index, 0])
    chosen_n = int(tile_n[0, n_index])
    chosen_r = int(tile_r[m_index, n_index])
    chosen_m_tiles = ceil(workload.m / chosen_m)
    chosen_n_tiles = ceil(workload.n / chosen_n)
    chosen_r_tiles = ceil(workload.r / chosen_r)
    weights, inputs, out_writes, out_reads = _traffic(
        workload, order, chosen_m_tiles, chosen_n_tiles, chosen_r_tiles
    )
    return TilingPlan(
        workload=workload,
        loop_order=order,
        tile_m=chosen_m,
        tile_n=chosen_n,
        tile_r=chosen_r,
        dram_weight_bits=weights,
        dram_input_bits=inputs,
        dram_output_write_bits=out_writes,
        dram_output_read_bits=out_reads,
    )


def plan_tiling(
    workload: GemmWorkload,
    config: BitFusionConfig,
    loop_order: LoopOrder = LoopOrder.OUTPUT_STATIONARY,
) -> TilingPlan:
    """Find the minimum-traffic tiling of ``workload`` for one loop order.

    Vectorized grid search (see :func:`search_tiling`); bit-identical to
    :func:`plan_tiling_scalar`, the pure-Python reference oracle.
    """
    return search_tiling(workload, config, (loop_order,))
