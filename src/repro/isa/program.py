"""Compiled programs: the ordered instruction blocks of one network.

A :class:`Program` is what the compiler produces for a whole DNN and what
the cycle-accurate simulator executes.  Each entry pairs an
:class:`~repro.isa.block.InstructionBlock` with the compilation metadata the
simulator needs (the layer it implements, its tiling plan, the chosen loop
order and any fused follow-on layers).

Programs (and their blocks) serialize deterministically to JSON-compatible
dictionaries — instructions through the Table I binary encoding, layers and
tiling plans field by field — and fingerprint themselves over that payload.
This is what makes a compiled program a first-class cacheable artifact of
the staged compile → simulate-blocks → compose pipeline: the evaluation
session persists programs on disk, reuses them across sweeps that only vary
simulation parameters, and keys per-block simulation results on the block
fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.dnn.layers import Layer, layer_from_dict, layer_to_dict
from repro.fingerprint import fingerprint_payload
from repro.isa.block import InstructionBlock
from repro.isa.instructions import LoopOrder
from repro.isa.tiling import TilingPlan

__all__ = ["CompiledBlock", "Program"]


@dataclass(frozen=True)
class CompiledBlock:
    """One instruction block plus the metadata the simulator consumes.

    Attributes
    ----------
    block:
        The validated instruction block.
    layer:
        The compute layer the block implements.
    tiling:
        The tiling plan (tile sizes and off-chip traffic) chosen for it.
    loop_order:
        The dataflow ordering picked by the loop-ordering optimization.
    fused_layers:
        Pooling/activation layers folded into this block by layer fusion;
        their intermediate tensors never travel to DRAM.
    """

    block: InstructionBlock
    layer: Layer
    tiling: TilingPlan
    loop_order: LoopOrder
    fused_layers: tuple[Layer, ...] = field(default_factory=tuple)

    @property
    def name(self) -> str:
        return self.block.name

    @property
    def is_fused(self) -> bool:
        return bool(self.fused_layers)

    # ------------------------------------------------------------------ #
    # Serialization and fingerprinting
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible payload carrying everything the simulator reads."""
        return {
            "block": self.block.to_dict(),
            "layer": layer_to_dict(self.layer),
            "tiling": self.tiling.to_dict(),
            "loop_order": self.loop_order.value,
            "fused_layers": [layer_to_dict(layer) for layer in self.fused_layers],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CompiledBlock":
        """Rebuild a compiled block from :meth:`to_dict` output."""
        return cls(
            block=InstructionBlock.from_dict(payload["block"]),
            layer=layer_from_dict(payload["layer"]),
            tiling=TilingPlan.from_dict(payload["tiling"]),
            loop_order=LoopOrder(payload["loop_order"]),
            fused_layers=tuple(layer_from_dict(item) for item in payload["fused_layers"]),
        )

    def fingerprint(self) -> str:
        """Stable content hash over the serialized block payload.

        Two blocks with identical instructions, layer, tiling and fusion
        metadata hash the same in any process; this digest (plus the
        simulation-affecting accelerator parameters) keys cached per-block
        simulation results.

        Memoized on the (frozen) instance: every block-level cache lookup
        re-derives this digest, and serializing the instruction image anew
        for each lookup was a measurable share of the warm path.  The memo
        is stored outside the dataclass fields, so equality, ``asdict`` and
        pickling are unaffected.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_payload(self.to_dict())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def layer_content_dict(self) -> dict[str, Any]:
        """The block's payload with every name stripped: pure layer content.

        Block and layer names carry no simulation-affecting information —
        they only label results — so this payload identifies *what the block
        computes*: the binary instruction image, the layer shape and
        bitwidths, the tiling plan and any fused follow-on layers.
        """

        def _nameless(layer: Layer) -> dict[str, Any]:
            return {k: v for k, v in layer_to_dict(layer).items() if k != "name"}

        return {
            "image": self.block.to_dict()["image"],
            "layer": _nameless(self.layer),
            "tiling": self.tiling.fingerprint(),
            "loop_order": self.loop_order.value,
            "fused_layers": [_nameless(layer) for layer in self.fused_layers],
        }

    def layer_fingerprint(self) -> str:
        """Name-free content hash: identical layers collapse across networks.

        Unlike :meth:`fingerprint`, this digest ignores the block and layer
        names, so the same (layer shape, bitwidths, tiling, instruction
        image) appearing in two different networks — the model-family case —
        hashes identically.  It is the basis of the content-addressed
        *layer* level of the result cache
        (:func:`repro.session.engine.layer_cache_key`); a simulated result
        found through it is renamed to the requesting block before use.

        Memoized like :meth:`fingerprint` (the layer-level fallback key is
        derived on every block lookup).
        """
        cached = self.__dict__.get("_layer_fingerprint")
        if cached is None:
            cached = fingerprint_payload(self.layer_content_dict())
            object.__setattr__(self, "_layer_fingerprint", cached)
        return cached


class Program:
    """The ordered list of compiled blocks for one network.

    A program is the unit the compile stage of the evaluation pipeline
    caches.  Its identity is purely content-based: :meth:`fingerprint`
    hashes the serialized payload of every block (instructions through the
    Table I binary encoding, plus layer, tiling, loop order and fusion
    metadata), so two compilations that emit identical code collapse onto
    one cache entry, and any compiler change that alters the emitted code
    automatically invalidates cached programs.  Note the *cache key* the
    session stores programs under is not this fingerprint but the
    structure-only :func:`~repro.session.engine.program_cache_key` over the
    compiler's inputs — the program fingerprint identifies what came out,
    the cache key what went in.
    """

    def __init__(self, network_name: str, blocks: Sequence[CompiledBlock] = ()) -> None:
        if not network_name:
            raise ValueError("program network name must be non-empty")
        self.network_name = network_name
        self._blocks: list[CompiledBlock] = list(blocks)
        self._fingerprint: str | None = None

    def append(self, block: CompiledBlock) -> "Program":
        self._blocks.append(block)
        self._fingerprint = None
        return self

    @property
    def blocks(self) -> list[CompiledBlock]:
        return list(self._blocks)

    def __iter__(self) -> Iterator[CompiledBlock]:
        return iter(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __getitem__(self, index: int) -> CompiledBlock:
        return self._blocks[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Program({self.network_name!r}, {len(self)} blocks)"

    # ------------------------------------------------------------------ #
    # Serialization and fingerprinting
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible payload of the whole program."""
        return {
            "network_name": self.network_name,
            "blocks": [compiled.to_dict() for compiled in self],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Program":
        """Rebuild a program from :meth:`to_dict` output.

        Instruction blocks re-validate their structural invariants on
        construction, so a corrupted payload raises instead of silently
        producing a malformed program.
        """
        return cls(
            payload["network_name"],
            [CompiledBlock.from_dict(item) for item in payload["blocks"]],
        )

    def fingerprint(self) -> str:
        """Stable content hash over the serialized program payload.

        Memoized until the next :meth:`append` (programs are effectively
        frozen once compiled; the cache re-fingerprints them on every
        workload-level lookup).
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_payload(self.to_dict())
        return self._fingerprint

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #
    def total_instructions(self) -> int:
        """Total instruction count over all blocks."""
        return sum(len(compiled.block) for compiled in self)

    def total_binary_bytes(self) -> int:
        """Total binary footprint of the compiled program."""
        return sum(compiled.block.stats().binary_bytes for compiled in self)

    def instruction_counts(self) -> dict[str, int]:
        """Per-block instruction counts, keyed by block name."""
        return {compiled.name: len(compiled.block) for compiled in self}

    def summary(self) -> str:
        """Human-readable per-block summary."""
        lines = [f"Program for {self.network_name}: {len(self)} blocks"]
        header = (
            f"{'block':28s} {'instrs':>7s} {'loops':>6s} {'in/wt bits':>10s} "
            f"{'order':>18s} {'fused':>6s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for compiled in self:
            stats = compiled.block.stats()
            lines.append(
                f"{compiled.name:28s} {stats.instruction_count:7d} {stats.loop_count:6d} "
                f"{compiled.block.input_bits:>4d}/{compiled.block.weight_bits:<5d} "
                f"{compiled.loop_order.value:>18s} {len(compiled.fused_layers):6d}"
            )
        return "\n".join(lines)
