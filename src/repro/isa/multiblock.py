"""Within-layer bitwidth variation via multiple instruction blocks.

Section IV-A notes: *"In this work, we did not explore within layer bitwidth
variations.  Nevertheless, the Bit Fusion ISA and this incarnation of its
microarchitecture can readily support it by using multiple instruction
blocks for an individual layer."*  This module implements that extension.

A layer is split along its output-neuron dimension into *regions*, each with
its own operand bitwidths (the situation quantization research motivates:
a small set of outlier channels needs wider operands than the rest).  Every
region compiles to its own instruction block whose ``setup`` instruction
re-fuses the BitBricks, so the fabric runs most of the layer at the narrow
precision and only the outlier region at the wide one.

The function returns ordinary :class:`~repro.isa.program.CompiledBlock`
objects, so the existing simulator executes mixed-precision layers without
modification; the ablation-style test quantifies the benefit against running
the whole layer at the widest precision.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import floor

from repro.core.config import BitFusionConfig
from repro.dnn.layers import ConvLayer, FCLayer, Layer, LSTMLayer, RNNLayer
from repro.isa.compiler import FusionCompiler
from repro.isa.program import CompiledBlock

__all__ = ["BitwidthRegion", "split_layer_by_regions", "compile_layer_with_regions"]


@dataclass(frozen=True)
class BitwidthRegion:
    """One precision region of a layer.

    Attributes
    ----------
    fraction:
        Fraction of the layer's output neurons (output channels for a
        convolution, output features for a fully-connected layer) executed
        at this region's precision.  Fractions across a layer's regions must
        sum to 1.
    input_bits, weight_bits:
        Operand bitwidths of the region.
    """

    fraction: float
    input_bits: int
    weight_bits: int

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"region fraction must be in (0, 1], got {self.fraction}")
        for label, bits in (("input_bits", self.input_bits), ("weight_bits", self.weight_bits)):
            if bits not in (1, 2, 4, 8, 16):
                raise ValueError(f"{label} must be one of (1, 2, 4, 8, 16), got {bits}")


def _output_extent(layer: Layer) -> int:
    """The output-neuron dimension the regions partition."""
    if isinstance(layer, ConvLayer):
        return layer.out_channels
    if isinstance(layer, FCLayer):
        return layer.out_features
    if isinstance(layer, (LSTMLayer, RNNLayer)):
        return layer.hidden_size
    raise TypeError(
        f"within-layer bitwidth variation is not defined for {type(layer).__name__}"
    )


def _with_output_extent(layer: Layer, extent: int, region: BitwidthRegion, index: int) -> Layer:
    """A copy of ``layer`` restricted to ``extent`` outputs at the region's bitwidths."""
    name = f"{layer.name}#region{index}"
    common = {
        "name": name,
        "input_bits": region.input_bits,
        "weight_bits": region.weight_bits,
    }
    if isinstance(layer, ConvLayer):
        return replace(layer, out_channels=extent, **common)
    if isinstance(layer, FCLayer):
        return replace(layer, out_features=extent, **common)
    return replace(layer, hidden_size=extent, **common)


def split_layer_by_regions(layer: Layer, regions: list[BitwidthRegion]) -> list[Layer]:
    """Split a layer into per-region sub-layers covering all of its outputs.

    The regions' fractions must sum to 1 (within floating-point tolerance);
    rounding residue goes to the last region so the output count is
    preserved exactly.
    """
    if not regions:
        raise ValueError("at least one bitwidth region is required")
    total_fraction = sum(region.fraction for region in regions)
    if abs(total_fraction - 1.0) > 1e-6:
        raise ValueError(f"region fractions must sum to 1, got {total_fraction}")

    extent = _output_extent(layer)
    sub_layers: list[Layer] = []
    assigned = 0
    for index, region in enumerate(regions):
        if index == len(regions) - 1:
            count = extent - assigned
        else:
            count = max(1, floor(extent * region.fraction))
            count = min(count, extent - assigned - (len(regions) - 1 - index))
        if count <= 0:
            raise ValueError(
                f"region {index} of layer {layer.name!r} receives no outputs; "
                f"use fewer regions or larger fractions (extent={extent})"
            )
        sub_layers.append(_with_output_extent(layer, count, region, index))
        assigned += count
    return sub_layers


def compile_layer_with_regions(
    layer: Layer,
    regions: list[BitwidthRegion],
    config: BitFusionConfig,
    batch_size: int | None = None,
) -> list[CompiledBlock]:
    """Compile one layer into multiple blocks, one per precision region.

    Each returned block carries its own ``setup`` instruction, so the fusion
    configuration changes between regions exactly as Section IV-A describes.
    """
    compiler = FusionCompiler(config)
    return [
        compiler.compile_compute_layer(sub_layer, batch_size=batch_size)
        for sub_layer in split_layer_by_regions(layer, regions)
    ]
