"""Binary encoding of Fusion-ISA instructions.

Table I describes the instruction word as a 5-bit opcode followed by an
operand specification whose interpretation depends on the opcode
(scratchpad selectors, operand bitwidths, loop identifiers and 16-bit
immediates).  This module packs every instruction into a single 32-bit word
and unpacks it again; the encoder/decoder pair is exercised by round-trip
tests over every instruction kind.

Word layout (most-significant bit first)::

    [31:27] opcode
    [26:..] opcode-specific fields (see the per-opcode packers below)
    [15:0]  16-bit immediate (iterations / stride / num-words / next block)

A compiled block's binary image is simply the concatenation of its
instruction words; :func:`encode_block` returns it as ``bytes`` so tests can
check the footprint claims of Section IV (tens of instructions — a few
hundred bytes — per DNN layer).
"""

from __future__ import annotations

import struct

from repro.isa.instructions import (
    BITWIDTH_FIELD_BITS,
    IMMEDIATE_BITS,
    LOOP_ID_BITS,
    OPCODE_BITS,
    SCRATCHPAD_BITS,
    BlockEnd,
    Compute,
    ComputeFn,
    GenAddr,
    Instruction,
    LdMem,
    Loop,
    Opcode,
    RdBuf,
    ScratchpadType,
    Setup,
    StMem,
    WrBuf,
)

__all__ = [
    "INSTRUCTION_BYTES",
    "encode_instruction",
    "decode_instruction",
    "encode_block",
    "decode_block",
    "encode_block_hex",
    "decode_block_hex",
]

#: Every Fusion-ISA instruction occupies one 32-bit word.
INSTRUCTION_BYTES = 4

_OPCODE_SHIFT = 32 - OPCODE_BITS  # 27
_IMMEDIATE_MASK = (1 << IMMEDIATE_BITS) - 1

# Field positions below the opcode.
_FIELD_A_SHIFT = _OPCODE_SHIFT - BITWIDTH_FIELD_BITS  # 22
_FIELD_B_SHIFT = _FIELD_A_SHIFT - BITWIDTH_FIELD_BITS  # 17
_SCRATCHPAD_SHIFT = _OPCODE_SHIFT - SCRATCHPAD_BITS  # 25
_LOOP_ID_SHIFT = _OPCODE_SHIFT - LOOP_ID_BITS  # 21
_LEVEL_SHIFT = _LOOP_ID_SHIFT - SCRATCHPAD_BITS  # 19
_GENADDR_LOOP_SHIFT = _SCRATCHPAD_SHIFT - LOOP_ID_BITS  # 19

_COMPUTE_FNS = tuple(ComputeFn)


def _mask(bits: int) -> int:
    return (1 << bits) - 1


def encode_instruction(instruction: Instruction) -> int:
    """Pack one instruction into its 32-bit word."""
    word = int(instruction.opcode) << _OPCODE_SHIFT

    if isinstance(instruction, Setup):
        word |= instruction.input_bits << _FIELD_A_SHIFT
        word |= instruction.weight_bits << _FIELD_B_SHIFT
    elif isinstance(instruction, BlockEnd):
        word |= instruction.next_block & _IMMEDIATE_MASK
    elif isinstance(instruction, Loop):
        word |= instruction.loop_id << _LOOP_ID_SHIFT
        word |= instruction.level << _LEVEL_SHIFT
        word |= instruction.iterations & _IMMEDIATE_MASK
    elif isinstance(instruction, GenAddr):
        word |= int(instruction.scratchpad) << _SCRATCHPAD_SHIFT
        word |= instruction.loop_id << _GENADDR_LOOP_SHIFT
        word |= instruction.stride & _IMMEDIATE_MASK
    elif isinstance(instruction, Compute):
        word |= _COMPUTE_FNS.index(instruction.fn) << _SCRATCHPAD_SHIFT
    elif isinstance(instruction, (LdMem, StMem)):
        word |= int(instruction.scratchpad) << _SCRATCHPAD_SHIFT
        word |= instruction.num_words & _IMMEDIATE_MASK
    elif isinstance(instruction, (RdBuf, WrBuf)):
        word |= int(instruction.scratchpad) << _SCRATCHPAD_SHIFT
    else:  # pragma: no cover - exhaustiveness guard
        raise TypeError(f"cannot encode unknown instruction type {type(instruction)}")
    return word


def decode_instruction(word: int) -> Instruction:
    """Unpack a 32-bit word back into its instruction dataclass."""
    if word < 0 or word >= (1 << 32):
        raise ValueError(f"instruction word {word:#x} is not a 32-bit value")
    opcode = Opcode((word >> _OPCODE_SHIFT) & _mask(OPCODE_BITS))
    immediate = word & _IMMEDIATE_MASK

    if opcode is Opcode.SETUP:
        return Setup(
            input_bits=(word >> _FIELD_A_SHIFT) & _mask(BITWIDTH_FIELD_BITS),
            weight_bits=(word >> _FIELD_B_SHIFT) & _mask(BITWIDTH_FIELD_BITS),
        )
    if opcode is Opcode.BLOCK_END:
        return BlockEnd(next_block=immediate)
    if opcode is Opcode.LOOP:
        return Loop(
            loop_id=(word >> _LOOP_ID_SHIFT) & _mask(LOOP_ID_BITS),
            level=(word >> _LEVEL_SHIFT) & _mask(SCRATCHPAD_BITS),
            iterations=immediate,
        )
    if opcode is Opcode.GEN_ADDR:
        return GenAddr(
            scratchpad=ScratchpadType((word >> _SCRATCHPAD_SHIFT) & _mask(SCRATCHPAD_BITS)),
            loop_id=(word >> _GENADDR_LOOP_SHIFT) & _mask(LOOP_ID_BITS),
            stride=immediate,
        )
    if opcode is Opcode.COMPUTE:
        return Compute(fn=_COMPUTE_FNS[(word >> _SCRATCHPAD_SHIFT) & _mask(SCRATCHPAD_BITS)])
    if opcode is Opcode.LD_MEM:
        return LdMem(
            scratchpad=ScratchpadType((word >> _SCRATCHPAD_SHIFT) & _mask(SCRATCHPAD_BITS)),
            num_words=immediate,
        )
    if opcode is Opcode.ST_MEM:
        return StMem(
            scratchpad=ScratchpadType((word >> _SCRATCHPAD_SHIFT) & _mask(SCRATCHPAD_BITS)),
            num_words=immediate,
        )
    if opcode is Opcode.RD_BUF:
        return RdBuf(
            scratchpad=ScratchpadType((word >> _SCRATCHPAD_SHIFT) & _mask(SCRATCHPAD_BITS))
        )
    if opcode is Opcode.WR_BUF:
        return WrBuf(
            scratchpad=ScratchpadType((word >> _SCRATCHPAD_SHIFT) & _mask(SCRATCHPAD_BITS))
        )
    raise ValueError(f"unknown opcode {opcode}")  # pragma: no cover


def encode_block(instructions: list[Instruction]) -> bytes:
    """Encode a sequence of instructions into its binary image."""
    return b"".join(
        struct.pack(">I", encode_instruction(instruction)) for instruction in instructions
    )


def encode_block_hex(instructions: list[Instruction]) -> str:
    """Binary image of a block as a lowercase hex string.

    The hex form is the JSON-friendly face of :func:`encode_block`; it is
    what serialized :class:`~repro.isa.program.Program` artifacts store, so
    an instruction sequence survives a disk round trip bit-for-bit.
    """
    return encode_block(instructions).hex()


def decode_block_hex(image_hex: str) -> list[Instruction]:
    """Decode a hex image produced by :func:`encode_block_hex`."""
    return decode_block(bytes.fromhex(image_hex))


def decode_block(image: bytes) -> list[Instruction]:
    """Decode a binary image produced by :func:`encode_block`."""
    if len(image) % INSTRUCTION_BYTES:
        raise ValueError(
            f"binary image length {len(image)} is not a multiple of {INSTRUCTION_BYTES}"
        )
    words = struct.unpack(f">{len(image) // INSTRUCTION_BYTES}I", image)
    return [decode_instruction(word) for word in words]
