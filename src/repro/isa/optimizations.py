"""Compiler code optimizations for the Fusion-ISA (Section IV-B).

The paper describes three optimizations the compiler applies when lowering
DNN layers to instruction blocks:

* **Loop ordering** — choose between output-, weight- and input-stationary
  dataflows to minimize off-chip (and on-chip) accesses for each layer.
* **Loop tiling** — partition the loops so each tile's data fits in the
  scratchpads (implemented in :mod:`repro.isa.tiling`).
* **Layer fusion** — when consecutive layers use mutually exclusive on-chip
  resources (the systolic array for convolution/FC, the per-column pooling
  and activation units for pooling/activation), merge them into one block so
  the intermediate tensor never travels to DRAM.

These passes are pure functions over layers and tiling plans so they can be
tested in isolation and ablated by the benchmark harness (the ablation
benches disable them one at a time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig
from repro.dnn.layers import ActivationLayer, Layer, PoolLayer
from repro.isa.instructions import LoopOrder
from repro.isa.tiling import (
    GemmWorkload,
    TilingPlan,
    search_tiling,
    search_tiling_scalar,
)

__all__ = [
    "choose_loop_order",
    "choose_loop_order_scalar",
    "FusionDecision",
    "fuse_layers",
]


def choose_loop_order(
    workload: GemmWorkload,
    config: BitFusionConfig,
    orders: tuple[LoopOrder, ...] = tuple(LoopOrder),
) -> TilingPlan:
    """Pick the dataflow order (and its tiling) with the least off-chip traffic.

    This reproduces the paper's loop-ordering optimization: the compiler
    "switches between Input-stationary, Output-stationary and
    Weight-stationary to minimize off-chip and on-chip accesses".  The
    candidate grid — every (tile_m, tile_n) pair for every order — is scored
    in one vectorized pass (:func:`~repro.isa.tiling.search_tiling`); ties
    between orders break towards the earliest order in ``orders``, exactly
    as the scalar reference :func:`choose_loop_order_scalar` does.
    """
    return search_tiling(workload, config, orders)


def choose_loop_order_scalar(
    workload: GemmWorkload,
    config: BitFusionConfig,
    orders: tuple[LoopOrder, ...] = tuple(LoopOrder),
) -> TilingPlan:
    """Reference implementation of :func:`choose_loop_order` (pure Python).

    Kept as the oracle the vectorized search is tested against — the two
    must return identical plans on every input — and used by the compiler's
    ``vectorized_search=False`` mode (the perf suite's baseline measurement).
    """
    return search_tiling_scalar(workload, config, orders)


@dataclass(frozen=True)
class FusionDecision:
    """Grouping of a network's layers into fusable execution groups.

    Each group starts with a compute (GEMM) layer and may absorb the
    pooling/activation layers that immediately follow it.  Layers that
    cannot be fused (e.g. a pooling layer with no preceding compute layer)
    form their own single-layer group.
    """

    groups: tuple[tuple[Layer, ...], ...]

    @property
    def fused_layer_count(self) -> int:
        """Number of layers absorbed into a preceding compute layer's block."""
        return sum(len(group) - 1 for group in self.groups if len(group) > 1)


def _is_fusable_follower(layer: Layer) -> bool:
    """Whether a layer can ride along in the preceding compute layer's block.

    Pooling and activation execute on the per-column units of the systolic
    array (Figure 3), which are idle while the array performs the preceding
    layer's GEMM — exactly the "mutually exclusive on-chip resources"
    condition of Section IV-B.
    """
    return isinstance(layer, (PoolLayer, ActivationLayer))


def fuse_layers(layers: list[Layer], enable: bool = True) -> FusionDecision:
    """Group layers for layer fusion.

    With ``enable=False`` every layer forms its own group, which is the
    configuration the ablation benchmarks use to quantify the benefit of
    fusion.
    """
    groups: list[tuple[Layer, ...]] = []
    current: list[Layer] = []
    for layer in layers:
        if enable and current and current[0].has_gemm() and _is_fusable_follower(layer):
            current.append(layer)
            continue
        if current:
            groups.append(tuple(current))
        current = [layer]
    if current:
        groups.append(tuple(current))
    return FusionDecision(groups=tuple(groups))
