"""Instruction blocks: the unit of execution of the Fusion-ISA.

A block implements one DNN layer (or one group of fused layers).  It starts
with a ``setup`` instruction that fixes the fusion configuration, contains
the loop / address-generation / memory / compute instructions that express
the layer's walk, and ends with ``block-end``.  Instructions in a block are
fetched and decoded once, then iterated according to the loop semantics —
this is how the ISA amortizes the von Neumann overhead (Section IV-A).

:class:`InstructionBlock` validates the structural invariants (exactly one
``setup`` at the start, exactly one ``block-end`` at the end, unique loop
identifiers, address generators referencing declared loops) and exposes the
statistics the paper reports (instruction counts per block — 30 to 86 for
the evaluated layers — and binary footprint).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    decode_block_hex,
    encode_block,
    encode_block_hex,
)
from repro.isa.instructions import (
    BlockEnd,
    Compute,
    GenAddr,
    Instruction,
    LdMem,
    Loop,
    Opcode,
    RdBuf,
    Setup,
    StMem,
    WrBuf,
)

__all__ = ["BlockStats", "InstructionBlock"]


@dataclass(frozen=True)
class BlockStats:
    """Summary statistics of one instruction block.

    Attributes
    ----------
    instruction_count:
        Total instructions in the block, including ``setup``/``block-end``.
    counts_by_opcode:
        Mapping from mnemonic to the number of instructions with that opcode.
    loop_count, memory_instruction_count, buffer_instruction_count:
        Convenience totals used by the ISA-statistics experiment.
    binary_bytes:
        Size of the encoded block image.
    """

    instruction_count: int
    counts_by_opcode: dict[str, int]
    loop_count: int
    memory_instruction_count: int
    buffer_instruction_count: int
    binary_bytes: int


class InstructionBlock:
    """A validated Fusion-ISA instruction block for one layer.

    Parameters
    ----------
    name:
        Identifier of the layer (or fused layer group) the block implements.
    instructions:
        The full instruction sequence, including ``setup`` and ``block-end``.
    """

    def __init__(self, name: str, instructions: Sequence[Instruction]) -> None:
        if not name:
            raise ValueError("instruction block name must be non-empty")
        self.name = name
        self._instructions = tuple(instructions)
        self._validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        instructions = self._instructions
        if len(instructions) < 2:
            raise ValueError(
                f"block {self.name!r} must contain at least setup and block-end"
            )
        if not isinstance(instructions[0], Setup):
            raise ValueError(f"block {self.name!r} must begin with a setup instruction")
        if not isinstance(instructions[-1], BlockEnd):
            raise ValueError(f"block {self.name!r} must end with a block-end instruction")
        body = instructions[1:-1]
        if any(isinstance(instr, (Setup, BlockEnd)) for instr in body):
            raise ValueError(
                f"block {self.name!r} contains nested setup/block-end instructions"
            )

        declared_loops: set[int] = set()
        for instr in body:
            if isinstance(instr, Loop):
                if instr.loop_id in declared_loops:
                    raise ValueError(
                        f"block {self.name!r} declares loop id {instr.loop_id} twice"
                    )
                declared_loops.add(instr.loop_id)
            elif isinstance(instr, GenAddr) and instr.loop_id not in declared_loops:
                raise ValueError(
                    f"block {self.name!r} has a gen-addr referencing undeclared loop "
                    f"id {instr.loop_id}"
                )

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return self._instructions

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstructionBlock({self.name!r}, {len(self)} instructions)"

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def setup(self) -> Setup:
        """The block's ``setup`` instruction (fusion configuration)."""
        setup = self._instructions[0]
        assert isinstance(setup, Setup)
        return setup

    @property
    def block_end(self) -> BlockEnd:
        """The block's terminating ``block-end`` instruction."""
        end = self._instructions[-1]
        assert isinstance(end, BlockEnd)
        return end

    @property
    def input_bits(self) -> int:
        return self.setup.input_bits

    @property
    def weight_bits(self) -> int:
        return self.setup.weight_bits

    def loops(self) -> list[Loop]:
        """Loop instructions in declaration order."""
        return [instr for instr in self if isinstance(instr, Loop)]

    def loops_at_level(self, level: int) -> list[Loop]:
        """Loop instructions declared at the given nesting level."""
        return [loop for loop in self.loops() if loop.level == level]

    def address_generators(self) -> list[GenAddr]:
        return [instr for instr in self if isinstance(instr, GenAddr)]

    def memory_instructions(self) -> list[Instruction]:
        """The ``ld-mem``/``st-mem`` instructions of the block."""
        return [instr for instr in self if isinstance(instr, (LdMem, StMem))]

    def buffer_instructions(self) -> list[Instruction]:
        """The ``rd-buf``/``wr-buf`` instructions of the block."""
        return [instr for instr in self if isinstance(instr, (RdBuf, WrBuf))]

    def compute_instructions(self) -> list[Compute]:
        return [instr for instr in self if isinstance(instr, Compute)]

    # ------------------------------------------------------------------ #
    # Statistics and encoding
    # ------------------------------------------------------------------ #
    def encode(self) -> bytes:
        """Binary image of the block."""
        return encode_block(list(self._instructions))

    def to_dict(self) -> dict[str, str]:
        """JSON-compatible payload: the block name plus its hex binary image.

        The instruction encoder/decoder pair round-trips every instruction
        kind exactly (see :mod:`repro.isa.encoding`), so rebuilding through
        :meth:`from_dict` yields an equal instruction sequence.
        """
        return {"name": self.name, "image": encode_block_hex(list(self._instructions))}

    @classmethod
    def from_dict(cls, payload: dict[str, str]) -> "InstructionBlock":
        """Rebuild (and re-validate) a block from :meth:`to_dict` output."""
        return cls(payload["name"], decode_block_hex(payload["image"]))

    def stats(self) -> BlockStats:
        """Per-block statistics (instruction counts, binary footprint)."""
        counts = Counter(instr.mnemonic for instr in self)
        return BlockStats(
            instruction_count=len(self),
            counts_by_opcode=dict(counts),
            loop_count=len(self.loops()),
            memory_instruction_count=len(self.memory_instructions()),
            buffer_instruction_count=len(self.buffer_instructions()),
            binary_bytes=len(self) * INSTRUCTION_BYTES,
        )
