"""NumPy integer reference implementations of DNN layer arithmetic.

The Bit Fusion fabric executes layers as integer GEMMs; these functions are
the *golden reference* the fusion datapath is checked against.  They are
also used by the examples to run small quantized networks end to end
(functional inference), demonstrating that the accelerator's bit-level
decomposition is numerically lossless.

All functions operate on ``int64`` arrays so intermediate accumulations can
never overflow a NumPy dtype; callers that care about the 32-bit partial-sum
limit of the hardware (Figure 4) use :func:`check_accumulator_range`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "conv2d",
    "im2col",
    "conv2d_gemm",
    "fully_connected",
    "max_pool2d",
    "avg_pool2d",
    "relu",
    "lstm_cell",
    "rnn_cell",
    "check_accumulator_range",
    "ACCUMULATOR_BITS",
]

#: Width of the hardware partial-sum accumulator (Figure 4).
ACCUMULATOR_BITS = 32


def check_accumulator_range(values: np.ndarray, bits: int = ACCUMULATOR_BITS) -> None:
    """Raise :class:`OverflowError` if any value exceeds the accumulator range."""
    values = np.asarray(values)
    if values.size == 0:
        return
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    vmin, vmax = int(values.min()), int(values.max())
    if vmin < lo or vmax > hi:
        raise OverflowError(
            f"values in [{vmin}, {vmax}] exceed the {bits}-bit accumulator range"
        )


def _as_int64(values: np.ndarray, name: str, ndim: int) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got shape {arr.shape}")
    return arr


# --------------------------------------------------------------------------- #
# Convolution
# --------------------------------------------------------------------------- #
def im2col(
    inputs: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold a ``(C, H, W)`` input into im2col columns.

    Returns an array of shape ``(C * kernel * kernel, out_h * out_w)`` — the
    matrix the convolution GEMM multiplies against the flattened kernel
    matrix.  This mirrors exactly how the Fusion-ISA's ``gen-addr``
    instructions walk the input tensor.
    """
    inputs = _as_int64(inputs, "inputs", 3)
    channels, height, width = inputs.shape
    if kernel <= 0 or stride <= 0:
        raise ValueError(f"kernel and stride must be positive, got {kernel}, {stride}")
    if padding < 0:
        raise ValueError(f"padding must be non-negative, got {padding}")

    padded = np.pad(
        inputs, ((0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution produces empty output ({out_h}x{out_w}) for "
            f"input {height}x{width}, kernel {kernel}, stride {stride}, padding {padding}"
        )

    columns = np.zeros((channels * kernel * kernel, out_h * out_w), dtype=np.int64)
    col = 0
    for oy in range(out_h):
        for ox in range(out_w):
            patch = padded[
                :, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel
            ]
            columns[:, col] = patch.reshape(-1)
            col += 1
    return columns


def conv2d(
    inputs: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct integer 2-D convolution.

    ``inputs`` is ``(C_in, H, W)``; ``weights`` is ``(C_out, C_in, K, K)``.
    Returns ``(C_out, out_h, out_w)``.
    """
    inputs = _as_int64(inputs, "inputs", 3)
    weights = _as_int64(weights, "weights", 4)
    out_channels, in_channels, kernel, kernel_w = weights.shape
    if kernel != kernel_w:
        raise ValueError(f"only square kernels are supported, got {kernel}x{kernel_w}")
    if inputs.shape[0] != in_channels:
        raise ValueError(
            f"channel mismatch: inputs have {inputs.shape[0]} channels, "
            f"weights expect {in_channels}"
        )
    columns = im2col(inputs, kernel, stride=stride, padding=padding)
    flat_weights = weights.reshape(out_channels, -1)
    out = flat_weights @ columns
    out_h = (inputs.shape[1] + 2 * padding - kernel) // stride + 1
    out_w = (inputs.shape[2] + 2 * padding - kernel) // stride + 1
    return out.reshape(out_channels, out_h, out_w)


def conv2d_gemm(
    inputs: np.ndarray,
    weights: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Return the ``(weight_matrix, input_columns)`` GEMM pair of a convolution.

    ``weight_matrix @ input_columns`` equals the flattened convolution
    output.  The accelerator model consumes exactly this lowering.
    """
    inputs = _as_int64(inputs, "inputs", 3)
    weights = _as_int64(weights, "weights", 4)
    kernel = weights.shape[2]
    columns = im2col(inputs, kernel, stride=stride, padding=padding)
    return weights.reshape(weights.shape[0], -1), columns


# --------------------------------------------------------------------------- #
# Fully connected
# --------------------------------------------------------------------------- #
def fully_connected(
    inputs: np.ndarray, weights: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Integer inner-product layer: ``weights @ inputs (+ bias)``.

    ``weights`` is ``(out_features, in_features)``; ``inputs`` is either a
    vector ``(in_features,)`` or a batch ``(in_features, B)``.
    """
    weights = _as_int64(weights, "weights", 2)
    inputs = np.asarray(inputs, dtype=np.int64)
    if inputs.ndim not in (1, 2):
        raise ValueError(f"inputs must be 1-D or 2-D, got shape {inputs.shape}")
    if inputs.shape[0] != weights.shape[1]:
        raise ValueError(
            f"dimension mismatch: weights {weights.shape} @ inputs {inputs.shape}"
        )
    out = weights @ inputs
    if bias is not None:
        bias = np.asarray(bias, dtype=np.int64)
        if bias.shape[0] != weights.shape[0]:
            raise ValueError(
                f"bias length {bias.shape[0]} does not match output features {weights.shape[0]}"
            )
        out = out + (bias if out.ndim == 1 else bias[:, None])
    return out


# --------------------------------------------------------------------------- #
# Pooling and activation
# --------------------------------------------------------------------------- #
def _pool2d(
    inputs: np.ndarray, kernel: int, stride: int, reduce_fn
) -> np.ndarray:
    inputs = _as_int64(inputs, "inputs", 3)
    channels, height, width = inputs.shape
    if kernel <= 0 or stride <= 0:
        raise ValueError(f"kernel and stride must be positive, got {kernel}, {stride}")
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"pooling produces empty output for input {height}x{width}, "
            f"kernel {kernel}, stride {stride}"
        )
    out = np.zeros((channels, out_h, out_w), dtype=np.int64)
    for oy in range(out_h):
        for ox in range(out_w):
            window = inputs[
                :, oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel
            ]
            out[:, oy, ox] = reduce_fn(window.reshape(channels, -1))
    return out


def max_pool2d(inputs: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Max pooling over a ``(C, H, W)`` tensor, matching the pooling unit."""
    stride = kernel if stride is None else stride
    return _pool2d(inputs, kernel, stride, lambda window: window.max(axis=1))


def avg_pool2d(inputs: np.ndarray, kernel: int, stride: int | None = None) -> np.ndarray:
    """Average pooling (integer floor division, as the hardware would shift)."""
    stride = kernel if stride is None else stride
    return _pool2d(
        inputs,
        kernel,
        stride,
        lambda window: window.sum(axis=1) // (window.shape[1]),
    )


def relu(values: np.ndarray) -> np.ndarray:
    """Rectified linear unit, as implemented by the per-column activation unit."""
    return np.maximum(np.asarray(values, dtype=np.int64), 0)


# --------------------------------------------------------------------------- #
# Recurrent cells
# --------------------------------------------------------------------------- #
def _sigmoid(values: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-values))


def lstm_cell(
    inputs: np.ndarray,
    hidden: np.ndarray,
    cell: np.ndarray,
    weights: np.ndarray,
    scale: float = 1.0 / 128.0,
) -> tuple[np.ndarray, np.ndarray]:
    """One LSTM step with integer gate GEMMs and float nonlinearities.

    The accelerator computes the four gate pre-activations as one integer
    GEMM (``weights`` is ``(4 * hidden, input + hidden)``); the host applies
    the sigmoid/tanh nonlinearities after dequantizing with ``scale``.
    Returns ``(new_hidden, new_cell)`` as float arrays.
    """
    inputs = np.asarray(inputs, dtype=np.int64)
    hidden = np.asarray(hidden, dtype=np.int64)
    cell = np.asarray(cell, dtype=np.float64)
    weights = _as_int64(weights, "weights", 2)
    hidden_size = hidden.shape[0]
    if weights.shape != (4 * hidden_size, inputs.shape[0] + hidden_size):
        raise ValueError(
            f"LSTM weights must be (4*hidden, input+hidden) = "
            f"({4 * hidden_size}, {inputs.shape[0] + hidden_size}), got {weights.shape}"
        )
    concat = np.concatenate([inputs, hidden])
    gates = (weights @ concat).astype(np.float64) * scale
    i_gate, f_gate, g_gate, o_gate = np.split(gates, 4)
    new_cell = _sigmoid(f_gate) * cell + _sigmoid(i_gate) * np.tanh(g_gate)
    new_hidden = _sigmoid(o_gate) * np.tanh(new_cell)
    return new_hidden, new_cell


def rnn_cell(
    inputs: np.ndarray,
    hidden: np.ndarray,
    weights: np.ndarray,
    scale: float = 1.0 / 128.0,
) -> np.ndarray:
    """One vanilla (Elman) RNN step: ``tanh(W @ [x; h])`` with integer GEMM."""
    inputs = np.asarray(inputs, dtype=np.int64)
    hidden = np.asarray(hidden, dtype=np.int64)
    weights = _as_int64(weights, "weights", 2)
    hidden_size = hidden.shape[0]
    if weights.shape != (hidden_size, inputs.shape[0] + hidden_size):
        raise ValueError(
            f"RNN weights must be (hidden, input+hidden) = "
            f"({hidden_size}, {inputs.shape[0] + hidden_size}), got {weights.shape}"
        )
    concat = np.concatenate([inputs, hidden])
    pre_activation = (weights @ concat).astype(np.float64) * scale
    return np.tanh(pre_activation)
