"""Linear quantization utilities.

Bit Fusion relies on existing quantized-DNN training methods (DoReFa,
ternary weight networks, WRPN, QNN) and accelerates their reduced-bitwidth
inference.  This module provides the small amount of quantization machinery
the reproduction needs:

* symmetric linear quantization / dequantization between floating point and
  ``n``-bit integers (used by examples that start from float tensors),
* :func:`minimal_bitwidth` — the smallest power-of-two encoded bitwidth that
  represents a given integer tensor losslessly, mirroring the accelerator's
  encoding/memory-access logic that stores values at the lowest required
  bitwidth (Section I, insight 2),
* :func:`clip_to_bitwidth` — saturating casts used when materializing
  synthetic layer data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizationSpec",
    "quantize_linear",
    "dequantize_linear",
    "minimal_bitwidth",
    "clip_to_bitwidth",
    "SUPPORTED_ENCODED_BITWIDTHS",
]

#: Encoded bitwidths the fabric and the memory encoding logic understand.
SUPPORTED_ENCODED_BITWIDTHS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class QuantizationSpec:
    """Symmetric linear quantization parameters.

    ``real = scale * integer`` with integers confined to the signed (or
    unsigned) range of ``bits``.
    """

    bits: int
    scale: float
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits not in SUPPORTED_ENCODED_BITWIDTHS:
            raise ValueError(
                f"bits must be one of {SUPPORTED_ENCODED_BITWIDTHS}, got {self.bits}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def qmin(self) -> int:
        if self.signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def qmax(self) -> int:
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    @staticmethod
    def from_tensor(values: np.ndarray, bits: int, signed: bool = True) -> "QuantizationSpec":
        """Choose a scale so the tensor's max magnitude maps to the integer max."""
        values = np.asarray(values, dtype=np.float64)
        max_abs = float(np.max(np.abs(values))) if values.size else 0.0
        if max_abs == 0.0:
            max_abs = 1.0
        qmax = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
        if qmax == 0:
            qmax = 1
        scale = max_abs / qmax
        if scale <= 0.0:
            # Guard against denormal inputs whose scale underflows to zero;
            # quantizing such tensors to all-zero integers is the right call.
            scale = 1.0 / qmax
        return QuantizationSpec(bits=bits, scale=scale, signed=signed)


def quantize_linear(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantize floating-point values to integers under ``spec`` (round-to-nearest)."""
    values = np.asarray(values, dtype=np.float64)
    q = np.rint(values / spec.scale)
    return np.clip(q, spec.qmin, spec.qmax).astype(np.int64)


def dequantize_linear(values: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Map integers back to the real domain."""
    return np.asarray(values, dtype=np.float64) * spec.scale


def minimal_bitwidth(values: np.ndarray, signed: bool = True) -> int:
    """Smallest supported encoded bitwidth that represents ``values`` exactly.

    This mirrors the accelerator's storage encoding: a tensor whose values
    all fit in 2 bits is stored, transferred and computed at 2 bits even if
    the layer nominally declared a wider type.
    """
    values = np.asarray(values)
    if values.size == 0:
        return SUPPORTED_ENCODED_BITWIDTHS[0]
    vmin = int(values.min())
    vmax = int(values.max())
    for bits in SUPPORTED_ENCODED_BITWIDTHS:
        if signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        if lo <= vmin and vmax <= hi:
            return bits
    raise ValueError(
        f"values in [{vmin}, {vmax}] exceed the widest supported bitwidth "
        f"({SUPPORTED_ENCODED_BITWIDTHS[-1]} bits)"
    )


def clip_to_bitwidth(values: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """Saturate ``values`` into the representable range of ``bits``."""
    if bits not in SUPPORTED_ENCODED_BITWIDTHS:
        raise ValueError(
            f"bits must be one of {SUPPORTED_ENCODED_BITWIDTHS}, got {bits}"
        )
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    return np.clip(np.asarray(values, dtype=np.int64), lo, hi)
