"""SVHN benchmark (QNN, binary 1-bit activations and weights).

The SVHN model is the half-width sibling of the binarized Cifar-10 network
(Hubara et al. [35]): channel widths 64-64-128-128-256-256 with two
1024-wide fully-connected layers, 1-bit activations/weights except the
8-bit entry convolution.  Table II lists it at 158 M multiply-adds and
~0.8 MB of weights.
"""

from __future__ import annotations

from repro.dnn.models._vgg_style import ConvStageSpec, build_vgg_style_network
from repro.dnn.network import Network

__all__ = ["build_svhn"]


def build_svhn() -> Network:
    """Build the binarized SVHN network (~158 M multiply-adds)."""
    return build_vgg_style_network(
        name="SVHN",
        stages=(
            ConvStageSpec(channels=64),
            ConvStageSpec(channels=128),
            ConvStageSpec(channels=256),
        ),
        fc_features=(1024, 1024),
        classes=10,
        input_bits=1,
        weight_bits=1,
        first_layer_bits=(8, 8),
    )
