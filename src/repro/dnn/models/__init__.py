"""The eight benchmark DNNs of the Bit Fusion evaluation (Table II).

Each model module builds a :class:`~repro.dnn.network.Network` whose layer
shapes and per-layer operand bitwidths follow the quantized models the paper
takes from the deep-learning literature (Section V-A, Figure 1):

=============  =====  ======================  ==================  ============
Benchmark      Type   Domain                  Dominant bitwidth   Quantization
=============  =====  ======================  ==================  ============
AlexNet        CNN    ImageNet classification 4-bit/1-bit         WRPN 2× wide
Cifar-10       CNN    object recognition      1-bit/1-bit         QNN
LSTM           RNN    language modelling      4-bit/4-bit         QNN
LeNet-5        CNN    character recognition   2-bit/2-bit         TWN ternary
ResNet-18      CNN    ImageNet classification 2-bit/2-bit         WRPN wide
RNN            RNN    language modelling      4-bit/4-bit         QNN
SVHN           CNN    character recognition   1-bit/1-bit         QNN
VGG-7          CNN    object recognition      2-bit/2-bit         TWN ternary
=============  =====  ======================  ==================  ============

Because no public quantized checkpoints ship with this reproduction, the
models carry *shapes and bitwidths only*; the simulator needs nothing else,
and functional tests materialize random tensors at the declared bitwidths.

``AlexNet`` and ``ResNet-18`` additionally have *regular* (non-widened)
variants used for the Eyeriss and GPU baselines, matching the paper's
methodology ("We use the regular AlexNet and ResNet-18 models for Eyeriss
and the GPU baselines, and use their 2× wide quantized models for Bit Fusion
and Stripes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dnn.models.alexnet import build_alexnet
from repro.dnn.models.cifar10 import build_cifar10
from repro.dnn.models.lenet5 import build_lenet5
from repro.dnn.models.lstm import build_lstm
from repro.dnn.models.resnet18 import build_resnet18
from repro.dnn.models.rnn import build_rnn
from repro.dnn.models.svhn import build_svhn
from repro.dnn.models.vgg7 import build_vgg7
from repro.dnn.network import Network

__all__ = [
    "BenchmarkInfo",
    "BENCHMARKS",
    "benchmark_names",
    "canonical_name",
    "load",
    "load_baseline_variant",
    "all_benchmarks",
    "build_alexnet",
    "build_cifar10",
    "build_lenet5",
    "build_lstm",
    "build_resnet18",
    "build_rnn",
    "build_svhn",
    "build_vgg7",
]


@dataclass(frozen=True)
class BenchmarkInfo:
    """Registry entry for one benchmark DNN.

    Attributes
    ----------
    name:
        Canonical benchmark name as used in the paper's figures.
    kind:
        ``"CNN"`` or ``"RNN"``.
    domain:
        Application domain (Table II).
    dataset:
        Dataset of the original model (Table II); informational only.
    build:
        Factory producing the quantized network evaluated on Bit Fusion.
    build_baseline:
        Factory producing the variant evaluated on Eyeriss / the GPUs.  For
        most benchmarks this is the same network; AlexNet and ResNet-18 use
        their regular (non-widened) topologies.
    """

    name: str
    kind: str
    domain: str
    dataset: str
    build: Callable[[], Network]
    build_baseline: Callable[[], Network]


BENCHMARKS: dict[str, BenchmarkInfo] = {
    "AlexNet": BenchmarkInfo(
        name="AlexNet",
        kind="CNN",
        domain="Image Classification",
        dataset="ImageNet",
        build=lambda: build_alexnet(wide=True),
        build_baseline=lambda: build_alexnet(wide=False),
    ),
    "Cifar-10": BenchmarkInfo(
        name="Cifar-10",
        kind="CNN",
        domain="Object Recognition",
        dataset="CIFAR-10",
        build=build_cifar10,
        build_baseline=build_cifar10,
    ),
    "LSTM": BenchmarkInfo(
        name="LSTM",
        kind="RNN",
        domain="Language Modeling",
        dataset="Penn TreeBank",
        build=build_lstm,
        build_baseline=build_lstm,
    ),
    "LeNet-5": BenchmarkInfo(
        name="LeNet-5",
        kind="CNN",
        domain="Optical Character Recognition",
        dataset="MNIST",
        build=build_lenet5,
        build_baseline=build_lenet5,
    ),
    "ResNet-18": BenchmarkInfo(
        name="ResNet-18",
        kind="CNN",
        domain="Image Classification",
        dataset="ImageNet",
        build=lambda: build_resnet18(wide=True),
        build_baseline=lambda: build_resnet18(wide=False),
    ),
    "RNN": BenchmarkInfo(
        name="RNN",
        kind="RNN",
        domain="Language Modeling",
        dataset="Penn TreeBank",
        build=build_rnn,
        build_baseline=build_rnn,
    ),
    "SVHN": BenchmarkInfo(
        name="SVHN",
        kind="CNN",
        domain="Optical Character Recognition",
        dataset="SVHN",
        build=build_svhn,
        build_baseline=build_svhn,
    ),
    "VGG-7": BenchmarkInfo(
        name="VGG-7",
        kind="CNN",
        domain="Object Recognition",
        dataset="CIFAR-10",
        build=build_vgg7,
        build_baseline=build_vgg7,
    ),
}


def benchmark_names() -> list[str]:
    """Canonical names of the eight benchmarks, in the paper's ordering."""
    return list(BENCHMARKS.keys())


def _lookup(name: str) -> BenchmarkInfo:
    if name in BENCHMARKS:
        return BENCHMARKS[name]
    # Accept case/punctuation-insensitive aliases such as "alexnet" or "cifar10".
    folded = name.replace("-", "").replace("_", "").lower()
    for info in BENCHMARKS.values():
        if info.name.replace("-", "").lower() == folded:
            return info
    raise KeyError(
        f"unknown benchmark {name!r}; available: {', '.join(benchmark_names())}"
    )


def canonical_name(name: str) -> str:
    """Resolve a benchmark name or alias to its canonical paper name.

    Accepts the same case/punctuation-insensitive aliases as :func:`load`
    (e.g. ``"alexnet"`` or ``"cifar10"``) and raises ``KeyError`` for
    unknown names.
    """
    return _lookup(name).name


def load(name: str) -> Network:
    """Build the quantized benchmark network evaluated on Bit Fusion."""
    return _lookup(name).build()


def load_baseline_variant(name: str) -> Network:
    """Build the model variant evaluated on Eyeriss and the GPUs.

    AlexNet and ResNet-18 return their regular (non-widened) topologies;
    every other benchmark returns the same network as :func:`load`.
    """
    return _lookup(name).build_baseline()


def all_benchmarks() -> dict[str, Network]:
    """Build every benchmark network, keyed by canonical name."""
    return {name: info.build() for name, info in BENCHMARKS.items()}
