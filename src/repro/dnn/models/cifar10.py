"""Cifar-10 benchmark (QNN, binary 1-bit activations and weights).

The quantized Cifar-10 model comes from Hubara et al.'s QNN work [35]: a
VGG-style network with channel widths 128-128-256-256-512-512 and two
1024-wide fully-connected layers, binarized to 1-bit activations and
weights everywhere except the 8-bit entry convolution.  Table II lists it at
617 M multiply-adds and ~3.3 MB of (2-bit-encoded) weights; Figure 1 shows
99% of its multiply-adds at 1-bit/1-bit.
"""

from __future__ import annotations

from repro.dnn.models._vgg_style import ConvStageSpec, build_vgg_style_network
from repro.dnn.network import Network

__all__ = ["build_cifar10"]


def build_cifar10() -> Network:
    """Build the binarized Cifar-10 network (~617 M multiply-adds)."""
    return build_vgg_style_network(
        name="Cifar-10",
        stages=(
            ConvStageSpec(channels=128),
            ConvStageSpec(channels=256),
            ConvStageSpec(channels=512),
        ),
        fc_features=(1024, 1024),
        classes=10,
        input_bits=1,
        weight_bits=1,
        first_layer_bits=(8, 8),
    )
