"""Shared builder for the VGG-style CIFAR/SVHN benchmark CNNs.

Three of the paper's benchmarks (Cifar-10, SVHN, VGG-7) share the same
shape: pairs of 3x3 convolutions separated by 2x2 max-pooling on a 32x32
input, followed by a small fully-connected classifier.  They differ only in
channel widths and operand bitwidths, so a single parameterized builder
keeps the three model modules declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.layers import ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network

__all__ = ["ConvStageSpec", "build_vgg_style_network"]


@dataclass(frozen=True)
class ConvStageSpec:
    """One conv-conv-pool stage of a VGG-style network.

    Attributes
    ----------
    channels:
        Output channels of both convolutions in the stage.
    pool:
        Whether a 2x2 max-pool follows the stage.
    """

    channels: int
    pool: bool = True


def build_vgg_style_network(
    name: str,
    stages: tuple[ConvStageSpec, ...],
    fc_features: tuple[int, ...],
    classes: int,
    input_bits: int,
    weight_bits: int,
    first_layer_bits: tuple[int, int] = (8, 8),
    image_size: int = 32,
    in_channels: int = 3,
) -> Network:
    """Assemble a VGG-style quantized network.

    The first convolution runs at ``first_layer_bits`` (the image enters at
    8 bits); every subsequent compute layer runs at
    ``input_bits``/``weight_bits``, matching the quantized models the paper
    uses (QNN for Cifar-10/SVHN, ternary weight networks for VGG-7).
    """
    if not stages:
        raise ValueError("a VGG-style network needs at least one convolution stage")
    net = Network(name)
    size = image_size
    channels = in_channels
    first = True
    for stage_index, stage in enumerate(stages, start=1):
        for conv_index in (1, 2):
            in_bits, wt_bits = (first_layer_bits if first else (input_bits, weight_bits))
            net.add(
                ConvLayer(
                    name=f"conv{stage_index}_{conv_index}",
                    in_channels=channels,
                    out_channels=stage.channels,
                    in_height=size,
                    in_width=size,
                    kernel=3,
                    stride=1,
                    padding=1,
                    input_bits=in_bits,
                    weight_bits=wt_bits,
                    output_bits=input_bits,
                )
            )
            channels = stage.channels
            first = False
        if stage.pool:
            net.add(
                PoolLayer(
                    name=f"pool{stage_index}",
                    channels=channels,
                    in_height=size,
                    in_width=size,
                    kernel=2,
                    stride=2,
                    input_bits=input_bits,
                    weight_bits=weight_bits,
                    output_bits=input_bits,
                )
            )
            size //= 2

    features = channels * size * size
    for fc_index, width in enumerate(fc_features, start=1):
        net.add(
            FCLayer(
                name=f"fc{fc_index}",
                in_features=features,
                out_features=width,
                input_bits=input_bits,
                weight_bits=weight_bits,
                output_bits=input_bits,
            )
        )
        features = width
    net.add(
        FCLayer(
            name="classifier",
            in_features=features,
            out_features=classes,
            input_bits=input_bits,
            weight_bits=weight_bits,
            output_bits=8,
        )
    )
    return net
