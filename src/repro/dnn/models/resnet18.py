"""ResNet-18 benchmark (WRPN wide reduced-precision, 2-bit operands).

The paper evaluates the WRPN wide variant of ResNet-18 [36]: channels are
widened so that reduced-precision operands preserve full-precision accuracy,
and — per Figure 1 — all of its multiply-adds execute at 2-bit/2-bit on Bit
Fusion.  The regular (width-1) model is used for the Eyeriss and GPU
baselines.

Table II lists the widened model at 4,269 M multiply-adds; a uniform width
multiplier of 1.5 over the standard ResNet-18 topology reproduces that
workload size (~4.1 G multiply-adds), so the widened builder uses 1.5x.
(The WRPN paper's 2x multiplier would give ~7.3 G multiply-adds; we pick the
multiplier that matches the published workload.)
"""

from __future__ import annotations

from repro.dnn.layers import ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network

__all__ = ["build_resnet18"]

#: Residual stages of ResNet-18: (base channels, blocks, first-block stride).
_STAGES = ((64, 2, 1), (128, 2, 2), (256, 2, 2), (512, 2, 2))


def _scaled(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))


def build_resnet18(wide: bool = True) -> Network:
    """Build ResNet-18.

    Parameters
    ----------
    wide:
        ``True`` builds the widened 2-bit model used on Bit Fusion and
        Stripes (width multiplier 1.5, ~4.1 G multiply-adds); ``False``
        builds the regular 8-bit-declared model used for Eyeriss and the
        GPUs (~1.8 G multiply-adds).
    """
    multiplier = 1.5 if wide else 1.0
    bits = 2 if wide else 8
    suffix = "wide" if wide else "regular"
    net = Network(f"ResNet-18-{suffix}")

    stem_channels = _scaled(64, multiplier)
    net.add(
        ConvLayer(
            name="conv1",
            in_channels=3,
            out_channels=stem_channels,
            in_height=224,
            in_width=224,
            kernel=7,
            stride=2,
            padding=3,
            input_bits=8,
            weight_bits=8,
            output_bits=bits,
        )
    )
    net.add(
        PoolLayer(
            name="pool1",
            channels=stem_channels,
            in_height=112,
            in_width=112,
            kernel=2,
            stride=2,
            input_bits=bits,
            weight_bits=bits,
            output_bits=bits,
        )
    )

    in_channels = stem_channels
    size = 56
    for stage_index, (base_channels, blocks, first_stride) in enumerate(_STAGES, start=1):
        out_channels = _scaled(base_channels, multiplier)
        for block_index in range(1, blocks + 1):
            stride = first_stride if block_index == 1 else 1
            prefix = f"layer{stage_index}_block{block_index}"
            net.add(
                ConvLayer(
                    name=f"{prefix}_conv1",
                    in_channels=in_channels,
                    out_channels=out_channels,
                    in_height=size,
                    in_width=size,
                    kernel=3,
                    stride=stride,
                    padding=1,
                    input_bits=bits,
                    weight_bits=bits,
                    output_bits=bits,
                )
            )
            if stride != 1:
                size //= stride
            net.add(
                ConvLayer(
                    name=f"{prefix}_conv2",
                    in_channels=out_channels,
                    out_channels=out_channels,
                    in_height=size,
                    in_width=size,
                    kernel=3,
                    stride=1,
                    padding=1,
                    input_bits=bits,
                    weight_bits=bits,
                    output_bits=bits,
                )
            )
            if block_index == 1 and (stride != 1 or in_channels != out_channels):
                # Projection shortcut on the residual path.
                net.add(
                    ConvLayer(
                        name=f"{prefix}_downsample",
                        in_channels=in_channels,
                        out_channels=out_channels,
                        in_height=size * stride,
                        in_width=size * stride,
                        kernel=1,
                        stride=stride,
                        padding=0,
                        input_bits=bits,
                        weight_bits=bits,
                        output_bits=bits,
                    )
                )
            in_channels = out_channels

    net.add(
        PoolLayer(
            name="global_pool",
            channels=in_channels,
            in_height=7,
            in_width=7,
            kernel=7,
            stride=7,
            mode="avg",
            input_bits=bits,
            weight_bits=bits,
            output_bits=bits,
        )
    )
    net.add(
        FCLayer(
            name="classifier",
            in_features=in_channels,
            out_features=1000,
            input_bits=8,
            weight_bits=8,
            output_bits=8,
        )
    )
    return net
