"""LSTM benchmark (QNN, 4-bit activations and weights, Penn TreeBank).

The LSTM language model follows the quantized recurrent networks of Hubara
et al. [35]: a single LSTM layer followed by a softmax projection onto the
10,000-word Penn TreeBank vocabulary, with 4-bit activations and weights
throughout (Figure 1).  A hidden size of 800 puts one inference step at
~13 M multiply-adds with ~6.5 MB of 4-bit-encoded weights, matching
Table II's 13 Mops / 6.2 MB.
"""

from __future__ import annotations

from repro.dnn.layers import FCLayer, LSTMLayer
from repro.dnn.network import Network

__all__ = ["build_lstm", "HIDDEN_SIZE", "VOCABULARY"]

#: Hidden (and embedding) width of the benchmark LSTM.
HIDDEN_SIZE = 800

#: Penn TreeBank vocabulary size for the softmax projection.
VOCABULARY = 10_000


def build_lstm() -> Network:
    """Build the quantized Penn TreeBank LSTM (~13 M multiply-adds per step)."""
    net = Network("LSTM")
    net.add(
        LSTMLayer(
            name="lstm1",
            input_size=HIDDEN_SIZE,
            hidden_size=HIDDEN_SIZE,
            timesteps=1,
            input_bits=4,
            weight_bits=4,
            output_bits=4,
        )
    )
    net.add(
        FCLayer(
            name="softmax_projection",
            in_features=HIDDEN_SIZE,
            out_features=VOCABULARY,
            input_bits=4,
            weight_bits=4,
            output_bits=8,
        )
    )
    return net
