"""LeNet-5 benchmark (ternary weight network, 2-bit activations and weights).

A LeNet-5-style MNIST network with ternary weights (the paper cites the
ternary-weight-network models of Li et al. [34]).  The variant used here —
32 and 64 feature maps in the two 5x5 convolution stages and a 640-wide
fully-connected layer — sits at ~13 M multiply-adds and ~0.5 MB of
2-bit-encoded weights, matching Table II's 16 Mops / 0.5 MB scale.  Every
compute layer runs at 2-bit/2-bit (Figure 1).
"""

from __future__ import annotations

from repro.dnn.layers import ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network

__all__ = ["build_lenet5"]


def build_lenet5() -> Network:
    """Build the ternary LeNet-5 network (~13 M multiply-adds)."""
    net = Network("LeNet-5")
    net.add(
        ConvLayer(
            name="conv1",
            in_channels=1,
            out_channels=32,
            in_height=28,
            in_width=28,
            kernel=5,
            stride=1,
            padding=2,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(
        PoolLayer(
            name="pool1",
            channels=32,
            in_height=28,
            in_width=28,
            kernel=2,
            stride=2,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(
        ConvLayer(
            name="conv2",
            in_channels=32,
            out_channels=64,
            in_height=14,
            in_width=14,
            kernel=5,
            stride=1,
            padding=2,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(
        PoolLayer(
            name="pool2",
            channels=64,
            in_height=14,
            in_width=14,
            kernel=2,
            stride=2,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(
        FCLayer(
            name="fc1",
            in_features=64 * 7 * 7,
            out_features=640,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(
        FCLayer(
            name="classifier",
            in_features=640,
            out_features=10,
            input_bits=2,
            weight_bits=2,
            output_bits=8,
        )
    )
    return net
