"""AlexNet benchmark (WRPN 2x-wide, 4-bit activations / 1-bit weights).

The paper evaluates the WRPN "wide reduced-precision" AlexNet: channel counts
are doubled relative to the regular network so that 4-bit activations and
1-bit (binary) weights reach full-precision accuracy (Section V-A, [36]).
The first convolution and the final classifier stay at 8-bit/8-bit, which is
why roughly 15% of AlexNet's multiply-adds run at 8/8 in Figure 1(a).

The topology follows the single-tower AlexNet of Krizhevsky's "one weird
trick" paper, which the Bit Fusion paper cites as its AlexNet reference [40]:
convolution channels 64-192-384-256-256 and 4096-wide fully-connected
layers.  The regular variant totals ~0.7 G multiply-adds; the 2x-wide
variant ~2.7 G, matching Table II's 2,678 Mops.
"""

from __future__ import annotations

from repro.dnn.layers import ActivationLayer, ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network

__all__ = ["build_alexnet"]


def build_alexnet(wide: bool = True) -> Network:
    """Build AlexNet.

    Parameters
    ----------
    wide:
        ``True`` builds the 2x-wide quantized model used on Bit Fusion and
        Stripes; ``False`` builds the regular model used on Eyeriss and the
        GPUs (16-bit operands on Eyeriss, FP32/INT8 on the GPUs — the
        simulator models treat its 8-bit declarations as "full precision").
    """
    width = 2 if wide else 1
    suffix = "2x" if wide else "regular"
    # Quantized operand bitwidths of the WRPN model; the regular baseline
    # model keeps every layer at 8 bits (the narrowest encoding the 16-bit
    # Eyeriss datapath and the INT8 GPU path can exploit is handled by the
    # baseline models themselves).
    mid_in, mid_wt = (4, 1) if wide else (8, 8)

    net = Network(f"AlexNet-{suffix}")

    # Stage 1: the 8-bit entry convolution on the 224x224 RGB image.
    net.add(
        ConvLayer(
            name="conv1",
            in_channels=3,
            out_channels=64 * width,
            in_height=224,
            in_width=224,
            kernel=11,
            stride=4,
            padding=2,
            input_bits=8,
            weight_bits=8,
            output_bits=mid_in,
        )
    )
    net.add(
        PoolLayer(
            name="pool1",
            channels=64 * width,
            in_height=55,
            in_width=55,
            kernel=3,
            stride=2,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )

    # Stage 2
    net.add(
        ConvLayer(
            name="conv2",
            in_channels=64 * width,
            out_channels=192 * width,
            in_height=27,
            in_width=27,
            kernel=5,
            stride=1,
            padding=2,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )
    net.add(
        PoolLayer(
            name="pool2",
            channels=192 * width,
            in_height=27,
            in_width=27,
            kernel=3,
            stride=2,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )

    # Stage 3: three back-to-back 3x3 convolutions at 13x13.
    net.add(
        ConvLayer(
            name="conv3",
            in_channels=192 * width,
            out_channels=384 * width,
            in_height=13,
            in_width=13,
            kernel=3,
            stride=1,
            padding=1,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )
    net.add(
        ConvLayer(
            name="conv4",
            in_channels=384 * width,
            out_channels=256 * width,
            in_height=13,
            in_width=13,
            kernel=3,
            stride=1,
            padding=1,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )
    net.add(
        ConvLayer(
            name="conv5",
            in_channels=256 * width,
            out_channels=256 * width,
            in_height=13,
            in_width=13,
            kernel=3,
            stride=1,
            padding=1,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )
    net.add(
        PoolLayer(
            name="pool5",
            channels=256 * width,
            in_height=13,
            in_width=13,
            kernel=3,
            stride=2,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )

    # Classifier: two reduced-precision FC layers plus the 8-bit output layer.
    flattened = 256 * width * 6 * 6
    net.add(
        FCLayer(
            name="fc6",
            in_features=flattened,
            out_features=4096 * width,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )
    net.add(
        ActivationLayer(
            name="relu6",
            elements=4096 * width,
            function="relu",
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=mid_in,
        )
    )
    net.add(
        FCLayer(
            name="fc7",
            in_features=4096 * width,
            out_features=4096 * width,
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=8,
        )
    )
    net.add(
        ActivationLayer(
            name="relu7",
            elements=4096 * width,
            function="relu",
            input_bits=mid_in,
            weight_bits=mid_wt,
            output_bits=8,
        )
    )
    net.add(
        FCLayer(
            name="fc8",
            in_features=4096 * width,
            out_features=1000,
            input_bits=8,
            weight_bits=8,
            output_bits=8,
        )
    )
    return net
