"""Vanilla RNN benchmark (QNN, 4-bit activations and weights, Penn TreeBank).

An Elman-style recurrent language model with a single recurrent layer and a
softmax projection onto the 10,000-word Penn TreeBank vocabulary, quantized
to 4-bit activations and weights (Hubara et al. [35], Figure 1).  A hidden
size of 1,280 puts one inference step at ~16 M multiply-adds with ~8 MB of
4-bit-encoded weights, matching Table II's 17 Mops / 8.0 MB.
"""

from __future__ import annotations

from repro.dnn.layers import FCLayer, RNNLayer
from repro.dnn.network import Network

__all__ = ["build_rnn", "HIDDEN_SIZE", "VOCABULARY"]

#: Hidden (and embedding) width of the benchmark RNN.
HIDDEN_SIZE = 1280

#: Penn TreeBank vocabulary size for the softmax projection.
VOCABULARY = 10_000


def build_rnn() -> Network:
    """Build the quantized Penn TreeBank vanilla RNN (~16 M multiply-adds per step)."""
    net = Network("RNN")
    net.add(
        RNNLayer(
            name="rnn1",
            input_size=HIDDEN_SIZE,
            hidden_size=HIDDEN_SIZE,
            timesteps=1,
            input_bits=4,
            weight_bits=4,
            output_bits=4,
        )
    )
    net.add(
        FCLayer(
            name="softmax_projection",
            in_features=HIDDEN_SIZE,
            out_features=VOCABULARY,
            input_bits=4,
            weight_bits=4,
            output_bits=8,
        )
    )
    return net
