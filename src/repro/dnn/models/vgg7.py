"""VGG-7 benchmark (ternary weight network, 2-bit activations and weights).

The VGG-7 model follows the ternary-weight-network literature the paper
cites [34]: a seven-layer VGG-style network on CIFAR-10 with ternary
(-1, 0, +1) weights, which occupy 2-bit encodings on the fusion fabric.
Channel widths 64-128 / 128-256 / 256-512 with a single 1024-wide
fully-connected layer put it at ~313 M multiply-adds and ~2.9 MB of
2-bit-encoded weights, matching Table II's 317 Mops / 2.7 MB.
"""

from __future__ import annotations

from repro.dnn.layers import ConvLayer, FCLayer, PoolLayer
from repro.dnn.network import Network

__all__ = ["build_vgg7"]

_STAGE_CHANNELS = ((64, 128), (128, 256), (256, 512))


def build_vgg7() -> Network:
    """Build the ternary VGG-7 network (~313 M multiply-adds)."""
    net = Network("VGG-7")
    size = 32
    channels = 3
    first = True
    for stage_index, (first_width, second_width) in enumerate(_STAGE_CHANNELS, start=1):
        for conv_index, width in enumerate((first_width, second_width), start=1):
            in_bits, wt_bits = (8, 8) if first else (2, 2)
            net.add(
                ConvLayer(
                    name=f"conv{stage_index}_{conv_index}",
                    in_channels=channels,
                    out_channels=width,
                    in_height=size,
                    in_width=size,
                    kernel=3,
                    stride=1,
                    padding=1,
                    input_bits=in_bits,
                    weight_bits=wt_bits,
                    output_bits=2,
                )
            )
            channels = width
            first = False
        net.add(
            PoolLayer(
                name=f"pool{stage_index}",
                channels=channels,
                in_height=size,
                in_width=size,
                kernel=2,
                stride=2,
                input_bits=2,
                weight_bits=2,
                output_bits=2,
            )
        )
        size //= 2

    net.add(
        FCLayer(
            name="fc1",
            in_features=channels * size * size,
            out_features=1024,
            input_bits=2,
            weight_bits=2,
            output_bits=2,
        )
    )
    net.add(
        FCLayer(
            name="classifier",
            in_features=1024,
            out_features=10,
            input_bits=2,
            weight_bits=2,
            output_bits=8,
        )
    )
    return net
