"""Network container: an ordered list of layers plus aggregate statistics.

A :class:`Network` is the unit the compiler consumes (one instruction block
per layer) and the experiment harness reports on.  It exposes the aggregate
quantities the paper's Table II and Figure 1 use: total multiply-adds,
weight footprint, and the distribution of multiply-adds / weights over
operand-bitwidth combinations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.dnn.layers import Layer, layer_to_dict
from repro.fingerprint import fingerprint_payload

__all__ = ["Network", "BitwidthProfile"]


@dataclass(frozen=True)
class BitwidthProfile:
    """Distribution of work and storage over operand-bitwidth pairs.

    ``mac_fraction`` maps ``(input_bits, weight_bits)`` to the fraction of
    the network's multiply-adds executed at that precision (Figure 1(a));
    ``weight_fraction`` maps ``weight_bits`` to the fraction of weights
    stored at that precision (Figure 1(b)).
    """

    mac_fraction: dict[tuple[int, int], float] = field(default_factory=dict)
    weight_fraction: dict[int, float] = field(default_factory=dict)

    def macs_at_or_below(self, bits: int) -> float:
        """Fraction of multiply-adds whose *both* operands are <= ``bits`` wide."""
        return sum(
            fraction
            for (ib, wb), fraction in self.mac_fraction.items()
            if ib <= bits and wb <= bits
        )


class Network:
    """An ordered, named collection of layers."""

    def __init__(self, name: str, layers: Iterable[Layer] = ()) -> None:
        if not name:
            raise ValueError("network name must be non-empty")
        self.name = name
        self._layers: "OrderedDict[str, Layer]" = OrderedDict()
        self._fingerprint: str | None = None
        for layer in layers:
            self.add(layer)

    # ------------------------------------------------------------------ #
    # Construction / container protocol
    # ------------------------------------------------------------------ #
    def add(self, layer: Layer) -> "Network":
        """Append a layer; layer names must be unique within the network."""
        if layer.name in self._layers:
            raise ValueError(
                f"duplicate layer name {layer.name!r} in network {self.name!r}"
            )
        self._layers[layer.name] = layer
        self._fingerprint = None
        return self

    @property
    def layers(self) -> list[Layer]:
        return list(self._layers.values())

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, name: str) -> Layer:
        return self._layers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network({self.name!r}, {len(self)} layers, {self.total_macs() / 1e6:.0f} MMACs)"

    # ------------------------------------------------------------------ #
    # Aggregate statistics (Table II / Figure 1)
    # ------------------------------------------------------------------ #
    def compute_layers(self) -> list[Layer]:
        """Layers that lower to GEMMs (convolution, FC, recurrent)."""
        return [layer for layer in self if layer.has_gemm()]

    def total_macs(self) -> int:
        """Multiply-accumulates per input sample."""
        return sum(layer.macs() for layer in self.compute_layers())

    def total_operations(self) -> int:
        """All operations: MACs plus pooling comparisons and activations."""
        total = self.total_macs()
        for layer in self:
            if layer.has_gemm():
                continue
            comparisons = getattr(layer, "comparisons", None)
            if callable(comparisons):
                total += comparisons()
            else:
                total += layer.output_elements()
        return total

    def mac_fraction(self) -> float:
        """Fraction of all operations that are multiply-adds (Figure 1 table)."""
        ops = self.total_operations()
        if ops == 0:
            return 0.0
        return self.total_macs() / ops

    def total_weight_count(self) -> int:
        return sum(layer.weight_count() for layer in self)

    def total_weight_bytes(self) -> float:
        """Model size in bytes at each layer's encoded weight bitwidth."""
        return sum(layer.weight_bits_total() for layer in self) / 8.0

    def total_weight_bytes_at(self, bits: int) -> float:
        """Model size if every weight were stored at a fixed ``bits`` width."""
        return self.total_weight_count() * bits / 8.0

    def bitwidth_profile(self) -> BitwidthProfile:
        """Distribution of MACs and weights over bitwidths (Figure 1)."""
        mac_hist: dict[tuple[int, int], float] = {}
        weight_hist: dict[int, float] = {}
        total_macs = self.total_macs()
        total_weights = self.total_weight_count()

        for layer in self.compute_layers():
            key = (layer.input_bits, layer.weight_bits)
            mac_hist[key] = mac_hist.get(key, 0.0) + layer.macs()
        for layer in self:
            if layer.weight_count():
                weight_hist[layer.weight_bits] = (
                    weight_hist.get(layer.weight_bits, 0.0) + layer.weight_count()
                )

        if total_macs:
            mac_hist = {k: v / total_macs for k, v in mac_hist.items()}
        if total_weights:
            weight_hist = {k: v / total_weights for k, v in weight_hist.items()}
        return BitwidthProfile(mac_fraction=mac_hist, weight_fraction=weight_hist)

    def fingerprint(self) -> str:
        """Deterministic content hash of the network structure.

        Hashes the network name plus every layer's concrete type and field
        values, so two structurally identical networks fingerprint the same
        in any process while any shape or bitwidth change invalidates cached
        simulation results keyed on the digest.

        Memoized (and invalidated by :meth:`add`): warm-cache estimator
        lookups are dominated by this hash, so repeated pricing of the same
        candidate must not re-serialize the layer list.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_payload(
                {
                    "name": self.name,
                    "layers": [layer_to_dict(layer) for layer in self],
                }
            )
        return self._fingerprint

    def max_input_bits(self) -> int:
        return max((layer.input_bits for layer in self.compute_layers()), default=8)

    def max_weight_bits(self) -> int:
        return max((layer.weight_bits for layer in self.compute_layers()), default=8)

    def summary(self) -> str:
        """Human-readable per-layer summary table."""
        lines = [f"Network {self.name}: {len(self)} layers"]
        header = f"{'layer':24s} {'kind':10s} {'MACs':>14s} {'weights':>12s} {'in/wt bits':>10s}"
        lines.append(header)
        lines.append("-" * len(header))
        for layer in self:
            macs = layer.macs() if layer.has_gemm() else 0
            lines.append(
                f"{layer.name:24s} {layer.kind:10s} {macs:14,d} "
                f"{layer.weight_count():12,d} {layer.input_bits:>4d}/{layer.weight_bits:<4d}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':24s} {'':10s} {self.total_macs():14,d} "
            f"{self.total_weight_count():12,d}"
        )
        return "\n".join(lines)
