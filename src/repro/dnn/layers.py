"""Layer intermediate representation.

Every DNN the paper evaluates is, for the accelerator's purposes, a sequence
of layers that each lower to a GEMM (convolution via im2col, fully-connected
directly, recurrent layers as a gate GEMM repeated over timesteps) plus
lightweight pooling/activation stages handled by the per-column units of the
systolic array.

Each layer carries its own operand bitwidths — this is the property Bit
Fusion exploits (Figure 1): the compiler emits one instruction block per
layer, whose ``setup`` instruction fixes the fusion configuration for that
layer.

The layer classes expose

* ``macs()`` — multiply-accumulate count per input sample,
* ``weight_count()`` / ``weight_bits_total()`` — parameter footprint,
* ``input_elements()`` / ``output_elements()`` — activation footprints,
* ``gemm_shape()`` — the ``(M, N, repeats)`` GEMM the layer lowers to,
  where ``repeats`` counts spatial positions or timesteps per sample.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

__all__ = [
    "GemmShape",
    "Layer",
    "ConvLayer",
    "FCLayer",
    "PoolLayer",
    "ActivationLayer",
    "LSTMLayer",
    "RNNLayer",
    "layer_to_dict",
    "layer_from_dict",
]

_VALID_BITS = (1, 2, 4, 8, 16)


def _check_bits(bits: int, label: str) -> int:
    if bits not in _VALID_BITS:
        raise ValueError(f"{label} must be one of {_VALID_BITS}, got {bits}")
    return bits


def _check_positive(value: int, label: str) -> int:
    if value <= 0:
        raise ValueError(f"{label} must be positive, got {value}")
    return value


@dataclass(frozen=True)
class GemmShape:
    """GEMM a layer lowers to: ``out[M, repeats] = W[M, N] @ x[N, repeats]``.

    ``repeats`` is the number of independent input vectors per sample
    (spatial output positions for a convolution, timesteps for a recurrent
    layer, 1 for a fully-connected layer).
    """

    m: int
    n: int
    repeats: int = 1

    @property
    def macs(self) -> int:
        return self.m * self.n * self.repeats


@dataclass(frozen=True)
class Layer:
    """Base class for all layers.

    Attributes
    ----------
    name:
        Layer identifier used in reports and per-layer results.
    input_bits, weight_bits, output_bits:
        Encoded operand bitwidths for this layer.  Layers without weights
        (pooling, activation) only use ``input_bits``/``output_bits``.
    """

    name: str
    input_bits: int = 8
    weight_bits: int = 8
    output_bits: int = 8

    def __post_init__(self) -> None:
        _check_bits(self.input_bits, "input_bits")
        _check_bits(self.weight_bits, "weight_bits")
        _check_bits(self.output_bits, "output_bits")

    # -- interface -------------------------------------------------------- #
    @property
    def kind(self) -> str:
        return type(self).__name__.replace("Layer", "").lower()

    @property
    def has_weights(self) -> bool:
        return self.weight_count() > 0

    @property
    def is_compute(self) -> bool:
        """Whether the layer maps onto the systolic array (GEMM-shaped)."""
        return self.macs() > 0

    def macs(self) -> int:
        """Multiply-accumulates per input sample."""
        return self.gemm_shape().macs if self.has_gemm() else 0

    def has_gemm(self) -> bool:
        return True

    def gemm_shape(self) -> GemmShape:
        raise NotImplementedError

    def weight_count(self) -> int:
        return 0

    def weight_bits_total(self) -> int:
        """Weight storage footprint in bits at the layer's encoded bitwidth."""
        return self.weight_count() * self.weight_bits

    def input_elements(self) -> int:
        raise NotImplementedError

    def output_elements(self) -> int:
        raise NotImplementedError

    def input_bits_total(self) -> int:
        return self.input_elements() * self.input_bits

    def output_bits_total(self) -> int:
        return self.output_elements() * self.output_bits


@dataclass(frozen=True)
class ConvLayer(Layer):
    """2-D convolution, lowered to GEMM via im2col.

    Geometry follows the usual convention: input is ``in_channels ×
    in_height × in_width``; the kernel is ``kernel × kernel``; ``stride``
    and ``padding`` apply symmetrically.
    """

    in_channels: int = 3
    out_channels: int = 64
    in_height: int = 224
    in_width: int = 224
    kernel: int = 3
    stride: int = 1
    padding: int = 1
    groups: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.in_channels, "in_channels")
        _check_positive(self.out_channels, "out_channels")
        _check_positive(self.in_height, "in_height")
        _check_positive(self.in_width, "in_width")
        _check_positive(self.kernel, "kernel")
        _check_positive(self.stride, "stride")
        _check_positive(self.groups, "groups")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                "in_channels and out_channels must be divisible by groups "
                f"(got {self.in_channels}, {self.out_channels}, groups={self.groups})"
            )
        if self.out_height <= 0 or self.out_width <= 0:
            raise ValueError(
                f"convolution {self.name!r} produces an empty output "
                f"({self.out_height}x{self.out_width})"
            )

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel) // self.stride + 1

    def gemm_shape(self) -> GemmShape:
        n = (self.in_channels // self.groups) * self.kernel * self.kernel
        return GemmShape(
            m=self.out_channels,
            n=n,
            repeats=self.out_height * self.out_width,
        )

    def weight_count(self) -> int:
        return (
            self.out_channels
            * (self.in_channels // self.groups)
            * self.kernel
            * self.kernel
        )

    def input_elements(self) -> int:
        return self.in_channels * self.in_height * self.in_width

    def output_elements(self) -> int:
        return self.out_channels * self.out_height * self.out_width


@dataclass(frozen=True)
class FCLayer(Layer):
    """Fully-connected (inner-product) layer."""

    in_features: int = 1024
    out_features: int = 1024

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.in_features, "in_features")
        _check_positive(self.out_features, "out_features")

    def gemm_shape(self) -> GemmShape:
        return GemmShape(m=self.out_features, n=self.in_features, repeats=1)

    def weight_count(self) -> int:
        return self.in_features * self.out_features

    def input_elements(self) -> int:
        return self.in_features

    def output_elements(self) -> int:
        return self.out_features


@dataclass(frozen=True)
class PoolLayer(Layer):
    """Max/average pooling, executed by the per-column pooling units."""

    channels: int = 64
    in_height: int = 56
    in_width: int = 56
    kernel: int = 2
    stride: int = 2
    mode: str = "max"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.channels, "channels")
        _check_positive(self.in_height, "in_height")
        _check_positive(self.in_width, "in_width")
        _check_positive(self.kernel, "kernel")
        _check_positive(self.stride, "stride")
        if self.mode not in ("max", "avg"):
            raise ValueError(f"pool mode must be 'max' or 'avg', got {self.mode!r}")

    @property
    def out_height(self) -> int:
        return (self.in_height - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width - self.kernel) // self.stride + 1

    def has_gemm(self) -> bool:
        return False

    def gemm_shape(self) -> GemmShape:  # pragma: no cover - guarded by has_gemm
        raise ValueError(f"pooling layer {self.name!r} does not lower to a GEMM")

    def comparisons(self) -> int:
        """Comparison/add operations performed by the pooling unit."""
        return self.output_elements() * (self.kernel * self.kernel - 1)

    def input_elements(self) -> int:
        return self.channels * self.in_height * self.in_width

    def output_elements(self) -> int:
        return self.channels * self.out_height * self.out_width


@dataclass(frozen=True)
class ActivationLayer(Layer):
    """Element-wise activation, executed by the per-column activation units."""

    elements: int = 4096
    function: str = "relu"

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.elements, "elements")
        if self.function not in ("relu", "sigmoid", "tanh"):
            raise ValueError(
                f"activation must be relu/sigmoid/tanh, got {self.function!r}"
            )

    def has_gemm(self) -> bool:
        return False

    def gemm_shape(self) -> GemmShape:  # pragma: no cover - guarded by has_gemm
        raise ValueError(f"activation layer {self.name!r} does not lower to a GEMM")

    def input_elements(self) -> int:
        return self.elements

    def output_elements(self) -> int:
        return self.elements


@dataclass(frozen=True)
class _RecurrentLayer(Layer):
    """Shared geometry for recurrent layers (gate GEMM repeated per timestep)."""

    input_size: int = 256
    hidden_size: int = 256
    timesteps: int = 1
    gates: int = field(default=1, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.input_size, "input_size")
        _check_positive(self.hidden_size, "hidden_size")
        _check_positive(self.timesteps, "timesteps")

    def gemm_shape(self) -> GemmShape:
        return GemmShape(
            m=self.gates * self.hidden_size,
            n=self.input_size + self.hidden_size,
            repeats=self.timesteps,
        )

    def weight_count(self) -> int:
        return self.gates * self.hidden_size * (self.input_size + self.hidden_size)

    def input_elements(self) -> int:
        return self.timesteps * self.input_size

    def output_elements(self) -> int:
        return self.timesteps * self.hidden_size


@dataclass(frozen=True)
class LSTMLayer(_RecurrentLayer):
    """Long Short-Term Memory layer: four gate matrices per cell."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "gates", 4)
        super().__post_init__()


@dataclass(frozen=True)
class RNNLayer(_RecurrentLayer):
    """Vanilla (Elman) recurrent layer: a single gate matrix."""

    def __post_init__(self) -> None:
        object.__setattr__(self, "gates", 1)
        super().__post_init__()


# ---------------------------------------------------------------------- #
# Serialization
# ---------------------------------------------------------------------- #
#: Concrete layer classes by name, for :func:`layer_from_dict`.
_LAYER_TYPES: dict[str, type[Layer]] = {
    cls.__name__: cls
    for cls in (Layer, ConvLayer, FCLayer, PoolLayer, ActivationLayer, LSTMLayer, RNNLayer)
}


def layer_to_dict(layer: Layer) -> dict[str, object]:
    """JSON-compatible payload of a layer: a type tag plus every field value.

    Every layer field is an int or str, so the payload round-trips losslessly
    through JSON; :func:`layer_from_dict` rebuilds an equal layer instance.
    This is what lets compiled :class:`~repro.isa.program.Program` artifacts
    (which embed the layer each block implements) persist across processes.
    """
    return {"type": type(layer).__name__, **asdict(layer)}


def layer_from_dict(payload: dict[str, object]) -> Layer:
    """Rebuild a layer from :func:`layer_to_dict` output."""
    type_name = payload.get("type")
    if type_name not in _LAYER_TYPES:
        raise ValueError(f"unknown layer type {type_name!r}")
    cls = _LAYER_TYPES[type_name]
    # Derived fields (e.g. the recurrent layers' ``gates``, init=False) are
    # recomputed by the constructor, so only init-able fields pass through.
    init_fields = {f.name for f in fields(cls) if f.init}
    return cls(**{key: value for key, value in payload.items() if key in init_fields})
