"""Quantized tensor specifications and generators.

The simulator never needs real trained weights — performance and energy
depend only on tensor *shapes* and *bitwidths* — but the functional tests
and examples do need concrete integer tensors that respect a layer's
declared bitwidth.  :class:`TensorSpec` describes such a tensor and
:func:`random_quantized_tensor` materializes one.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

import numpy as np

__all__ = ["TensorSpec", "random_quantized_tensor"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape + precision description of a quantized tensor.

    Attributes
    ----------
    shape:
        Tensor dimensions.
    bits:
        Encoded bitwidth of every element (1, 2, 4, 8 or 16).
    signed:
        Whether elements are two's-complement signed.
    """

    shape: tuple[int, ...]
    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("tensor shape must have at least one dimension")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"tensor dimensions must be positive, got {self.shape}")
        if self.bits not in (1, 2, 4, 8, 16):
            raise ValueError(f"bitwidth must be one of (1, 2, 4, 8, 16), got {self.bits}")

    @property
    def elements(self) -> int:
        """Number of elements in the tensor."""
        return prod(self.shape)

    @property
    def size_bits(self) -> int:
        """Storage footprint in bits at the tensor's encoded bitwidth."""
        return self.elements * self.bits

    @property
    def size_bytes(self) -> float:
        """Storage footprint in bytes at the tensor's encoded bitwidth."""
        return self.size_bits / 8.0

    @property
    def value_range(self) -> tuple[int, int]:
        """Inclusive numeric range representable at this precision."""
        if self.signed:
            return -(1 << (self.bits - 1)), (1 << (self.bits - 1)) - 1
        return 0, (1 << self.bits) - 1


def random_quantized_tensor(
    spec: TensorSpec, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Draw a random integer tensor matching ``spec``.

    Values are drawn uniformly over the representable range and returned as
    ``int64`` so downstream accumulation never overflows NumPy dtypes.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    lo, hi = spec.value_range
    return rng.integers(lo, hi + 1, size=spec.shape, dtype=np.int64)
