"""Quantized DNN substrate.

Bit Fusion's evaluation runs eight real-world quantized DNNs.  This package
provides the substrate those experiments need:

* :mod:`repro.dnn.tensor` — quantized tensor specifications and generators.
* :mod:`repro.dnn.quantization` — linear quantization/dequantization and
  bitwidth utilities (the encoding logic that lets the accelerator store
  values at their minimal bitwidth).
* :mod:`repro.dnn.layers` — the layer IR (convolution, fully-connected,
  pooling, activation, LSTM, vanilla RNN) with per-layer operand bitwidths
  and GEMM lowering.
* :mod:`repro.dnn.network` — a network is an ordered list of layers with
  aggregate statistics (MACs, weight footprint, bitwidth distribution).
* :mod:`repro.dnn.models` — the eight benchmark networks of Table II with
  the bitwidth assignments of Figure 1.
* :mod:`repro.dnn.reference` — NumPy integer reference execution used to
  validate the fusion arithmetic end to end.
"""

from repro.dnn.tensor import TensorSpec, random_quantized_tensor
from repro.dnn.quantization import (
    QuantizationSpec,
    quantize_linear,
    dequantize_linear,
    minimal_bitwidth,
    clip_to_bitwidth,
)
from repro.dnn.layers import (
    Layer,
    ConvLayer,
    FCLayer,
    PoolLayer,
    ActivationLayer,
    LSTMLayer,
    RNNLayer,
    GemmShape,
)
from repro.dnn.network import Network
from repro.dnn import functional
from repro.dnn import models

__all__ = [
    "functional",
    "models",
    "TensorSpec",
    "random_quantized_tensor",
    "QuantizationSpec",
    "quantize_linear",
    "dequantize_linear",
    "minimal_bitwidth",
    "clip_to_bitwidth",
    "Layer",
    "ConvLayer",
    "FCLayer",
    "PoolLayer",
    "ActivationLayer",
    "LSTMLayer",
    "RNNLayer",
    "GemmShape",
    "Network",
]
