"""Cross-validation of the fusion fabric against NumPy reference arithmetic.

The accelerator claims that decomposing every multiply onto 2-bit BitBricks
is numerically lossless (Section III).  This module provides layer-level
executors that run the *same* quantized layer twice — once through the
:class:`~repro.core.systolic.SystolicArray` functional model (every scalar
multiply travels through BitBrick decomposition and shift-add recomposition)
and once through plain NumPy integer arithmetic — and report whether the two
agree bit-for-bit.

These executors are deliberately slow (they exercise the brick-level
datapath); they are used by the integration tests and the examples on small
tensors, never by the performance simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BitFusionConfig
from repro.core.systolic import SystolicArray
from repro.dnn.functional import conv2d, conv2d_gemm, fully_connected
from repro.dnn.layers import ConvLayer, FCLayer
from repro.dnn.tensor import TensorSpec, random_quantized_tensor

__all__ = [
    "ReferenceComparison",
    "run_fc_layer",
    "run_conv_layer",
    "random_layer_data",
]


@dataclass(frozen=True)
class ReferenceComparison:
    """Result of running a layer on the fabric and on the NumPy reference.

    Attributes
    ----------
    fabric_output:
        Output computed through the BitBrick decomposition datapath.
    reference_output:
        Output computed with plain NumPy integer arithmetic.
    """

    fabric_output: np.ndarray
    reference_output: np.ndarray

    @property
    def matches(self) -> bool:
        """Whether the fabric reproduced the reference bit-exactly."""
        return bool(np.array_equal(self.fabric_output, self.reference_output))

    @property
    def max_abs_error(self) -> int:
        """Largest absolute difference (0 when :attr:`matches` is true)."""
        return int(np.max(np.abs(self.fabric_output - self.reference_output)))


def random_layer_data(
    layer: ConvLayer | FCLayer, rng: np.random.Generator | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Draw random quantized ``(inputs, weights)`` respecting the layer's bitwidths."""
    if rng is None:
        rng = np.random.default_rng(0)
    if isinstance(layer, ConvLayer):
        input_spec = TensorSpec(
            shape=(layer.in_channels, layer.in_height, layer.in_width),
            bits=layer.input_bits,
        )
        weight_spec = TensorSpec(
            shape=(
                layer.out_channels,
                layer.in_channels // layer.groups,
                layer.kernel,
                layer.kernel,
            ),
            bits=layer.weight_bits,
        )
    elif isinstance(layer, FCLayer):
        input_spec = TensorSpec(shape=(layer.in_features,), bits=layer.input_bits)
        weight_spec = TensorSpec(
            shape=(layer.out_features, layer.in_features), bits=layer.weight_bits
        )
    else:
        raise TypeError(f"unsupported layer type for reference execution: {type(layer)}")
    return random_quantized_tensor(input_spec, rng), random_quantized_tensor(
        weight_spec, rng
    )


def _array_for(layer: ConvLayer | FCLayer, config: BitFusionConfig | None) -> SystolicArray:
    if config is None:
        config = BitFusionConfig(rows=4, columns=4, name="reference-small")
    array = SystolicArray(config)
    # 1-bit layers ride the 2-bit signed lanes of the fabric.
    array.configure(max(2, layer.input_bits), max(2, layer.weight_bits))
    return array


def run_fc_layer(
    layer: FCLayer,
    inputs: np.ndarray,
    weights: np.ndarray,
    config: BitFusionConfig | None = None,
) -> ReferenceComparison:
    """Execute a fully-connected layer on the fabric and on the reference."""
    array = _array_for(layer, config)
    fabric = array.matvec(weights, inputs)
    reference = fully_connected(inputs, weights)
    return ReferenceComparison(fabric_output=fabric, reference_output=reference)


def run_conv_layer(
    layer: ConvLayer,
    inputs: np.ndarray,
    weights: np.ndarray,
    config: BitFusionConfig | None = None,
) -> ReferenceComparison:
    """Execute a convolution on the fabric (via its GEMM lowering) and on the reference."""
    array = _array_for(layer, config)
    weight_matrix, input_columns = conv2d_gemm(
        inputs, weights, stride=layer.stride, padding=layer.padding
    )
    fabric_flat = array.matmul(weight_matrix, input_columns)
    fabric = fabric_flat.reshape(layer.out_channels, layer.out_height, layer.out_width)
    reference = conv2d(inputs, weights, stride=layer.stride, padding=layer.padding)
    return ReferenceComparison(fabric_output=fabric, reference_output=reference)
