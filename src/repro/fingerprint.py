"""Shared content-fingerprint helper.

Configs, networks and workloads all fingerprint themselves the same way:
sha256 over a canonical (sorted-keys) JSON dump of a payload dictionary.
Keeping the incantation in one place guarantees the three call sites can
never drift apart — a silent divergence would fragment or invalidate the
evaluation session's on-disk result cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["fingerprint_payload"]


def fingerprint_payload(payload: dict[str, Any]) -> str:
    """Deterministic sha256 hex digest of a JSON-representable payload.

    ``default=str`` covers enum/Path-like leaves; ``sort_keys`` makes the
    digest independent of dict insertion order, so equal payloads hash
    identically in any process on any platform.
    """
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()
