"""Bit Fusion reproduction library.

This package reproduces *Bit Fusion: Bit-Level Dynamically Composable
Architecture for Accelerating Deep Neural Networks* (ISCA 2018) as a pure
Python system: the bit-level composable compute fabric (BitBricks, Fusion
Units, the systolic array), the block-structured Fusion-ISA and its
compiler, a cycle-accurate performance and energy simulator, a quantized
DNN substrate with the paper's eight benchmark networks, and the baseline
accelerators the paper compares against (Eyeriss, Stripes, a temporal
bit-serial design, and GPU roofline models).

Public entry points
-------------------
``repro.core``
    BitBrick / Fusion Unit / systolic-array models and ``BitFusionConfig``.
``repro.isa``
    Fusion-ISA instruction set, encoder, and the layer-to-ISA compiler.
``repro.sim``
    Cycle-accurate simulator producing cycle counts and memory traffic.
``repro.energy``
    Area and energy models (synthesis constants, CACTI-like SRAM, DRAM).
``repro.dnn``
    Quantized layer/network IR and the eight benchmark model definitions.
``repro.baselines``
    Eyeriss, Stripes, temporal-design and GPU comparison models.
``repro.session``
    Unified evaluation session: fingerprinted workloads, a result cache
    (in-memory + optional on-disk JSON) and a process-pool parallel
    ``run``/``run_many``/``sweep`` engine shared by every experiment.
``repro.harness``
    One experiment runner per table/figure in the paper's evaluation,
    all routed through a shared evaluation session.
"""

from importlib.metadata import PackageNotFoundError, version as _distribution_version

from repro.core.config import BitFusionConfig
from repro.core.accelerator import BitFusionAccelerator
from repro.dnn.network import Network
from repro.sim.results import LayerResult, NetworkResult

try:
    # The single source of truth is the packaging metadata (pyproject.toml).
    __version__ = _distribution_version("bitfusion-repro")
except PackageNotFoundError:
    # Source checkout driven via PYTHONPATH=src; keep in sync with pyproject.toml.
    __version__ = "1.1.0"

__all__ = [
    "BitFusionConfig",
    "BitFusionAccelerator",
    "Network",
    "LayerResult",
    "NetworkResult",
    "__version__",
]
