"""Execution backends: one protocol, three ways to run a schedule.

:class:`~repro.session.session.EvaluationSession.run_many` resolves its
batch against the cache and hands the genuinely pending schedule to an
:class:`ExecutionBackend`.  The backend owns *where* work units execute;
the session keeps owning everything else — cache resolution, commit
ordering, the retry-once / quarantine policy and the checkpoint journal —
so every backend inherits the same fault-tolerance and byte-identity
contracts:

* :class:`InlineBackend` — the serial path: plan every workload against
  the cache, simulate the missing blocks of the whole batch through as few
  vectorized calls as possible
  (:func:`~repro.session.engine.simulate_planned_blocks` — cross-workload
  grid merging), then compose in schedule order.  With a checkpoint it
  degrades to strictly per-workload commits (kill-anywhere resumability).
* :class:`ProcessPoolBackend` — the ``--jobs`` path: a lazily created
  ``ProcessPoolExecutor``, work units submitted as their plans complete,
  per-sim-config simulator memoization in the workers, and labelled
  failure isolation (a crashed worker fails only its own workload and the
  broken pool is discarded).
* :class:`~repro.session.remote.RemoteBackend` — TCP/JSON workers
  (``python -m repro.harness worker``); lives in its own module so the
  session import stays socket-free.

A backend returns ``(resolved, failures)``; the session feeds the failures
into its retry/quarantine policy.  Backends report *who* did the work
through :class:`~repro.session.cache.WorkerStats` (backend name, per-worker
unit counts, dispatch/wait wall time), which the report footer and
``--profile`` table render.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.session.engine import (
    describe_workload_error,
    execute_work_unit,
    plan_workload,
    simulate_planned_blocks,
)
from repro.session.workload import Workload
from repro.sim.results import NetworkResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import EvaluationSession

__all__ = [
    "ExecutionBackend",
    "Failure",
    "InlineBackend",
    "ProcessPoolBackend",
    "make_backend",
]

#: (workload, result) callback fired at commit time; see ``run_many``.
ResultCallback = Callable[[Workload, NetworkResult], None]


@dataclass(frozen=True)
class Failure:
    """One failed execution attempt, pending the session's retry."""

    key: str
    workload: Workload
    message: str


class ExecutionBackend:
    """Where a session's pending schedule executes.

    ``execute`` receives the session (for cache, stats, checkpoint and the
    commit helpers) and the deduplicated, longest-job-first schedule; it
    must commit every successful result through ``session._commit`` (in
    schedule order, so deferred in-batch blocks resolve exactly as they
    would serially) and return the resolved results plus the failures the
    session should retry.  ``simulate_plans`` is the bare simulation
    primitive the NAS estimator batches candidate plans through — inline
    by default, sharded by the remote backend.
    """

    #: Short name rendered in the footer's ``backend:`` line and the
    #: ``parallel workers [name]`` statistics.
    name = "backend"

    def execute(
        self,
        session: "EvaluationSession",
        items: list[tuple[str, Workload]],
        on_result: ResultCallback | None = None,
    ) -> tuple[dict[str, NetworkResult], list[Failure]]:
        raise NotImplementedError

    def simulate_plans(self, plans: Sequence[Any]) -> list[dict[int, Any]]:
        """Simulate the missing blocks of arbitrary plans (PlanLike)."""
        return simulate_planned_blocks(plans)

    def close(self) -> None:
        """Release backend resources (pools, sockets).  Idempotent."""

    def describe(self) -> str:
        """Footer description, e.g. ``pool (2 processes)``."""
        return self.name


class InlineBackend(ExecutionBackend):
    """Serial in-process execution with cross-workload batched simulation."""

    name = "inline"

    def execute(
        self,
        session: "EvaluationSession",
        items: list[tuple[str, Workload]],
        on_result: ResultCallback | None = None,
    ) -> tuple[dict[str, NetworkResult], list[Failure]]:
        """Run the schedule inline, batching simulations across workloads.

        Without a checkpoint, every Bit Fusion workload of the batch is
        planned against the cache first (central compile, per-block
        resolution through both cache levels, in-batch duplicates deferred
        to their claimant exactly like the parallel protocol); the
        genuinely missing blocks of *all* plans then simulate through as
        few vectorized batched calls as possible
        (:func:`~repro.session.engine.simulate_planned_blocks` — a sweep
        varying only simulation parameters collapses into one 2-D grid
        pass) before each workload composes in schedule order.  Baseline
        workloads (no compile stage) execute whole, as always.  If the
        all-plans batched call raises, the batch degrades to per-plan
        simulation so one faulting block fails only its own workload.

        With a checkpoint, workloads run strictly one at a time — plan,
        simulate, compose, store, journal — so a kill at any point loses at
        most the in-flight workload.
        """
        stats = session.stats
        resolved: dict[str, NetworkResult] = {}
        failures: list[Failure] = []
        if session.checkpoint is None:
            # No durability contract to honour between workloads, so the
            # whole batch — compile-stage artifacts and every composed
            # workload's store-backs — lands as one group commit (a single
            # segment append + one index flush on pack-layout caches).
            with session.cache.batch():
                claimed: set[str] = set()
                plans = [
                    plan_workload(workload, session.cache, stats, claimed)
                    for _, workload in items
                ]
                try:
                    started = time.perf_counter()
                    remote: list[dict[int, object]] | None = self.simulate_plans(plans)
                    stats.sim_seconds += time.perf_counter() - started
                except Exception:
                    # One faulting block aborted the whole batched call;
                    # degrade to per-plan simulation so only the faulty
                    # workload fails.
                    remote = None
                for index, ((key, workload), plan) in enumerate(zip(items, plans)):
                    try:
                        if remote is not None:
                            layers = remote[index]
                        else:
                            started = time.perf_counter()
                            layers = simulate_planned_blocks([plan])[0]
                            stats.sim_seconds += time.perf_counter() - started
                        result = session._finish_plan(workload, plan, layers)
                    except Exception as error:
                        failures.append(
                            Failure(key, workload, describe_workload_error(workload, error))
                        )
                        continue
                    session._commit(key, workload, result, on_result)
                    resolved[key] = result
        else:
            # Checkpointed: one durable commit per workload, in schedule
            # order.  Trades the cross-workload grid merge for the property
            # that a kill between commits never loses more than one point.
            claimed = set()
            for key, workload in items:
                try:
                    plan = plan_workload(workload, session.cache, stats, claimed)
                    started = time.perf_counter()
                    layers = simulate_planned_blocks([plan])[0]
                    stats.sim_seconds += time.perf_counter() - started
                    result = session._finish_plan(workload, plan, layers)
                except Exception as error:
                    failures.append(
                        Failure(key, workload, describe_workload_error(workload, error))
                    )
                    continue
                session._commit(key, workload, result, on_result)
                resolved[key] = result
        return resolved, failures


class ProcessPoolBackend(ExecutionBackend):
    """Local multi-process execution over a reusable ``ProcessPoolExecutor``."""

    name = "pool"

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        self._inline = InlineBackend()

    def describe(self) -> str:
        return f"pool ({self.jobs} processes)"

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def discard(self) -> None:
        """Drop a (possibly broken) worker pool; the next batch rebuilds it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def execute(
        self,
        session: "EvaluationSession",
        items: list[tuple[str, Workload]],
        on_result: ResultCallback | None = None,
    ) -> tuple[dict[str, NetworkResult], list[Failure]]:
        """Run the schedule over the pool, warm artifacts resolved first.

        Each workload is planned against the cache in the main process
        (central compile, per-block resolution through both cache levels);
        only plans with genuinely missing work ship a
        :class:`~repro.session.engine.WorkUnit` to the pool, and each unit
        is submitted the moment its plan is ready, so workers simulate the
        first networks while the main process is still compiling the rest.
        Results compose and store in schedule order, so blocks deferred to
        an earlier in-batch claimant resolve from the cache exactly as they
        would serially.

        A worker failure — an error reply *or* a crashed worker process
        (``BrokenProcessPool`` at ``Future.result()``) — fails only its own
        workload and routes it into the retry/quarantine path; a broken
        pool is discarded so the next batch starts fresh workers.
        """
        if len(items) < 2:
            # A single pending workload gains nothing from pool dispatch
            # (and would pay pickle + startup cost); run it inline so the
            # statistics match the historical jobs>1 single-item behaviour.
            return self._inline.execute(session, items, on_result)
        stats = session.stats
        stats.workers.backend = self.name
        # The pool is created once per backend and reused across batches
        # so workers pay the interpreter/import start-up cost only once.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        claimed: set[str] = set()
        plans = []
        futures = []
        for _, workload in items:
            plan = plan_workload(workload, session.cache, stats, claimed)
            plans.append(plan)
            if plan.needs_worker:
                unit = plan.work_unit()
                stats.workers.units += 1
                stats.workers.remote_blocks += len(unit.simulate_indices)
                started = time.perf_counter()
                futures.append(self._pool.submit(execute_work_unit, unit))
                stats.workers.dispatch_seconds += time.perf_counter() - started
        replies = iter(futures)
        resolved: dict[str, NetworkResult] = {}
        failures: list[Failure] = []
        for (key, workload), plan in zip(items, plans):
            reply = None
            if plan.needs_worker:
                try:
                    started = time.perf_counter()
                    reply = next(replies).result()
                    stats.workers.wait_seconds += time.perf_counter() - started
                except Exception as error:
                    # The worker process died (or the pool broke): the reply
                    # never arrived.  Fail this workload into the retry path
                    # and discard the pool — once broken it poisons every
                    # remaining future, and the next batch deserves fresh
                    # workers.
                    failures.append(
                        Failure(key, workload, describe_workload_error(workload, error))
                    )
                    self.discard()
                    continue
                stats.workers.record_worker(reply.worker_id or "worker")
            if reply is not None and reply.error is not None:
                failures.append(Failure(key, workload, reply.error))
                continue
            if reply is not None:
                # Fold worker-side wall time into the session's per-stage
                # timers so parallel footers measure the same stages.
                stats.compile_seconds += reply.compile_seconds
                stats.sim_seconds += reply.sim_seconds
            try:
                if reply is not None and reply.result is not None:
                    result = reply.result
                else:
                    remote = dict(reply.layers) if reply is not None else {}
                    started = time.perf_counter()
                    result = session._compose_plan(plan, remote)
                    stats.compose_seconds += time.perf_counter() - started
            except Exception as error:
                failures.append(
                    Failure(key, workload, describe_workload_error(workload, error))
                )
                continue
            session._commit(key, workload, result, on_result)
            resolved[key] = result
        return resolved, failures


def make_backend(
    name: str | None = None,
    jobs: int = 1,
    workers: Sequence[str] = (),
    timeout: float | None = None,
) -> ExecutionBackend:
    """Build the backend a CLI invocation asked for.

    ``name=None`` keeps the historical behaviour: ``jobs > 1`` selects the
    process pool, anything else runs inline.  ``remote`` requires at least
    one ``host:port`` worker address.
    """
    if name is None:
        name = "pool" if jobs > 1 else "inline"
    if name == "inline":
        if jobs > 1:
            raise ValueError("--backend inline does not take --jobs > 1")
        return InlineBackend()
    if name == "pool":
        # An explicit pool request with the default --jobs still gets real
        # parallelism; otherwise the flag would silently mean "inline".
        return ProcessPoolBackend(jobs if jobs > 1 else 2)
    if name == "remote":
        if not workers:
            raise ValueError("--backend remote requires --workers host:port[,host:port...]")
        from repro.session.remote import RemoteBackend

        if timeout is not None:
            return RemoteBackend(workers, timeout=timeout)
        return RemoteBackend(workers)
    raise ValueError(f"unknown backend {name!r}; expected inline, pool or remote")
