"""Staged workload execution: compile → simulate-blocks → compose.

This module is the seam between :class:`~repro.session.session.
EvaluationSession` and the platform models.  Bit Fusion workloads run
through an explicit three-stage pipeline with a cacheable artifact at every
seam:

1. **compile** — lower the network to a Fusion-ISA
   :class:`~repro.isa.program.Program`.  The artifact is keyed by a
   *structure-only* fingerprint (:func:`program_cache_key`): network
   structure, batch size, scratchpad capacities and compiler flags — the
   only inputs the compiler reads.  A sweep that varies off-chip bandwidth
   (or any other simulation-only parameter) therefore reuses one compiled
   program across all its points.
2. **simulate-blocks** — run each instruction block independently through
   :class:`~repro.sim.executor.BitFusionSimulator` into a serializable
   :class:`~repro.sim.results.LayerResult`, keyed by the block fingerprint
   plus the simulation-affecting configuration (:func:`block_cache_key`).
   Blocks whose cycle/energy inputs are unchanged are never re-simulated.
3. **compose** — assemble the per-block results into a
   :class:`~repro.sim.results.NetworkResult`
   (:func:`~repro.sim.results.compose_network_result`).  Composition is
   pure, so a result composed from cached artifacts is byte-identical to a
   fresh monolithic simulation.

Baseline platforms (Eyeriss, Stripes, GPUs, the temporal design) have no
compile stage; they run as a single simulate step and cache whole results.

The module-level functions are picklable so a ``ProcessPoolExecutor`` can
ship workloads to worker processes; workers return a
:class:`WorkloadOutcome` carrying both the result and the staged artifacts,
which the session stores into its cache in the main process.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.baselines.base import AcceleratorModel
from repro.baselines.eyeriss import EyerissModel
from repro.baselines.gpu import GpuModel, GpuPrecision
from repro.baselines.stripes import StripesModel
from repro.baselines.temporal import TemporalAcceleratorModel
from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.fingerprint import fingerprint_payload
from repro.isa.compiler import FusionCompiler
from repro.isa.program import Program
from repro.session.cache import CacheStats, ProgramStats, ResultCache
from repro.session.workload import Workload, load_network, network_digest
from repro.sim.executor import BitFusionSimulator
from repro.sim.results import LayerResult, NetworkResult, compose_network_result

__all__ = [
    "StagedArtifacts",
    "WorkloadOutcome",
    "build_model",
    "block_cache_key",
    "compile_program",
    "compile_workload",
    "execute_workload",
    "execute_workload_cached",
    "execute_workload_outcome",
    "obtain_program",
    "program_cache_key",
    "try_compose_from_cache",
]


def build_model(workload: Workload) -> AcceleratorModel | BitFusionAccelerator:
    """Instantiate the platform model a workload targets."""
    # Workload.__post_init__ guarantees config is resolved (or None only for
    # the fixed-configuration temporal platform), so what the fingerprint
    # hashed is exactly what runs here.
    if workload.platform == "bitfusion":
        return BitFusionAccelerator(
            workload.config,
            enable_loop_ordering=workload.enable_loop_ordering,
            enable_layer_fusion=workload.enable_layer_fusion,
        )
    if workload.platform == "eyeriss":
        return EyerissModel(workload.config)
    if workload.platform == "stripes":
        return StripesModel(workload.config)
    if workload.platform == "gpu":
        return GpuModel(workload.config, GpuPrecision(workload.gpu_precision))
    if workload.platform == "temporal":
        return TemporalAcceleratorModel()
    raise ValueError(f"unknown platform {workload.platform!r}")


def execute_workload(workload: Workload) -> NetworkResult:
    """Run one workload end to end through the monolithic ``evaluate`` path.

    This is the uncached reference implementation the staged pipeline is
    checked against: for every workload, the staged result must be
    byte-identical to this one.
    """
    network = load_network(workload)
    model = build_model(workload)
    return model.evaluate(network, batch_size=workload.batch_size)


# ---------------------------------------------------------------------- #
# Stage 1: compile
# ---------------------------------------------------------------------- #
def _require_bitfusion(workload: Workload) -> None:
    if workload.platform != "bitfusion":
        raise ValueError(
            f"only bitfusion workloads compile to Fusion-ISA programs, got {workload.platform!r}"
        )


def compile_program(workload: Workload) -> Program:
    """Compile a Bit Fusion workload to its Fusion-ISA program (stage 1)."""
    _require_bitfusion(workload)
    compiler = FusionCompiler(
        workload.config,
        enable_loop_ordering=workload.enable_loop_ordering,
        enable_layer_fusion=workload.enable_layer_fusion,
    )
    return compiler.compile(load_network(workload), batch_size=workload.batch_size)


def compile_workload(workload: Workload) -> ProgramStats:
    """Compile a Bit Fusion workload and distill its program statistics."""
    return ProgramStats.from_program(compile_program(workload))


def program_cache_key(workload: Workload) -> str:
    """Structure-only cache key of the compile stage.

    Hashes exactly the inputs the compiler reads — the network structure,
    the batch size (the batch folds into the GEMM ``R`` dimension and hence
    the tiling), the scratchpad capacities the tiling search targets, and
    the optimization flags.  Deliberately *excluded*: off-chip bandwidth,
    array geometry, technology node, frequency and the configuration name —
    none of them affect the emitted program, so workloads differing only in
    those share one compiled artifact.
    """
    _require_bitfusion(workload)
    config: BitFusionConfig = workload.config
    return fingerprint_payload(
        {
            "artifact": "program",
            "network": network_digest(workload),
            "batch_size": workload.batch_size,
            "buffers": {
                "ibuf_kb": config.ibuf_kb,
                "wbuf_kb": config.wbuf_kb,
                "obuf_kb": config.obuf_kb,
            },
            "compiler": {
                "enable_loop_ordering": workload.enable_loop_ordering,
                "enable_layer_fusion": workload.enable_layer_fusion,
            },
        }
    )


def obtain_program(
    workload: Workload, cache: ResultCache, stats: CacheStats
) -> tuple[Program, str]:
    """The workload's compiled program, from cache when possible.

    Returns the program and the source it came from (``"memory"``,
    ``"disk"`` or ``"miss"`` for a fresh compilation, which is stored back
    into the cache).
    """
    key = program_cache_key(workload)
    value, source = cache.get_with_source(key)
    if value is not None:
        stats.programs.record_hit(source)
        return value, source
    stats.programs.record_miss()
    program = compile_program(workload)
    cache.put(key, program, {**workload.describe(), "artifact": "program"})
    return program, "miss"


# ---------------------------------------------------------------------- #
# Stage 2: simulate-blocks
# ---------------------------------------------------------------------- #
def _sim_config_payload(config: BitFusionConfig) -> dict[str, Any]:
    """The configuration parameters that affect one block's simulation.

    Everything :meth:`~repro.sim.executor.BitFusionSimulator.run_block`
    reads: array geometry (cycle model and buffer-traffic counts),
    scratchpad capacities and access width (SRAM energy), off-chip bandwidth
    (transfer cycles) and technology node (energy scaling).  Deliberately
    excluded: frequency and the configuration name (composition metadata
    only) and the batch size (already folded into the block's tiling).
    """
    return {
        "rows": config.rows,
        "columns": config.columns,
        "ibuf_kb": config.ibuf_kb,
        "wbuf_kb": config.wbuf_kb,
        "obuf_kb": config.obuf_kb,
        "dram_bandwidth_bits_per_cycle": config.dram_bandwidth_bits_per_cycle,
        "buffer_access_bits": config.buffer_access_bits,
        "technology": asdict(config.technology),
    }


def block_cache_key(block_fingerprint: str, config: BitFusionConfig) -> str:
    """Cache key of one simulated block: block content + sim-affecting config."""
    return fingerprint_payload(
        {
            "artifact": "block",
            "block": block_fingerprint,
            "sim": _sim_config_payload(config),
        }
    )


# ---------------------------------------------------------------------- #
# Stage 3: compose, and the staged drivers
# ---------------------------------------------------------------------- #
def _compose(workload: Workload, program: Program, layers: list[LayerResult]) -> NetworkResult:
    config: BitFusionConfig = workload.config
    return compose_network_result(
        network_name=program.network_name,
        platform=config.name,
        batch_size=workload.batch_size,
        frequency_mhz=config.frequency_mhz,
        layers=layers,
    )


def try_compose_from_cache(
    workload: Workload, cache: ResultCache, stats: CacheStats
) -> tuple[NetworkResult | None, bool]:
    """Compose a workload's result purely from cached artifacts, if possible.

    Returns ``(result, any_artifact_came_from_disk)``; ``(None, False)``
    when the program or any block result is missing (in which case no stage
    counters are touched — the execution path will look the artifacts up
    again and account for them).
    """
    if workload.platform != "bitfusion":
        return None, False
    program, program_source = cache.get_with_source(program_cache_key(workload))
    if program is None:
        return None, False
    found: list[tuple[LayerResult, str]] = []
    for compiled in program:
        key = block_cache_key(compiled.fingerprint(), workload.config)
        value, source = cache.get_with_source(key)
        if value is None:
            return None, False
        found.append((value, source))
    stats.programs.record_hit(program_source)
    from_disk = program_source == "disk"
    for _, source in found:
        stats.blocks.record_hit(source)
        from_disk = from_disk or source == "disk"
    return _compose(workload, program, [layer for layer, _ in found]), from_disk


def execute_workload_cached(
    workload: Workload, cache: ResultCache, stats: CacheStats
) -> NetworkResult:
    """Run one workload through the staged pipeline with per-stage caching.

    Bit Fusion workloads reuse the cached program and every cached block
    result, simulating only the blocks that are genuinely missing; baseline
    platforms fall through to the monolithic path (their whole results are
    cached at the workload level by the session).
    """
    if workload.platform != "bitfusion":
        return execute_workload(workload)
    program, _ = obtain_program(workload, cache, stats)
    simulator: BitFusionSimulator | None = None
    layers: list[LayerResult] = []
    for compiled in program:
        key = block_cache_key(compiled.fingerprint(), workload.config)
        value, source = cache.get_with_source(key)
        if value is None:
            stats.blocks.record_miss()
            if simulator is None:
                simulator = BitFusionSimulator(workload.config)
            value = simulator.run_block(compiled)
            cache.put(
                key, value, {**workload.describe(), "artifact": "block", "block": compiled.name}
            )
        else:
            stats.blocks.record_hit(source)
        layers.append(value)
    return _compose(workload, program, layers)


@dataclass(frozen=True)
class StagedArtifacts:
    """The cacheable artifacts one staged execution produced."""

    program_key: str
    program: Program
    block_keys: tuple[str, ...]
    layers: tuple[LayerResult, ...]


@dataclass(frozen=True)
class WorkloadOutcome:
    """A worker's return value: the result plus any staged artifacts."""

    result: NetworkResult
    artifacts: StagedArtifacts | None


def execute_workload_outcome(workload: Workload) -> WorkloadOutcome:
    """Run one workload and return its result together with its artifacts.

    This is the function process-pool workers execute: it is cache-free
    (worker processes share no state), but it hands every intermediate
    artifact back so the session can populate its two-level cache exactly
    as an in-process staged execution would.
    """
    if workload.platform != "bitfusion":
        return WorkloadOutcome(result=execute_workload(workload), artifacts=None)
    program = compile_program(workload)
    simulator = BitFusionSimulator(workload.config)
    layers = tuple(simulator.run_blocks(program))
    block_keys = tuple(
        block_cache_key(compiled.fingerprint(), workload.config) for compiled in program
    )
    return WorkloadOutcome(
        result=_compose(workload, program, list(layers)),
        artifacts=StagedArtifacts(
            program_key=program_cache_key(workload),
            program=program,
            block_keys=block_keys,
            layers=layers,
        ),
    )
