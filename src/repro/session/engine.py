"""Workload execution: build the platform model and run or compile it.

These are module-level functions (not session methods) so a
``ProcessPoolExecutor`` can pickle the workload, execute it in a worker
process and ship the :class:`~repro.sim.results.NetworkResult` back.  All
simulations are deterministic, so a result computed in a worker process is
bit-identical to one computed inline.
"""

from __future__ import annotations

from repro.baselines.base import AcceleratorModel
from repro.baselines.eyeriss import EyerissModel
from repro.baselines.gpu import GpuModel, GpuPrecision
from repro.baselines.stripes import StripesModel
from repro.baselines.temporal import TemporalAcceleratorModel
from repro.core.accelerator import BitFusionAccelerator
from repro.isa.compiler import FusionCompiler
from repro.session.cache import ProgramStats
from repro.session.workload import Workload, load_network
from repro.sim.results import NetworkResult

__all__ = ["build_model", "execute_workload", "compile_workload"]


def build_model(workload: Workload) -> AcceleratorModel | BitFusionAccelerator:
    """Instantiate the platform model a workload targets."""
    # Workload.__post_init__ guarantees config is resolved (or None only for
    # the fixed-configuration temporal platform), so what the fingerprint
    # hashed is exactly what runs here.
    if workload.platform == "bitfusion":
        return BitFusionAccelerator(
            workload.config,
            enable_loop_ordering=workload.enable_loop_ordering,
            enable_layer_fusion=workload.enable_layer_fusion,
        )
    if workload.platform == "eyeriss":
        return EyerissModel(workload.config)
    if workload.platform == "stripes":
        return StripesModel(workload.config)
    if workload.platform == "gpu":
        return GpuModel(workload.config, GpuPrecision(workload.gpu_precision))
    if workload.platform == "temporal":
        return TemporalAcceleratorModel()
    raise ValueError(f"unknown platform {workload.platform!r}")


def execute_workload(workload: Workload) -> NetworkResult:
    """Run one workload end to end (network load, model build, simulate)."""
    network = load_network(workload)
    model = build_model(workload)
    return model.evaluate(network, batch_size=workload.batch_size)


def compile_workload(workload: Workload) -> ProgramStats:
    """Compile a Bit Fusion workload and distill its program statistics."""
    if workload.platform != "bitfusion":
        raise ValueError(
            f"only bitfusion workloads compile to Fusion-ISA programs, got {workload.platform!r}"
        )
    compiler = FusionCompiler(
        workload.config,
        enable_loop_ordering=workload.enable_loop_ordering,
        enable_layer_fusion=workload.enable_layer_fusion,
    )
    network = load_network(workload)
    program = compiler.compile(network, batch_size=workload.batch_size)
    counts = tuple(len(compiled.block) for compiled in program)
    return ProgramStats(
        network_name=network.name,
        block_instruction_counts=counts,
        total_instructions=program.total_instructions(),
        binary_bytes=program.total_binary_bytes(),
    )
