"""Staged workload execution: compile → simulate-blocks → compose.

This module is the seam between :class:`~repro.session.session.
EvaluationSession` and the platform models.  Bit Fusion workloads run
through an explicit three-stage pipeline with a cacheable artifact at every
seam:

1. **compile** — lower the network to a Fusion-ISA
   :class:`~repro.isa.program.Program`.  The artifact is keyed by a
   *structure-only* fingerprint (:func:`program_cache_key`): network
   structure, batch size, scratchpad capacities and compiler flags — the
   only inputs the compiler reads.  A sweep that varies off-chip bandwidth
   (or any other simulation-only parameter) therefore reuses one compiled
   program across all its points.
2. **simulate-blocks** — run each instruction block independently through
   :class:`~repro.sim.executor.BitFusionSimulator` into a serializable
   :class:`~repro.sim.results.LayerResult`, keyed by the block fingerprint
   plus the simulation-affecting configuration (:func:`block_cache_key`).
   Blocks whose cycle/energy inputs are unchanged are never re-simulated.
3. **compose** — assemble the per-block results into a
   :class:`~repro.sim.results.NetworkResult`
   (:func:`~repro.sim.results.compose_network_result`).  Composition is
   pure, so a result composed from cached artifacts is byte-identical to a
   fresh monolithic simulation.

The simulate stage resolves each block through **two cache levels**: the
block key (:func:`block_cache_key`, block content fingerprint + sim config)
and, on a miss, the content-addressed **layer key**
(:func:`layer_cache_key`, the *name-free* layer fingerprint + sim config).
The layer level is what dedupes identical (layer, tiling) pairs across
different networks in model-family sweeps; a record found through it is
renamed to the requesting block before use, so composition stays
byte-identical.

Baseline platforms (Eyeriss, Stripes, GPUs, the temporal design) have no
compile stage; they run as a single simulate step and cache whole results.

Parallel execution is **warm-artifact aware**.  The main process plans each
uncached workload against the cache (:func:`plan_workload`): it compiles
centrally through the program cache (structure-only keys, exactly-once per
network), resolves every block whose result is already cached, and ships a
worker a :class:`WorkUnit` carrying the program *sliced down to the
genuinely missing blocks* (plus their full-program indices).  Workers
(:func:`execute_work_unit`) simulate just those blocks and return
:class:`WorkResult`\\ s; the main process stores the fresh records and
composes (:func:`compose_plan`).  Worker failures never poison the pool
batch: they come back as error strings carrying the workload's label, and
:class:`~repro.session.session.EvaluationSession` raises a
:class:`WorkloadExecutionError` only after every surviving result is
stored.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, replace
from functools import lru_cache
from typing import Any, Callable, NamedTuple, Protocol, Sequence

from repro.baselines.base import AcceleratorModel
from repro.baselines.eyeriss import EyerissModel
from repro.baselines.gpu import GpuModel, GpuPrecision
from repro.baselines.stripes import StripesModel
from repro.baselines.temporal import TemporalAcceleratorModel
from repro.core.accelerator import BitFusionAccelerator
from repro.core.config import BitFusionConfig
from repro.fingerprint import fingerprint_payload
from repro.isa.compiler import FusionCompiler, PlanResolver
from repro.isa.instructions import LoopOrder
from repro.isa.program import CompiledBlock, Program
from repro.isa.tiling import GemmWorkload, TilingPlan
from repro.session import testing
from repro.session.cache import CacheStats, ProgramStats, ResultCache
from repro.session.workload import Workload, load_network, network_digest
from repro.sim.batched import simulate_blocks_grid
from repro.sim.executor import BitFusionSimulator
from repro.sim.results import LayerResult, NetworkResult, compose_network_result

__all__ = [
    "CacheAudit",
    "PlanLike",
    "QuarantineRecord",
    "WorkPlan",
    "WorkResult",
    "WorkUnit",
    "WorkloadExecutionError",
    "audit_workload_cache",
    "build_model",
    "block_cache_key",
    "compile_program",
    "compile_workload",
    "compose_plan",
    "describe_workload_error",
    "execute_work_unit",
    "execute_workload",
    "execute_workload_cached",
    "layer_cache_key",
    "make_plan_resolver",
    "obtain_program",
    "plan_workload",
    "program_cache_key",
    "program_content_key",
    "simulate_planned_blocks",
    "simulator_for",
    "store_block_result",
    "store_layer_record",
    "tiling_cache_key",
    "try_compose_from_cache",
]


def build_model(workload: Workload) -> AcceleratorModel | BitFusionAccelerator:
    """Instantiate the platform model a workload targets."""
    # Workload.__post_init__ guarantees config is resolved (or None only for
    # the fixed-configuration temporal platform), so what the fingerprint
    # hashed is exactly what runs here.
    if workload.platform == "bitfusion":
        return BitFusionAccelerator(
            workload.config,
            enable_loop_ordering=workload.enable_loop_ordering,
            enable_layer_fusion=workload.enable_layer_fusion,
        )
    if workload.platform == "eyeriss":
        return EyerissModel(workload.config)
    if workload.platform == "stripes":
        return StripesModel(workload.config)
    if workload.platform == "gpu":
        return GpuModel(workload.config, GpuPrecision(workload.gpu_precision))
    if workload.platform == "temporal":
        return TemporalAcceleratorModel()
    raise ValueError(f"unknown platform {workload.platform!r}")


def execute_workload(workload: Workload) -> NetworkResult:
    """Run one workload end to end through the monolithic ``evaluate`` path.

    This is the uncached reference implementation the staged pipeline is
    checked against: for every workload, the staged result must be
    byte-identical to this one.
    """
    network = load_network(workload)
    model = build_model(workload)
    return model.evaluate(network, batch_size=workload.batch_size)


# ---------------------------------------------------------------------- #
# Stage 1: compile
# ---------------------------------------------------------------------- #
def _require_bitfusion(workload: Workload) -> None:
    if workload.platform != "bitfusion":
        raise ValueError(
            f"only bitfusion workloads compile to Fusion-ISA programs, got {workload.platform!r}"
        )


def tiling_cache_key(
    gemm: GemmWorkload, orders: tuple[LoopOrder, ...], config: BitFusionConfig
) -> str:
    """Cache key of one tiling search: GEMM content + orders + buffer geometry.

    Hashes exactly the search's inputs — the GEMM shape and operand
    bitwidths (:meth:`~repro.isa.tiling.GemmWorkload.to_dict`), the loop
    orders considered (the ``enable_loop_ordering`` flag in disguise, so an
    ablation run never shares plans with an optimized one) and the
    scratchpad capacities the search targets.  Deliberately *excluded*:
    array geometry, bandwidth, technology, frequency, batch size (already
    folded into the GEMM ``R`` dimension) and the network/layer names —
    duplicate GEMM shapes within a network, across networks and across
    sweep points that share buffer geometry all collapse onto one entry.
    """
    return fingerprint_payload(
        {
            "artifact": "tiling",
            "gemm": gemm.to_dict(),
            "orders": [order.value for order in orders],
            "buffers": {
                "ibuf_kb": config.ibuf_kb,
                "wbuf_kb": config.wbuf_kb,
                "obuf_kb": config.obuf_kb,
            },
        }
    )


def make_plan_resolver(
    config: BitFusionConfig, cache: ResultCache, stats: CacheStats
) -> PlanResolver:
    """A compiler plan resolver backed by the session's artifact cache.

    Installed into :class:`~repro.isa.compiler.FusionCompiler` by
    :func:`compile_program`: every tiling search first consults the cache
    under :func:`tiling_cache_key` and only runs (then stores its plan) on
    a genuine miss.  Hit/miss traffic lands in ``stats.tilings``.
    """

    def resolve(
        gemm: GemmWorkload,
        orders: tuple[LoopOrder, ...],
        compute: Callable[[], TilingPlan],
    ) -> TilingPlan:
        key = tiling_cache_key(gemm, orders, config)
        value, source = cache.get_with_source(key)
        if value is not None:
            stats.tilings.record_hit(source)
            return value
        stats.tilings.record_miss()
        plan = compute()
        cache.put(key, plan, {"artifact": "tiling", "gemm": gemm.to_dict()})
        return plan

    return resolve


def compile_program(
    workload: Workload,
    cache: ResultCache | None = None,
    stats: CacheStats | None = None,
) -> Program:
    """Compile a Bit Fusion workload to its Fusion-ISA program (stage 1).

    With a ``cache`` (and ``stats``), the compiler's tiling searches are
    memoized through the cache's ``tiling`` level — duplicate GEMM shapes
    skip the search entirely, and plans persist to disk alongside the other
    artifacts.  Memoized and unmemoized compilations emit byte-identical
    programs (plans serialize losslessly).
    """
    _require_bitfusion(workload)
    resolver: PlanResolver | None = None
    if cache is not None:
        resolver = make_plan_resolver(workload.config, cache, stats or CacheStats())
    compiler = FusionCompiler(
        workload.config,
        enable_loop_ordering=workload.enable_loop_ordering,
        enable_layer_fusion=workload.enable_layer_fusion,
        plan_resolver=resolver,
    )
    return compiler.compile(load_network(workload), batch_size=workload.batch_size)


def compile_workload(workload: Workload) -> ProgramStats:
    """Compile a Bit Fusion workload and distill its program statistics."""
    return ProgramStats.from_program(compile_program(workload))


def program_content_key(
    network_fingerprint: str,
    batch_size: int,
    config: BitFusionConfig,
    enable_loop_ordering: bool = True,
    enable_layer_fusion: bool = True,
) -> str:
    """Structure-only compile-stage key from its raw inputs.

    The payload is exactly :func:`program_cache_key`'s, but built from a
    network fingerprint instead of a zoo-registered :class:`Workload` — this
    is what lets the NAS estimator (:mod:`repro.nas`) price arbitrary
    candidate networks while sharing compiled-program entries with ordinary
    session runs: a zoo network keyed here and keyed through a workload
    lands on the same entry by construction.
    """
    return fingerprint_payload(
        {
            "artifact": "program",
            "network": network_fingerprint,
            "batch_size": batch_size,
            "buffers": {
                "ibuf_kb": config.ibuf_kb,
                "wbuf_kb": config.wbuf_kb,
                "obuf_kb": config.obuf_kb,
            },
            "compiler": {
                "enable_loop_ordering": enable_loop_ordering,
                "enable_layer_fusion": enable_layer_fusion,
            },
        }
    )


def program_cache_key(workload: Workload) -> str:
    """Structure-only cache key of the compile stage.

    Hashes exactly the inputs the compiler reads — the network structure,
    the batch size (the batch folds into the GEMM ``R`` dimension and hence
    the tiling), the scratchpad capacities the tiling search targets, and
    the optimization flags.  Deliberately *excluded*: off-chip bandwidth,
    array geometry, technology node, frequency and the configuration name —
    none of them affect the emitted program, so workloads differing only in
    those share one compiled artifact.
    """
    _require_bitfusion(workload)
    return program_content_key(
        network_digest(workload),
        workload.batch_size,
        workload.config,
        workload.enable_loop_ordering,
        workload.enable_layer_fusion,
    )


def obtain_program(
    workload: Workload, cache: ResultCache, stats: CacheStats
) -> tuple[Program, str]:
    """The workload's compiled program, from cache when possible.

    Returns the program and the source it came from (``"memory"``,
    ``"disk"`` or ``"miss"`` for a fresh compilation, which is stored back
    into the cache).
    """
    key = program_cache_key(workload)
    value, source = cache.get_with_source(key)
    if value is not None:
        stats.programs.record_hit(source)
        return value, source
    stats.programs.record_miss()
    started = time.perf_counter()
    program = compile_program(workload, cache, stats)
    stats.compile_seconds += time.perf_counter() - started
    cache.put(key, program, {**workload.describe(), "artifact": "program"})
    return program, "miss"


# ---------------------------------------------------------------------- #
# Stage 2: simulate-blocks
# ---------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def _build_simulator(
    simulator_cls: type[BitFusionSimulator], config: BitFusionConfig
) -> BitFusionSimulator:
    return simulator_cls(config)


def simulator_for(config: BitFusionConfig) -> BitFusionSimulator:
    """The (memoized) simulator instance for one configuration.

    Building a :class:`~repro.sim.executor.BitFusionSimulator` re-derives
    the per-component energy models (SRAM bank sizing, technology scaling)
    every time; memoizing per configuration means pool workers — and the
    serial path — stop rebuilding identical model state once per workload.
    ``BitFusionConfig`` is frozen/hashable and the simulator is stateless,
    so sharing instances is safe.  The module-global class is resolved at
    call time (and is part of the memo key), so tests that monkeypatch
    ``engine.BitFusionSimulator`` get their own entries.

    Fault-injection seam: when a test installed a simulator wrapper
    (:mod:`repro.session.testing`), the memoized instance is passed through
    it — the wrapper's proxy (not the instance) is what callers receive, so
    chaos tests can fail or delay individual block simulations without
    touching the memo.
    """
    simulator = _build_simulator(BitFusionSimulator, config)
    wrapper = testing.simulator_wrapper()
    if wrapper is not None:
        return wrapper(config, simulator)
    return simulator


@lru_cache(maxsize=None)
def _sim_config_payload(config: BitFusionConfig) -> dict[str, Any]:
    """The configuration parameters that affect one block's simulation.

    Everything :meth:`~repro.sim.executor.BitFusionSimulator.run_block`
    reads: array geometry (cycle model and buffer-traffic counts),
    scratchpad capacities and access width (SRAM energy), off-chip bandwidth
    (transfer cycles) and technology node (energy scaling).  Deliberately
    excluded: frequency and the configuration name (composition metadata
    only) and the batch size (already folded into the block's tiling).

    Memoized per configuration (``BitFusionConfig`` is frozen, hence
    hashable): the payload rides every block- and layer-level cache key,
    once per block per lookup.  Callers never mutate the returned dict —
    it feeds straight into :func:`~repro.fingerprint.fingerprint_payload`.
    """
    return {
        "rows": config.rows,
        "columns": config.columns,
        "ibuf_kb": config.ibuf_kb,
        "wbuf_kb": config.wbuf_kb,
        "obuf_kb": config.obuf_kb,
        "dram_bandwidth_bits_per_cycle": config.dram_bandwidth_bits_per_cycle,
        "buffer_access_bits": config.buffer_access_bits,
        "technology": asdict(config.technology),
    }


@lru_cache(maxsize=None)
def block_cache_key(block_fingerprint: str, config: BitFusionConfig) -> str:
    """Cache key of one simulated block: block content + sim-affecting config.

    Memoized: both inputs are hashable and the key is pure, and the NAS
    estimator's warm path (:mod:`repro.nas`) resolves every block of every
    candidate through this key — re-hashing the sim-config payload per
    lookup would dominate a fully-cached estimate.
    """
    return fingerprint_payload(
        {
            "artifact": "block",
            "block": block_fingerprint,
            "sim": _sim_config_payload(config),
        }
    )


@lru_cache(maxsize=None)
def _layer_content_key(layer_fingerprint: str, config: BitFusionConfig) -> str:
    return fingerprint_payload(
        {
            "artifact": "layer",
            "layer": layer_fingerprint,
            "sim": _sim_config_payload(config),
        }
    )


def layer_cache_key(compiled: CompiledBlock, config: BitFusionConfig) -> str:
    """Content-addressed cache key of one simulated layer.

    Unlike :func:`block_cache_key`, the layer key hashes the block's
    *name-free* content (:meth:`~repro.isa.program.CompiledBlock.
    layer_fingerprint`): identical (layer shape, bitwidths, tiling,
    instruction image) pairs collapse onto one key no matter which network —
    or which layer name within a network — produced them.  Block-level
    lookups fall back to this key on a miss, which is what dedupes
    simulations across the model-family sweeps the paper's benchmark suite
    is full of.  Memoized like :func:`block_cache_key` (the layer
    fingerprint is itself memoized on the block instance).
    """
    return _layer_content_key(compiled.layer_fingerprint(), config)


def lookup_block(
    compiled: CompiledBlock, config: BitFusionConfig, cache: ResultCache
) -> tuple[LayerResult | None, str | None, str]:
    """Resolve one block's simulated result through both cache levels.

    Tries the block key first, then falls back to the content-addressed
    layer key.  Returns ``(value, level, source)`` where ``level`` is
    ``"block"`` or ``"layer"`` (``None`` on a miss) and ``source`` is
    ``"memory"``/``"disk"``/``"miss"``.  A layer-level hit is renamed to the
    requesting block and promoted into memory under the block key (memory
    only — the layer-level entry already persists the payload), so repeat
    lookups skip the fallback.  No statistics are recorded here; callers
    account for hits and misses in their own stage counters.
    """
    block_key = block_cache_key(compiled.fingerprint(), config)
    value, source = cache.get_with_source(block_key)
    if value is not None:
        return value, "block", source
    layer_key = layer_cache_key(compiled, config)
    value, source = cache.get_with_source(layer_key)
    if value is None:
        return None, None, "miss"
    value = replace(value, name=compiled.name)
    cache.put(block_key, value, persist=False)
    # The promoted block key has no manifest entry of its own (the payload
    # persists under the layer key), so route its recency touches to the
    # backing layer entry — otherwise a hot shared layer served through
    # promoted block keys looks LRU-coldest on disk and is evicted first.
    cache.alias(block_key, layer_key)
    return value, "layer", source


def prefetch_block_artifacts(
    program: Program, config: BitFusionConfig, cache: ResultCache
) -> None:
    """Bulk-stage a program's block-level artifacts: one index pass.

    Resolves every block key through :meth:`ResultCache.prefetch`, then
    the content-addressed layer keys of only the blocks whose block-keyed
    entry is absent — exactly the records the per-block
    :func:`lookup_block` loop that follows would read one at a time.  A
    no-op (``prefetch`` returns ``None``) on json and memory-only caches,
    where there is no bulk read to exploit; lookup semantics and statistics
    are identical either way.
    """
    block_keys = [
        block_cache_key(compiled.fingerprint(), config) for compiled in program
    ]
    missing = cache.prefetch(block_keys)
    if missing:
        cache.prefetch(
            layer_cache_key(compiled, config)
            for compiled, block_key in zip(program, block_keys)
            if block_key in missing
        )


def store_layer_record(
    cache: ResultCache,
    config: BitFusionConfig,
    compiled: CompiledBlock,
    layer: LayerResult,
    description: dict[str, Any] | None = None,
) -> None:
    """Store one freshly simulated block under both cache levels.

    The block-keyed entry serves exact repeats; the layer-keyed entry (name
    normalized away, so the stored payload is independent of which network
    asked first) serves any block with identical layer content.  Takes the
    raw configuration rather than a :class:`Workload` so callers pricing
    arbitrary networks (the NAS estimator) insert records the same way
    session runs do.
    """
    description = description or {}
    cache.put(
        block_cache_key(compiled.fingerprint(), config),
        layer,
        {**description, "artifact": "block", "block": compiled.name},
    )
    cache.put(
        layer_cache_key(compiled, config),
        replace(layer, name=""),
        {**description, "artifact": "layer", "block": compiled.name},
        kind="layer",
    )


def store_block_result(
    cache: ResultCache, workload: Workload, compiled: CompiledBlock, layer: LayerResult
) -> None:
    """Store one freshly simulated workload block (:func:`store_layer_record`)."""
    store_layer_record(cache, workload.config, compiled, layer, workload.describe())


# ---------------------------------------------------------------------- #
# Stage 3: compose, and the staged drivers
# ---------------------------------------------------------------------- #
def _compose(workload: Workload, program: Program, layers: list[LayerResult]) -> NetworkResult:
    config: BitFusionConfig = workload.config
    return compose_network_result(
        network_name=program.network_name,
        platform=config.name,
        batch_size=workload.batch_size,
        frequency_mhz=config.frequency_mhz,
        layers=layers,
    )


def try_compose_from_cache(
    workload: Workload, cache: ResultCache, stats: CacheStats
) -> tuple[NetworkResult | None, bool]:
    """Compose a workload's result purely from cached artifacts, if possible.

    Returns ``(result, any_artifact_came_from_disk)``; ``(None, False)``
    when the program or any block result is missing (in which case no stage
    counters are touched — the execution path will look the artifacts up
    again and account for them).
    """
    if workload.platform != "bitfusion":
        return None, False
    program, program_source = cache.get_with_source(program_cache_key(workload))
    if program is None:
        return None, False
    prefetch_block_artifacts(program, workload.config, cache)
    found: list[tuple[LayerResult, str, str]] = []
    for compiled in program:
        value, level, source = lookup_block(compiled, workload.config, cache)
        if value is None:
            return None, False
        found.append((value, level, source))
    stats.programs.record_hit(program_source)
    from_disk = program_source == "disk"
    for _, level, source in found:
        (stats.blocks if level == "block" else stats.layers).record_hit(source)
        from_disk = from_disk or source == "disk"
    return _compose(workload, program, [layer for layer, _, _ in found]), from_disk


class CacheAudit(NamedTuple):
    """One workload's read-only cache diff (:func:`audit_workload_cache`)."""

    state: str
    missing_blocks: int
    total_blocks: int
    #: Of the tiling searches compiling this workload would request, how
    #: many the tiling memo already holds.  Only non-zero for ``"cold"``
    #: Bit Fusion workloads — a cached program never searches again.
    tilings_cached: int
    tilings_total: int


def _audit_tilings(workload: Workload, cache: ResultCache) -> tuple[int, int]:
    """How many of a cold workload's tiling searches the memo already holds.

    The searches a compilation *would* run are derivable without searching
    (:meth:`~repro.isa.compiler.FusionCompiler.tiling_requests` — fusion
    grouping plus GEMM-shape lowering, no instruction emission), so a cold
    workload whose GEMM shapes another sweep point already planned shows up
    in a ``--dry-run`` as mostly-memoized compile work rather than as fully
    cold.
    """
    compiler = FusionCompiler(
        workload.config,
        enable_loop_ordering=workload.enable_loop_ordering,
        enable_layer_fusion=workload.enable_layer_fusion,
    )
    requests = compiler.tiling_requests(
        load_network(workload), batch_size=workload.batch_size
    )
    cached = sum(
        1
        for gemm, orders in requests
        if tiling_cache_key(gemm, orders, workload.config) in cache
    )
    return cached, len(requests)


def audit_workload_cache(workload: Workload, cache: ResultCache) -> CacheAudit:
    """How much of one workload's work the cache already holds (read-only).

    Returns a :class:`CacheAudit` whose ``state`` is

    * ``"cached"`` — the workload would execute without any fresh work: a
      whole result is stored (baselines), or every artifact needed to
      compose one is (Bit Fusion: program plus all block/layer results);
    * ``"partial"`` — the compiled program is cached but
      ``missing_blocks`` of its ``total_blocks`` blocks would simulate;
    * ``"cold"`` — no program artifact is cached (``total_blocks`` is 0
      because without the program the block count is unknown without
      compiling — which an audit must never do).  A cold Bit Fusion
      workload still reports ``tilings_cached`` of ``tilings_total``: the
      tiling searches its compilation would request (derivable from the
      network structure alone, no search run) that the persistent tiling
      memo would serve — so a grid sharing GEMM shapes with earlier runs
      is never misreported as entirely unstarted.

    No statistics are recorded and nothing executes.  Only the program
    payload is read (its blocks are needed to derive the block/layer
    keys); block, layer and tiling records are probed for *existence*
    without deserializing or memory-promoting them, so auditing a planned
    grid against a large cache directory stays cheap — ``python -m
    repro.harness sweep --dry-run`` uses this to diff a grid against a
    ``--cache-dir`` before committing to the run, and ``sweep --resume``
    uses it to double-check journaled completions against the artifacts.
    """
    if workload.fingerprint() in cache:
        return CacheAudit("cached", 0, 0, 0, 0)
    if workload.platform != "bitfusion":
        return CacheAudit("cold", 0, 0, 0, 0)
    program = cache.get(program_cache_key(workload))
    if program is None:
        cached, total = _audit_tilings(workload, cache)
        return CacheAudit("cold", 0, 0, cached, total)
    missing = 0
    for compiled in program:
        if (
            block_cache_key(compiled.fingerprint(), workload.config) not in cache
            and layer_cache_key(compiled, workload.config) not in cache
        ):
            missing += 1
    state = "cached" if missing == 0 else "partial"
    return CacheAudit(state, missing, len(program), 0, 0)


def execute_workload_cached(
    workload: Workload, cache: ResultCache, stats: CacheStats
) -> NetworkResult:
    """Run one workload through the staged pipeline with per-stage caching.

    Bit Fusion workloads reuse the cached program and every cached block
    result; the genuinely missing blocks simulate in one batched call
    (:func:`simulate_planned_blocks`).  Baseline platforms fall through to
    the monolithic path (their whole results are cached at the workload
    level by the session).
    """
    if workload.platform != "bitfusion":
        return execute_workload(workload)
    plan = plan_workload(workload, cache, stats, set())
    started = time.perf_counter()
    remote = simulate_planned_blocks([plan])[0]
    stats.sim_seconds += time.perf_counter() - started
    return compose_plan(plan, remote, cache, stats)


# ---------------------------------------------------------------------- #
# The cache-aware parallel worker protocol
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QuarantineRecord:
    """One workload set aside after failing its execution *and* its retry."""

    fingerprint: str
    label: str
    error: str


class WorkloadExecutionError(RuntimeError):
    """One or more workloads of a batch failed their execution and retry.

    Raised by :meth:`EvaluationSession.run_many
    <repro.session.session.EvaluationSession.run_many>` *after* every
    surviving result and artifact has been stored — a failed workload is
    retried exactly once and, if the retry fails too, quarantined; the rest
    of the batch always completes, so a single bad workload costs the batch
    nothing but its own point.  :attr:`failures` carries one message per
    quarantined workload, each naming the workload it came from;
    :attr:`quarantined` carries the same failures as structured
    :class:`QuarantineRecord`\\ s (fingerprint, label, final error).
    """

    def __init__(
        self,
        failures: list[str],
        quarantined: tuple[QuarantineRecord, ...] = (),
    ) -> None:
        self.failures = tuple(failures)
        self.quarantined = quarantined
        details = "; ".join(failures)
        super().__init__(
            f"{len(failures)} workload(s) failed during parallel execution: {details}"
        )


def describe_workload_error(workload: Workload, error: BaseException) -> str:
    """The labelled one-line error message a failed workload reports.

    One format everywhere — worker replies, serial-path failures, retry
    failures and quarantine records all describe a failure the same way, so
    footer greps and :class:`WorkloadExecutionError` assertions never depend
    on which execution path hit the fault.
    """
    return f"workload {workload.label()}: {type(error).__name__}: {error}"


@dataclass(frozen=True)
class WorkUnit:
    """What the main process ships a pool worker: just the missing blocks.

    ``program_payload`` is a *slice* of the centrally compiled (or
    cache-restored) program — ``Program.to_dict`` shape, but its ``blocks``
    list holds only the blocks at ``simulate_indices`` (in that order), so
    a wide, mostly-warm sweep never pickles the blocks the cache already
    resolved.  Workers rebuild the slice with ``Program.from_dict`` and
    simulate every shipped block; block simulation is independent, so a
    sliced program simulates exactly like the full artifact would.
    ``simulate_indices`` keeps the blocks' positions in the *full* program —
    the reply is keyed by them so the main process can compose.  Baseline
    workloads ship with ``program_payload=None`` and execute whole.

    The NAS estimator ships *anonymous* units (``workload=None``): a
    candidate plan has no :class:`Workload`, so the simulation
    configuration rides along explicitly in ``config`` and
    :attr:`sim_config` resolves whichever of the two is present.
    """

    workload: Workload | None
    program_payload: dict[str, Any] | None
    simulate_indices: tuple[int, ...] = ()
    config: Any = None

    @property
    def sim_config(self) -> Any:
        """The simulation configuration, from the workload or ``config``."""
        return self.workload.config if self.workload is not None else self.config


@dataclass(frozen=True)
class WorkResult:
    """A worker's reply: the missing block results, or a whole result.

    Exactly one of three shapes: ``layers`` holds ``(index, LayerResult)``
    pairs for a Bit Fusion unit, ``result`` a whole ``NetworkResult`` for a
    baseline unit, and ``error`` a message (carrying the workload's label)
    when execution raised — workers never let an exception escape into
    ``ProcessPoolExecutor.map``, which would abort the entire batch.

    ``compile_seconds`` and ``sim_seconds`` carry the worker-side wall time
    of program reconstruction and block simulation so the session can fold
    remote work into its per-stage timing statistics.  ``worker_id`` names
    who did the work (a pool worker's pid, a remote worker's address) for
    the footer's per-worker unit counts.
    """

    layers: tuple[tuple[int, LayerResult], ...] = ()
    result: NetworkResult | None = None
    error: str | None = None
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    worker_id: str = ""


def execute_work_unit(unit: WorkUnit) -> WorkResult:
    """Run one work unit in a pool worker process.

    Failures are converted into :attr:`WorkResult.error` strings instead of
    raised, so one bad workload cannot poison the pool batch.

    Fault-injection seam: a work-unit wrapper installed through
    :mod:`repro.session.testing` intercepts the call — it can return a
    fabricated failure reply, delay, or raise to model a crashed worker.
    The hook lives in the installing process only; real pool workers never
    see it, so tests that exercise it run inline (``jobs=1`` or an in-process
    pool).
    """
    wrapper = testing.work_unit_wrapper()
    if wrapper is not None:
        return wrapper(unit, _execute_work_unit)
    return _execute_work_unit(unit)


def _execute_work_unit(unit: WorkUnit) -> WorkResult:
    worker_id = f"pid-{os.getpid()}"
    try:
        if unit.program_payload is None:
            if unit.workload is None:
                raise ValueError("anonymous work unit carries no program payload")
            started = time.perf_counter()
            result = execute_workload(unit.workload)
            return WorkResult(
                result=result,
                sim_seconds=time.perf_counter() - started,
                worker_id=worker_id,
            )
        # The payload is sliced to exactly the missing blocks; simulate all
        # of them and map the results back to their full-program indices.
        started = time.perf_counter()
        program = Program.from_dict(unit.program_payload)
        compile_seconds = time.perf_counter() - started
        simulator = simulator_for(unit.sim_config)
        started = time.perf_counter()
        layers = simulator.run_selected_blocks(program, range(len(program)))
        sim_seconds = time.perf_counter() - started
        return WorkResult(
            layers=tuple(zip(unit.simulate_indices, layers)),
            compile_seconds=compile_seconds,
            sim_seconds=sim_seconds,
            worker_id=worker_id,
        )
    except Exception as error:  # noqa: BLE001 — must not escape into pool.map
        if unit.workload is None:
            message = f"candidate work unit: {type(error).__name__}: {error}"
        else:
            message = describe_workload_error(unit.workload, error)
        return WorkResult(error=message, worker_id=worker_id)


class PlanLike(Protocol):
    """What :func:`simulate_planned_blocks` needs from a plan.

    Satisfied by :class:`WorkPlan` and by the NAS estimator's candidate
    plans (:mod:`repro.nas.estimator`), which carry no :class:`Workload`.
    """

    @property
    def program(self) -> Program | None: ...

    @property
    def simulate_indices(self) -> tuple[int, ...]: ...

    @property
    def config(self) -> BitFusionConfig: ...


@dataclass(frozen=True)
class WorkPlan:
    """The main process's cache-resolution plan for one pending workload.

    ``cached_layers`` maps block index → result resolved at plan time;
    ``simulate_indices`` are the blocks a worker must simulate;
    ``deferred_indices`` are blocks whose key an earlier workload of the
    same batch already claimed — their results are read from the cache at
    compose time, after the claiming unit has been stored.
    """

    workload: Workload
    program: Program | None
    cached_layers: dict[int, LayerResult]
    simulate_indices: tuple[int, ...]
    deferred_indices: tuple[int, ...]

    @property
    def config(self) -> BitFusionConfig:
        """The simulation configuration — the duck-typed plan interface.

        :func:`simulate_planned_blocks` reads only ``program``,
        ``simulate_indices`` and ``config`` from a plan, so the NAS
        estimator's workload-free candidate plans batch through the same
        executor.
        """
        return self.workload.config

    @property
    def needs_worker(self) -> bool:
        return self.program is None or bool(self.simulate_indices)

    def work_unit(self) -> WorkUnit:
        """The unit to ship: the program sliced to only the missing blocks.

        Slicing keeps pickle traffic proportional to the genuinely missing
        work instead of the whole program — on a wide, mostly-warm parallel
        sweep the difference is most of the payload.
        """
        if self.program is None:
            return WorkUnit(workload=self.workload, program_payload=None)
        blocks = self.program.blocks
        payload = {
            "network_name": self.program.network_name,
            "blocks": [blocks[index].to_dict() for index in self.simulate_indices],
        }
        return WorkUnit(
            workload=self.workload,
            program_payload=payload,
            simulate_indices=self.simulate_indices,
        )


def plan_workload(
    workload: Workload, cache: ResultCache, stats: CacheStats, claimed: set[str]
) -> WorkPlan:
    """Plan one pending workload: compile centrally, resolve warm blocks.

    Compilation goes through the program cache (structure-only key), so a
    batch sharing a network compiles it exactly once in the main process.
    Every block is then resolved through both cache levels; only genuinely
    missing blocks are scheduled for remote simulation.  ``claimed`` tracks
    block keys already scheduled by earlier workloads of the same batch —
    duplicates are deferred to compose time instead of being simulated
    twice, which keeps the reported stage statistics identical to a serial
    run.
    """
    if workload.platform != "bitfusion":
        return WorkPlan(
            workload=workload,
            program=None,
            cached_layers={},
            simulate_indices=(),
            deferred_indices=(),
        )
    program, _ = obtain_program(workload, cache, stats)
    prefetch_block_artifacts(program, workload.config, cache)
    cached: dict[int, LayerResult] = {}
    simulate: list[int] = []
    deferred: list[int] = []
    for index, compiled in enumerate(program):
        value, level, source = lookup_block(compiled, workload.config, cache)
        if value is not None:
            (stats.blocks if level == "block" else stats.layers).record_hit(source)
            stats.workers.reused_blocks += 1
            cached[index] = value
            continue
        block_key = block_cache_key(compiled.fingerprint(), workload.config)
        layer_key = layer_cache_key(compiled, workload.config)
        # Claim both cache levels: a block whose *layer content* an earlier
        # in-batch block already claimed would be served by the layer-level
        # fallback serially, so the parallel path must defer it too rather
        # than re-simulate identical content under a different name.
        if block_key in claimed or layer_key in claimed:
            deferred.append(index)
            continue
        claimed.add(block_key)
        claimed.add(layer_key)
        stats.blocks.record_miss()
        stats.layers.record_miss()
        simulate.append(index)
    return WorkPlan(
        workload=workload,
        program=program,
        cached_layers=cached,
        simulate_indices=tuple(simulate),
        deferred_indices=tuple(deferred),
    )


def compose_plan(
    plan: WorkPlan,
    remote_layers: dict[int, LayerResult],
    cache: ResultCache,
    stats: CacheStats,
) -> NetworkResult:
    """Assemble a planned workload's result from cached + worker-simulated blocks.

    Fresh worker results are stored under both cache levels as they are
    composed — inside one :meth:`ResultCache.batch` scope, so a plan's
    store-backs land as a single group-committed segment append instead of
    one write per artifact.  Deferred blocks (claimed by an earlier
    workload of the batch) are read from the cache now that the claiming
    unit has been stored; if that unit failed, the block is simulated
    inline as a last resort so one failure never corrupts a neighbouring
    workload's result.
    """
    workload = plan.workload
    assert plan.program is not None
    layers: list[LayerResult] = []
    with cache.batch():
        for index, compiled in enumerate(plan.program):
            if index in plan.cached_layers:
                layers.append(plan.cached_layers[index])
                continue
            if index in remote_layers:
                layer = remote_layers[index]
                store_block_result(cache, workload, compiled, layer)
                layers.append(layer)
                continue
            value, level, source = lookup_block(compiled, workload.config, cache)
            if value is not None:
                (stats.blocks if level == "block" else stats.layers).record_hit(source)
                stats.workers.reused_blocks += 1
                layers.append(value)
                continue
            stats.blocks.record_miss()
            stats.layers.record_miss()
            layer = simulator_for(workload.config).run_block(compiled)
            store_block_result(cache, workload, compiled, layer)
            layers.append(layer)
    return _compose(workload, plan.program, layers)


def simulate_planned_blocks(
    plans: Sequence["PlanLike"],
) -> list[dict[int, LayerResult]]:
    """Simulate every planned-but-missing block across ``plans``, batched.

    The serial-path counterpart of the worker protocol: instead of shipping
    each plan to a pool worker, the missing blocks of *all* in-flight plans
    are gathered into as few :func:`~repro.sim.batched.simulate_blocks_grid`
    calls as possible.  Plans are grouped by their simulation-affecting
    configuration payload (:func:`_sim_config_payload` — so e.g. a
    frequency sweep shares one group), and groups whose ordered block
    fingerprints are identical are merged into one 2-D grid call: the same
    block batch evaluated under every distinct sim config in one numpy
    pass.  That is the bandwidth/frequency-sweep fast path — ``N`` sweep
    points of a ``B``-block network cost one ``N × B`` grid instead of
    ``N`` separate passes.

    Returns one ``{block index → LayerResult}`` dict per plan, shaped
    exactly like the ``remote_layers`` argument of :func:`compose_plan`.
    Baseline plans (``program is None``) and plans with nothing to simulate
    get an empty dict.
    """
    out: list[dict[int, LayerResult]] = [{} for _ in plans]
    # config-payload fingerprint -> (config, [(plan idx, block idx, block)])
    by_config: dict[str, tuple[BitFusionConfig, list[tuple[int, int, CompiledBlock]]]] = {}
    for plan_index, plan in enumerate(plans):
        if plan.program is None or not plan.simulate_indices:
            continue
        config = plan.config
        key = fingerprint_payload({"sim": _sim_config_payload(config)})
        _, items = by_config.setdefault(key, (config, []))
        blocks = plan.program.blocks
        items.extend(
            (plan_index, block_index, blocks[block_index])
            for block_index in plan.simulate_indices
        )
    # Merge config groups carrying identical block batches into 2-D grids.
    by_batch: dict[
        tuple[str, ...], list[tuple[BitFusionConfig, list[tuple[int, int, CompiledBlock]]]]
    ] = {}
    for config, items in by_config.values():
        signature = tuple(block.fingerprint() for _, _, block in items)
        by_batch.setdefault(signature, []).append((config, items))
    for groups in by_batch.values():
        simulators = [simulator_for(config) for config, _ in groups]
        # Identical fingerprints mean identical block content, so the first
        # group's blocks stand in for every config row of the grid.
        blocks = [block for _, _, block in groups[0][1]]
        rows = simulate_blocks_grid(simulators, blocks)
        for (_, items), row in zip(groups, rows):
            for (plan_index, block_index, _), layer in zip(items, row):
                out[plan_index][block_index] = layer
    return out
