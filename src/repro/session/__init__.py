"""Unified evaluation session: cached, parallel workload engine.

This subsystem is the single entry point every experiment and baseline
comparison routes through:

* :class:`~repro.session.workload.Workload` — one (platform, network,
  batch, compiler-flags) evaluation point with a stable content
  fingerprint.
* :class:`~repro.session.cache.ResultCache` — fingerprint-keyed result
  store, in-memory with an optional on-disk JSON layer.
* :class:`~repro.session.session.EvaluationSession` — ``run`` /
  ``run_many`` (process-pool parallel) / declarative ``sweep`` execution
  with cache-hit accounting.

See ``python -m repro.harness --help`` for the report runner built on top
(``--jobs`` and ``--cache-dir`` map directly onto a session).
"""

from repro.session.cache import CacheStats, ProgramStats, ResultCache
from repro.session.engine import build_model, compile_workload, execute_workload
from repro.session.session import (
    EvaluationSession,
    SweepPoint,
    SweepResult,
    get_default_session,
    resolve_session,
    set_default_session,
    use_session,
)
from repro.session.workload import PLATFORMS, Workload, fixed_bitwidth_network, load_network

__all__ = [
    "CacheStats",
    "EvaluationSession",
    "PLATFORMS",
    "ProgramStats",
    "ResultCache",
    "SweepPoint",
    "SweepResult",
    "Workload",
    "build_model",
    "compile_workload",
    "execute_workload",
    "fixed_bitwidth_network",
    "get_default_session",
    "load_network",
    "resolve_session",
    "set_default_session",
    "use_session",
]
