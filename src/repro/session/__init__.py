"""Unified evaluation session: cached, parallel workload engine.

This subsystem is the single entry point every experiment and baseline
comparison routes through:

* :class:`~repro.session.workload.Workload` — one (platform, network,
  batch, compiler-flags) evaluation point with a stable content
  fingerprint.
* :mod:`~repro.session.engine` — the staged compile → simulate-blocks →
  compose pipeline, with a cacheable artifact at every seam (compiled
  programs keyed structure-only; per-block results keyed by block
  fingerprint + simulation-affecting config).
* :class:`~repro.session.cache.ResultCache` — fingerprint-keyed artifact
  store, in-memory with an optional manifest-indexed, LRU-bounded on-disk
  JSON layer.
* :class:`~repro.session.session.EvaluationSession` — ``run`` /
  ``run_many`` (process-pool parallel, longest-job-first) / declarative
  ``sweep`` execution with per-stage cache-hit accounting.

See ``python -m repro.harness --help`` for the report runner built on top
(``--jobs``, ``--cache-dir`` and ``--cache-max-mb`` map directly onto a
session).
"""

from repro.session.cache import CacheStats, ProgramStats, ResultCache, StageStats
from repro.session.engine import (
    block_cache_key,
    build_model,
    compile_program,
    compile_workload,
    execute_workload,
    execute_workload_cached,
    program_cache_key,
)
from repro.session.session import (
    EvaluationSession,
    SweepPoint,
    SweepResult,
    get_default_session,
    resolve_session,
    set_default_session,
    use_session,
)
from repro.session.workload import (
    PLATFORMS,
    Workload,
    estimated_cost,
    fixed_bitwidth_network,
    load_network,
    network_digest,
)

__all__ = [
    "CacheStats",
    "EvaluationSession",
    "PLATFORMS",
    "ProgramStats",
    "ResultCache",
    "StageStats",
    "SweepPoint",
    "SweepResult",
    "Workload",
    "block_cache_key",
    "build_model",
    "compile_program",
    "compile_workload",
    "estimated_cost",
    "execute_workload",
    "execute_workload_cached",
    "fixed_bitwidth_network",
    "get_default_session",
    "load_network",
    "network_digest",
    "program_cache_key",
    "resolve_session",
    "set_default_session",
    "use_session",
]
