"""Unified evaluation session: cached, parallel workload engine.

This subsystem is the single entry point every experiment and baseline
comparison routes through:

* :class:`~repro.session.workload.Workload` — one (platform, network,
  batch, compiler-flags) evaluation point with a stable content
  fingerprint.
* :mod:`~repro.session.engine` — the staged compile → simulate-blocks →
  compose pipeline, with a cacheable artifact at every seam (compiled
  programs keyed structure-only; per-block results keyed by block
  fingerprint + simulation-affecting config).
* :class:`~repro.session.cache.ResultCache` — fingerprint-keyed artifact
  store, in-memory with an optional manifest-indexed, LRU-bounded on-disk
  layer (segmented pack-file store by default —
  :class:`~repro.session.store.SegmentedStore`, group-committed appends,
  eviction by segment compaction — with the legacy JSON-per-entry layout
  served as a read-compatible fallback).
* :class:`~repro.session.session.EvaluationSession` — ``run`` /
  ``run_many`` (process-pool parallel, longest-job-first) / declarative
  ``sweep`` execution with per-stage cache-hit accounting.

Cache keys and invalidation
---------------------------
Three fingerprint families key the cache, each hashing exactly the inputs
that determine its artifact — so invalidation is automatic: change an
input and the key changes, leaving the stale entry unreferenced (and
eventually LRU-evicted from disk).

* **Workload key** (:meth:`Workload.fingerprint
  <repro.session.workload.Workload.fingerprint>`): platform, resolved
  network *structure*, batch size, variant/bitwidth transforms, the full
  platform configuration and the compiler flags.  Anything that could
  change a result changes this key.
* **Program key** (:func:`~repro.session.engine.program_cache_key`):
  *structure-only* — network structure, batch size, scratchpad capacities
  and compiler flags, the only inputs the compiler reads.  Bandwidth,
  array geometry, frequency and technology node are deliberately excluded,
  so sweeps along those axes reuse one compiled program.
* **Block key** (:func:`~repro.session.engine.block_cache_key`): the
  block's content fingerprint plus the simulation-affecting configuration
  (array geometry, buffer capacities and access width, bandwidth,
  technology node).  Frequency and the configuration name are excluded —
  they only affect composition metadata.
* **Layer key** (:func:`~repro.session.engine.layer_cache_key`): the
  block's *name-free* content fingerprint plus the same
  simulation-affecting configuration.  Block-key lookups fall back to this
  content-addressed level on a miss, so identical (layer, tiling) pairs
  dedupe across different networks in model-family sweeps.
* **Tiling key** (:func:`~repro.session.engine.tiling_cache_key`): one
  tiling search's inputs — GEMM shape and bitwidths, the loop orders
  considered, and the scratchpad capacities.  The compiler consults this
  memo (via :func:`~repro.session.engine.make_plan_resolver`) before every
  search, so duplicate GEMM shapes — within a network, across networks,
  and across sweep points that share buffer geometry — plan once.

Parallel execution (``jobs > 1``) is warm-artifact aware: the session
compiles centrally through the program cache, resolves warm blocks in the
main process, ships workers :class:`~repro.session.engine.WorkUnit`\\ s
holding only the missing block indices, and composes the returned
:class:`~repro.session.engine.WorkResult`\\ s — a partially-warm parallel
run recompiles and re-simulates nothing the cache already holds, and a
failed workload surfaces as a
:class:`~repro.session.engine.WorkloadExecutionError` without costing the
rest of the batch.

See ``python -m repro.harness --help`` for the report runner built on top
(``--jobs``, ``--cache-dir`` and ``--cache-max-mb`` map directly onto a
session), ``python -m repro.harness sweep`` / :mod:`repro.dse` for
declarative design-space sweeps over the same cache, and
``docs/architecture.md`` for the full pipeline walkthrough.
"""

from repro.session.backends import (
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    make_backend,
)
from repro.session.cache import (
    CacheStats,
    ProgramStats,
    ResultCache,
    StageStats,
    WorkerStats,
)
from repro.session.checkpoint import (
    CheckpointRecord,
    NAS_CHECKPOINT_NAME,
    SWEEP_CHECKPOINT_NAME,
    SweepCheckpoint,
)
from repro.session.engine import (
    CacheAudit,
    QuarantineRecord,
    WorkResult,
    WorkUnit,
    WorkloadExecutionError,
    audit_workload_cache,
    block_cache_key,
    describe_workload_error,
    build_model,
    compile_program,
    compile_workload,
    execute_work_unit,
    execute_workload,
    execute_workload_cached,
    layer_cache_key,
    make_plan_resolver,
    program_cache_key,
    tiling_cache_key,
)
from repro.session.store import SegmentedStore, migrate_json_dir
from repro.session.session import (
    EvaluationSession,
    SweepPoint,
    SweepResult,
    get_default_session,
    resolve_session,
    set_default_session,
    use_session,
)
from repro.session.workload import (
    PLATFORMS,
    Workload,
    estimated_cost,
    fixed_bitwidth_network,
    load_network,
    network_digest,
)

__all__ = [
    "CacheAudit",
    "CacheStats",
    "CheckpointRecord",
    "EvaluationSession",
    "ExecutionBackend",
    "InlineBackend",
    "NAS_CHECKPOINT_NAME",
    "PLATFORMS",
    "ProcessPoolBackend",
    "ProgramStats",
    "QuarantineRecord",
    "ResultCache",
    "SWEEP_CHECKPOINT_NAME",
    "SegmentedStore",
    "StageStats",
    "SweepCheckpoint",
    "SweepPoint",
    "SweepResult",
    "WorkResult",
    "WorkUnit",
    "WorkerStats",
    "Workload",
    "WorkloadExecutionError",
    "audit_workload_cache",
    "block_cache_key",
    "build_model",
    "compile_program",
    "compile_workload",
    "describe_workload_error",
    "estimated_cost",
    "execute_work_unit",
    "execute_workload",
    "execute_workload_cached",
    "fixed_bitwidth_network",
    "get_default_session",
    "layer_cache_key",
    "load_network",
    "make_backend",
    "make_plan_resolver",
    "migrate_json_dir",
    "network_digest",
    "program_cache_key",
    "tiling_cache_key",
    "resolve_session",
    "set_default_session",
    "use_session",
]
