"""Deterministic fault-injection seams for the execution engine.

Production code in :mod:`repro.session.engine` consults three module-level
hooks — all ``None`` (zero-cost no-ops) unless a test installs one:

* **work-unit wrapper** — wraps every :func:`~repro.session.engine.
  execute_work_unit` call.  Receives ``(unit, execute)`` and must return a
  :class:`~repro.session.engine.WorkResult`; it may instead raise to
  simulate a worker process crash (an exception surfacing at
  ``Future.result()``, e.g. ``BrokenProcessPool``).
* **simulator wrapper** — wraps every :func:`~repro.session.engine.
  simulator_for` resolution.  Receives ``(config, simulator)`` and returns
  a simulator-like object (anything exposing ``batched`` / ``run_block`` /
  ``run_selected_blocks``), so tests can inject faults or delays at the
  block-simulation level of both the serial batched path and worker units.
* **after-commit hook** — fired by :class:`~repro.session.session.
  EvaluationSession` right after a workload's result has been stored and
  journaled.  This is the kill point: a hook that raises (or SIGKILLs the
  process) right here models a crash *between* durable commits, which is
  exactly the boundary a resumable sweep must survive.
* **transport wrapper** — wraps every coordinator-side remote request the
  :class:`~repro.session.remote.RemoteBackend` makes.  Receives
  ``(address, unit, transport)`` and must return the reply dict (usually by
  calling ``transport()``); raising a ``ConnectionError`` models a dropped
  connection or dead worker without any real socket misbehaving.

Hooks only exist in the installing process: real pool workers import this
module fresh and see no hooks, so multiprocess runs are unaffected — tests
that inject worker-side faults run with inline pools or ``jobs=1``.

``tests/faults.py`` builds the deterministic injectors (seeded fault plans,
fail-once simulators, crash-at-commit kill switches) on top of these seams;
``docs/testing.md`` describes how to write chaos tests with them.

The one production user is the ``REPRO_SWEEP_KILL_AFTER`` environment knob
(:func:`install_kill_after_commits`): the CI ``fault-smoke`` job sets it to
SIGKILL a real sweep process after N commits and then proves ``--resume``
does zero redundant work.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "after_commit_hook",
    "fire_after_commit",
    "install_kill_after_commits",
    "on_commit",
    "simulator_wrapper",
    "transport_wrapper",
    "work_unit_wrapper",
    "wrap_simulators",
    "wrap_transport",
    "wrap_work_units",
]

# (unit, execute) -> WorkResult; may raise to model a worker crash.
_work_unit_wrapper: Callable[[Any, Callable[[Any], Any]], Any] | None = None
# (config, simulator) -> simulator-like object.
_simulator_wrapper: Callable[[Any, Any], Any] | None = None
# (workload, result) -> None; fired after each durable commit.
_after_commit: Callable[[Any, Any], None] | None = None
# (address, unit, transport) -> reply dict; may raise ConnectionError.
_transport_wrapper: Callable[[str, Any, Callable[[], Any]], Any] | None = None


def work_unit_wrapper() -> Callable[[Any, Callable[[Any], Any]], Any] | None:
    """The installed work-unit wrapper, or ``None``."""
    return _work_unit_wrapper


def simulator_wrapper() -> Callable[[Any, Any], Any] | None:
    """The installed simulator wrapper, or ``None``."""
    return _simulator_wrapper


def after_commit_hook() -> Callable[[Any, Any], None] | None:
    """The installed after-commit hook, or ``None``."""
    return _after_commit


def transport_wrapper() -> Callable[[str, Any, Callable[[], Any]], Any] | None:
    """The installed remote-transport wrapper, or ``None``."""
    return _transport_wrapper


def fire_after_commit(workload: Any, result: Any) -> None:
    """Invoke the after-commit hook if one is installed.

    Called by the session *after* the result is stored and the checkpoint
    journaled — anything the hook does (including killing the process) sees
    a consistent, resumable state.
    """
    if _after_commit is not None:
        _after_commit(workload, result)


@contextmanager
def wrap_work_units(
    wrapper: Callable[[Any, Callable[[Any], Any]], Any],
) -> Iterator[None]:
    """Scope a work-unit wrapper for the duration of a ``with`` block."""
    global _work_unit_wrapper
    previous = _work_unit_wrapper
    _work_unit_wrapper = wrapper
    try:
        yield
    finally:
        _work_unit_wrapper = previous


@contextmanager
def wrap_simulators(wrapper: Callable[[Any, Any], Any]) -> Iterator[None]:
    """Scope a simulator wrapper for the duration of a ``with`` block."""
    global _simulator_wrapper
    previous = _simulator_wrapper
    _simulator_wrapper = wrapper
    try:
        yield
    finally:
        _simulator_wrapper = previous


@contextmanager
def wrap_transport(
    wrapper: Callable[[str, Any, Callable[[], Any]], Any],
) -> Iterator[None]:
    """Scope a remote-transport wrapper for the duration of a ``with`` block.

    The wrapper sits between the coordinator and the socket, so chaos tests
    can drop, delay or corrupt a remote exchange deterministically — the
    worker daemon on the other end stays perfectly healthy, which is what
    distinguishes a *connection* fault from a *worker* fault.
    """
    global _transport_wrapper
    previous = _transport_wrapper
    _transport_wrapper = wrapper
    try:
        yield
    finally:
        _transport_wrapper = previous


@contextmanager
def on_commit(hook: Callable[[Any, Any], None]) -> Iterator[None]:
    """Scope an after-commit hook for the duration of a ``with`` block."""
    global _after_commit
    previous = _after_commit
    _after_commit = hook
    try:
        yield
    finally:
        _after_commit = previous


def install_kill_after_commits(count: int) -> None:
    """SIGKILL this process after ``count`` durable commits (persistent).

    Backs the ``REPRO_SWEEP_KILL_AFTER`` environment knob the CI
    ``fault-smoke`` job uses: the process dies with no cleanup whatsoever
    (no ``atexit``, no ``finally`` blocks, no manifest flush) exactly
    ``count`` commits into the sweep, and a following ``--resume`` run must
    pick up from the journal + artifact cache alone.  Installed permanently
    — the process does not outlive the hook.
    """
    if count < 1:
        raise ValueError(f"kill-after count must be >= 1, got {count}")
    global _after_commit
    remaining = count

    def kill(workload: Any, result: Any) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining <= 0:
            os.kill(os.getpid(), signal.SIGKILL)

    _after_commit = kill
