"""Segmented pack-file artifact store: append-only segments + index sidecars.

The one-file-per-entry JSON layout (:mod:`repro.session.cache`) pays an
``open`` + ``write`` + ``rename`` per artifact and a filesystem probe per
lookup — fine for hundreds of entries, dominant at the 10⁵–10⁶ artifact
counts sharded sweeps and NAS searches produce.  This module stores the
same entries in a handful of **append-only pack segments** instead:

* **Record**: a 4-byte big-endian length prefix followed by one compact
  (``sort_keys``, no whitespace) UTF-8 JSON object ``{"key", "kind",
  "payload", "workload"}`` — the exact entry shape of the JSON layout,
  framed the same way the remote worker protocol frames its messages
  (:mod:`repro.session.remote`), so a record is self-delimiting and a
  truncated tail (a writer killed mid-append) is detected and dropped at
  the next scan instead of poisoning the file.
* **Segment**: ``pack-<pid>-<nonce>.seg``, append-only, owned by exactly
  one writer process for its lifetime.  Writers never share a segment, so
  the data path needs no locks — the same per-writer-sibling design the
  sweep checkpoint journal proved out — and readers merge all segments at
  open time.  The ``.seg`` suffix keeps segments invisible to the JSON
  layout's ``*.json`` glob, so both layouts coexist in one directory.
* **Index sidecar**: ``<segment>.idx``, a JSON map of key → (offset,
  length, kind) plus the segment size it describes.  Advisory: a missing
  or stale sidecar (size mismatch after a crash) degrades to one
  sequential scan of the segment, never an error.  Writers rewrite their
  own sidecar once per :meth:`SegmentedStore.flush` — one index flush per
  group commit, not one per record.
* **Eviction** is **compaction**: dropping a key only marks its record
  dead; once a closed segment is mostly dead (and its owner is gone — the
  on-disk size still matches what we scanned), its live records are
  rewritten into the current writer segment and the file is deleted.

:class:`~repro.session.cache.ResultCache` drives this store when a cache
directory uses the segmented layout and keeps the JSON-dir layout as a
read-compatible fallback and correctness oracle; :func:`migrate_json_dir`
converts an existing JSON-layout directory in place (``python -m
repro.harness cache migrate``).
"""

from __future__ import annotations

import json
import os
import struct
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Iterable, Iterator

__all__ = [
    "SEGMENT_SUFFIX",
    "INDEX_SUFFIX",
    "STORE_SCHEMA_VERSION",
    "SegmentedStore",
    "encode_body",
    "encode_record",
    "iter_records",
    "migrate_json_dir",
]

#: Segment files are ``pack-<pid>-<nonce>.seg``; the prefix + suffix pair is
#: what layout auto-detection and the open-time merge glob for.
SEGMENT_SUFFIX = ".seg"
_SEGMENT_GLOB = f"pack-*{SEGMENT_SUFFIX}"

#: Per-segment index sidecar (``<segment>.idx``).  Deliberately *not* a
#: ``.json`` name: the JSON entry layout globs ``*.json`` and must never
#: pick a sidecar up as an entry.
INDEX_SUFFIX = ".idx"

#: Version of the record/sidecar format; bumped on incompatible changes
#: (readers treat an unknown sidecar schema as stale and rescan).
STORE_SCHEMA_VERSION = 1

#: Length prefix of one record — the remote protocol's framing struct.
_LENGTH = struct.Struct(">I")

#: Sanity cap on one record's body; anything larger is treated as a torn
#: or corrupt tail when scanning (matches the wire protocol's cap).
MAX_RECORD_BYTES = 256 * 1024 * 1024


#: Reused encoder for record bodies: ``json.dumps`` with non-default
#: keyword arguments constructs a fresh ``JSONEncoder`` per call, which is
#: measurable per-record overhead on thousand-entry group commits.
_BODY_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


def encode_body(key: str, entry: dict[str, Any]) -> bytes:
    """One record body: compact JSON of the entry plus its key (no prefix)."""
    return _BODY_ENCODER.encode({"key": key, **entry}).encode("utf-8")


def encode_record(key: str, entry: dict[str, Any]) -> bytes:
    """One length-prefixed record: compact JSON of the entry plus its key."""
    body = encode_body(key, entry)
    return _LENGTH.pack(len(body)) + body


def iter_records(data: bytes) -> Iterator[tuple[int, int, dict[str, Any]]]:
    """Yield ``(body_offset, body_length, record)`` from raw segment bytes.

    Stops at the first torn or undecodable record: a writer killed
    mid-append leaves a truncated tail, and everything before it is intact
    by construction (single-writer, append-only) — the same
    truncated-final-line tolerance the checkpoint journal applies.
    """
    position = 0
    total = len(data)
    while position + _LENGTH.size <= total:
        (length,) = _LENGTH.unpack_from(data, position)
        start = position + _LENGTH.size
        if length > MAX_RECORD_BYTES or start + length > total:
            return  # torn tail
        try:
            record = json.loads(data[start : start + length].decode("utf-8"))
            if not isinstance(record, dict) or "key" not in record:
                return
        except (ValueError, UnicodeDecodeError):
            return
        yield start, length, record
        position = start + length


@dataclass
class _Location:
    """Where one live record lives: segment name + body offset/length."""

    segment: str
    offset: int
    length: int
    kind: str


@dataclass
class _Segment:
    """Scanned size and live/dead byte accounting of one segment."""

    size: int
    live: int = 0
    dead: int = 0


class SegmentedStore:
    """Pack-segment store of cache entries under one directory.

    Opening the store builds the in-memory key index once — each segment's
    sidecar when fresh, a sequential scan otherwise — after which lookups
    and existence probes are dictionary hits instead of per-entry
    filesystem probes.  All mutation goes through this process's own
    segment; other writers' segments are strictly read-only here.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._index: dict[str, _Location] = {}
        self._segments: dict[str, _Segment] = {}
        self._handles: dict[str, BinaryIO] = {}
        self._own_name = f"pack-{os.getpid()}-{uuid.uuid4().hex[:8]}{SEGMENT_SUFFIX}"
        self._own_handle: BinaryIO | None = None
        self._own_dirty = False
        self._load()

    # ------------------------------------------------------------------ #
    # Open-time merge
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        for path in sorted(self.directory.glob(_SEGMENT_GLOB)):
            try:
                size = path.stat().st_size
            except OSError:
                continue  # compacted away by a concurrent evictor mid-scan
            state = _Segment(size=size)
            self._segments[path.name] = state
            entries = self._read_sidecar(path, size)
            if entries is None:
                entries = self._scan_segment(path, size)
                # Best-effort repair so the next open skips the scan; a
                # read-only shared directory still serves reads without it.
                self._write_sidecar(path.name, entries, size)
            for key, (offset, length, kind) in entries.items():
                self._admit(key, _Location(path.name, offset, length, kind))

    def _admit(self, key: str, location: _Location) -> None:
        """Install one live record, retiring any older record of the key."""
        previous = self._index.get(key)
        if previous is not None:
            self._retire(previous)
        self._index[key] = location
        self._segments[location.segment].live += location.length

    def _retire(self, location: _Location) -> None:
        segment = self._segments.get(location.segment)
        if segment is not None:
            segment.live -= location.length
            segment.dead += location.length

    def _read_sidecar(
        self, path: Path, size: int
    ) -> dict[str, tuple[int, int, str]] | None:
        """The sidecar's entries, or None when missing/stale/corrupt."""
        try:
            payload = json.loads(
                path.with_name(path.name + INDEX_SUFFIX).read_text(encoding="utf-8")
            )
            if payload.get("schema") != STORE_SCHEMA_VERSION:
                return None
            if int(payload.get("segment_bytes", -1)) != size:
                return None  # the segment grew (or was torn) after this flush
            entries = {
                str(key): (int(offset), int(length), str(kind))
                for key, (offset, length, kind) in payload["entries"].items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return entries

    def _scan_segment(self, path: Path, size: int) -> dict[str, tuple[int, int, str]]:
        """Rebuild one segment's entries by a sequential record scan."""
        try:
            data = path.read_bytes()[:size]
        except OSError:
            return {}
        entries: dict[str, tuple[int, int, str]] = {}
        for offset, length, record in iter_records(data):
            entries[str(record["key"])] = (offset, length, str(record.get("kind", "unknown")))
        return entries

    def _write_sidecar(
        self, name: str, entries: dict[str, tuple[int, int, str]], size: int
    ) -> None:
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "segment_bytes": size,
            # Tuples serialize as JSON arrays directly; no list() rebuild.
            "entries": entries,
        }
        path = self.directory / (name + INDEX_SUFFIX)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(_BODY_ENCODER.encode(payload), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            return  # advisory: the next open rescans instead

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterable[str]:
        return self._index.keys()

    def kind(self, key: str) -> str | None:
        location = self._index.get(key)
        return location.kind if location is not None else None

    def entry_bytes(self, key: str) -> int | None:
        location = self._index.get(key)
        return location.length if location is not None else None

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def index_entries(self) -> Iterator[tuple[str, str, int]]:
        """``(key, kind, record_bytes)`` in deterministic (segment, offset) order.

        This is what a manifest rebuild consumes instead of re-reading
        payloads: the store index already carries every entry's kind and
        size, so rebuilding never scales with payload bytes.
        """
        ordered = sorted(
            self._index.items(), key=lambda item: (item[1].segment, item[1].offset)
        )
        for key, location in ordered:
            yield key, location.kind, location.length

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def _read_handle(self, name: str) -> BinaryIO | None:
        handle = self._handles.get(name)
        if handle is None:
            try:
                handle = open(self.directory / name, "rb")  # noqa: SIM115 — cached
            except OSError:
                return None
            self._handles[name] = handle
        return handle

    def _read_location(self, location: _Location) -> dict[str, Any] | None:
        handle = self._read_handle(location.segment)
        if handle is None:
            return None
        try:
            handle.seek(location.offset)
            body = handle.read(location.length)
            record = json.loads(body.decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def get_record(self, key: str) -> dict[str, Any] | None:
        """One entry record (``{"key", "kind", "payload", "workload"}``), or None."""
        location = self._index.get(key)
        if location is None:
            return None
        record = self._read_location(location)
        if record is None:
            # Unreadable (e.g. the segment was compacted away underneath a
            # long-lived reader): a miss, never a crash.
            self._index.pop(key, None)
            self._retire(location)
        return record

    def get_records(self, keys: Iterable[str]) -> dict[str, dict[str, Any]]:
        """Bulk read: one index pass, reads grouped per segment in offset order."""
        wanted: dict[str, list[tuple[int, str]]] = {}
        for key in keys:
            location = self._index.get(key)
            if location is not None:
                wanted.setdefault(location.segment, []).append((location.offset, key))
        out: dict[str, dict[str, Any]] = {}
        for segment in sorted(wanted):
            for _, key in sorted(wanted[segment]):
                record = self.get_record(key)
                if record is not None:
                    out[key] = record
        return out

    # ------------------------------------------------------------------ #
    # Writes (this process's own segment only)
    # ------------------------------------------------------------------ #
    def _writer(self) -> BinaryIO | None:
        if self._own_handle is None:
            try:
                self._own_handle = open(self.directory / self._own_name, "ab")
            except OSError:
                return None  # read-only shared directory: serve reads only
            self._segments.setdefault(self._own_name, _Segment(size=0))
        return self._own_handle

    def append_encoded(
        self, items: list[tuple[str, str, bytes]]
    ) -> dict[str, int] | None:
        """Group-commit pre-encoded record bodies: one segment write.

        ``items`` is ``(key, kind, body)`` with ``body`` the compact JSON
        record bytes (:func:`encode_record` without the length prefix).
        Returns ``{key: body_bytes}`` on success, ``None`` when the
        directory is unwritable (callers keep those entries memory-only).
        """
        if not items:
            return {}
        handle = self._writer()
        if handle is None:
            return None
        segment = self._segments[self._own_name]
        blob = bytearray()
        placed: list[tuple[str, _Location]] = []
        offset = segment.size
        for key, kind, body in items:
            blob += _LENGTH.pack(len(body))
            offset += _LENGTH.size
            placed.append((key, _Location(self._own_name, offset, len(body), kind)))
            blob += body
            offset += len(body)
        try:
            handle.write(bytes(blob))
            handle.flush()
        except OSError:
            return None
        segment.size = offset
        for key, location in placed:
            self._admit(key, location)
        self._own_dirty = True
        return {key: location.length for key, location in placed}

    def append(self, items: list[tuple[str, dict[str, Any]]]) -> dict[str, int] | None:
        """Group-commit entry dicts (see :meth:`append_encoded`)."""
        encoded = [
            (key, str(entry.get("kind", "unknown")), encode_body(key, entry))
            for key, entry in items
        ]
        return self.append_encoded(encoded)

    def discard(self, key: str) -> None:
        """Drop a key from the live index (its record bytes become dead)."""
        location = self._index.pop(key, None)
        if location is not None:
            self._retire(location)

    def compact(self, aggressive: bool = False) -> int:
        """Rewrite dead-heavy idle segments; returns bytes reclaimed.

        A segment qualifies when it carries dead bytes — at least as many
        as live ones by default, *any* when ``aggressive`` (the eviction
        path uses this: an evicted record must not be resurrected by the
        next reader's scan, so the segment holding it is rewritten now) —
        and it is safely idle: not this process's open writer segment, and
        its on-disk size still equals what this process scanned (a size
        that grew means another live writer owns it — its fresh records
        are not in our index and must not be thrown away).  Live records
        are appended to the writer segment before the old file (and its
        sidecar) is unlinked, so compaction is just another group commit
        plus a delete; at most one rewrite per foreign segment per writer
        lifetime, since the copied records then live in the own segment
        where discards are plain dead-byte marks.
        """
        reclaimed = 0
        for name in list(self._segments):
            segment = self._segments[name]
            if name == self._own_name or segment.dead == 0:
                continue
            if not aggressive and segment.dead < segment.live:
                continue
            try:
                if (self.directory / name).stat().st_size != segment.size:
                    continue  # another writer still appends here
            except OSError:
                continue
            live = [
                (key, location)
                for key, location in self._index.items()
                if location.segment == name
            ]
            moved: list[tuple[str, str, bytes]] = []
            for key, location in live:
                record = self._read_location(location)
                if record is None:
                    continue
                body = _BODY_ENCODER.encode(record).encode("utf-8")
                moved.append((key, location.kind, body))
            if moved and self.append_encoded(moved) is None:
                continue  # unwritable: keep the old segment serving reads
            handle = self._handles.pop(name, None)
            if handle is not None:
                handle.close()
            try:
                (self.directory / name).unlink(missing_ok=True)
                (self.directory / (name + INDEX_SUFFIX)).unlink(missing_ok=True)
            except OSError:
                pass
            reclaimed += segment.size
            del self._segments[name]
        return reclaimed

    def flush(self) -> None:
        """Flush the writer segment's index sidecar (one write per batch)."""
        if not self._own_dirty:
            return
        segment = self._segments.get(self._own_name)
        if segment is None:
            return
        entries = {
            key: (location.offset, location.length, location.kind)
            for key, location in self._index.items()
            if location.segment == self._own_name
        }
        self._write_sidecar(self._own_name, entries, segment.size)
        self._own_dirty = False

    def close(self) -> None:
        self.flush()
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        if self._own_handle is not None:
            self._own_handle.close()
            self._own_handle = None


# ---------------------------------------------------------------------- #
# JSON-dir migration
# ---------------------------------------------------------------------- #
def migrate_json_dir(cache_dir: str | Path, batch: int = 512) -> tuple[int, int]:
    """Convert a JSON-layout cache directory to the segmented layout, in place.

    Every per-entry ``<key>.json`` file is appended to pack segments (in
    batched group commits) and then deleted; ``manifest.json`` survives
    with its recency/refs bookkeeping intact (entry sizes are updated to
    the record sizes).  Unreadable entry files are skipped, not fatal.
    Returns ``(entries_migrated, record_bytes_written)``.
    """
    directory = Path(cache_dir)
    if not directory.is_dir():
        raise ValueError(f"cache directory {str(directory)!r} does not exist")
    store = SegmentedStore(directory)
    migrated = 0
    written = 0
    new_sizes: dict[str, int] = {}
    pending: list[tuple[Path, str, dict[str, Any]]] = []

    def commit() -> None:
        nonlocal migrated, written
        if not pending:
            return
        sizes = store.append([(key, entry) for _, key, entry in pending])
        if sizes is None:
            raise OSError(f"cache directory {str(directory)!r} is not writable")
        for path, key, _ in pending:
            path.unlink(missing_ok=True)
            migrated += 1
            written += sizes[key]
            new_sizes[key] = sizes[key]
        pending.clear()

    for path in sorted(directory.glob("*.json")):
        if path.name == "manifest.json" or path.name.endswith(".tmp"):
            continue
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(entry, dict) or "payload" not in entry:
                continue
        except (OSError, ValueError):
            continue  # corrupt entries are misses in both layouts; drop from migration
        pending.append((path, path.stem, entry))
        if len(pending) >= batch:
            commit()
    commit()
    store.close()

    # Keep the manifest's recency and reference counts; only entry sizes
    # change (record bytes instead of file bytes).  A missing or stale
    # manifest is fine — the next open rebuilds it from the store index.
    manifest_path = directory / "manifest.json"
    try:
        payload = json.loads(manifest_path.read_text(encoding="utf-8"))
        entries = payload.get("entries", {})
        if isinstance(entries, dict):
            for key, size in new_sizes.items():
                if isinstance(entries.get(key), dict):
                    entries[key]["bytes"] = size
            tmp = manifest_path.with_suffix(f".json.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(manifest_path)
    except (OSError, ValueError, KeyError, TypeError):
        pass
    return migrated, written
