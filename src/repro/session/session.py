"""EvaluationSession: the shared, cached, parallel workload engine.

One session backs one report (or one interactive study).  Every experiment
routes its simulations through :meth:`EvaluationSession.run` /
:meth:`~EvaluationSession.run_many`, so a full-report invocation simulates
each unique (platform config, network, batch, compiler flags) point exactly
once regardless of how many figures need it, and batches of independent
workloads can fan out over a process pool.

:meth:`EvaluationSession.sweep` is the declarative face of the engine:
bandwidth, batch-size and benchmark scans (Figures 15/16 and any new
scenario scan) are one call each instead of a hand-written experiment loop.

A module-level *default session* lets experiment modules be called directly
(as the pytest-benchmark harness does) while still sharing a cache; the
report runner installs its own session for the duration of a report via
:func:`use_session`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.config import BitFusionConfig
from repro.session.cache import CacheStats, ProgramStats, ResultCache
from repro.session.engine import compile_workload, execute_workload
from repro.session.workload import Workload
from repro.sim.results import NetworkResult

__all__ = [
    "EvaluationSession",
    "SweepPoint",
    "SweepResult",
    "get_default_session",
    "set_default_session",
    "resolve_session",
    "use_session",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (network, batch, bandwidth) point of a sweep and its result."""

    network: str
    batch_size: int
    bandwidth: int | None
    workload: Workload
    result: NetworkResult


class SweepResult:
    """Results of a declarative sweep, addressable by axis values."""

    def __init__(self, points: Iterable[SweepPoint]) -> None:
        self.points = tuple(points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def select(
        self,
        network: str | None = None,
        batch_size: int | None = None,
        bandwidth: int | None = None,
    ) -> list[SweepPoint]:
        """All points matching the given axis values (None matches any)."""
        return [
            point
            for point in self.points
            if (network is None or point.network == network)
            and (batch_size is None or point.batch_size == batch_size)
            and (bandwidth is None or point.bandwidth == bandwidth)
        ]

    def result(
        self,
        network: str | None = None,
        batch_size: int | None = None,
        bandwidth: int | None = None,
    ) -> NetworkResult:
        """The unique result at the given axis values; KeyError otherwise."""
        matches = self.select(network=network, batch_size=batch_size, bandwidth=bandwidth)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one sweep point for network={network!r} "
                f"batch_size={batch_size!r} bandwidth={bandwidth!r}, found {len(matches)}"
            )
        return matches[0].result

    def latency(self, **axes: object) -> float:
        """Per-inference latency (seconds) of the unique matching point."""
        return self.result(**axes).latency_per_inference_s  # type: ignore[arg-type]


class EvaluationSession:
    """Cached, optionally parallel executor of evaluation workloads.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`run_many` / :meth:`sweep`.  1 (the
        default) executes inline; higher values fan uncached workloads out
        over a ``ProcessPoolExecutor``.  Results are ordered by the input
        workload order either way, so parallel runs are byte-identical to
        serial ones.
    cache_dir:
        Optional directory for the persistent JSON result store; ``None``
        keeps the cache in memory only.
    cache:
        Pre-built :class:`ResultCache` to share between sessions (mutually
        exclusive with ``cache_dir``).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        cache: ResultCache | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        self.jobs = jobs
        self.cache = cache if cache is not None else ResultCache(cache_dir)
        self.stats = CacheStats()
        self._pool: ProcessPoolExecutor | None = None

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the cache is untouched)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "EvaluationSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Core execution
    # ------------------------------------------------------------------ #
    def run(self, workload: Workload) -> NetworkResult:
        """Run one workload, serving it from the cache when possible."""
        return self.run_many([workload])[0]

    def run_many(self, workloads: Iterable[Workload]) -> list[NetworkResult]:
        """Run a batch of workloads, in input order.

        The batch is deduplicated by fingerprint and checked against the
        cache; only genuinely new workloads are simulated (in parallel when
        the session has more than one job).  Each unique workload is
        simulated at most once per session lifetime.
        """
        ordered = list(workloads)
        keys = [workload.fingerprint() for workload in ordered]
        resolved: dict[str, NetworkResult] = {}
        pending: dict[str, Workload] = {}
        for key, workload in zip(keys, ordered):
            if key in resolved or key in pending:
                self.stats.hits += 1
                continue
            value, source = self.cache.get_with_source(key)
            if value is not None:
                self.stats.hits += 1
                if source == "disk":
                    self.stats.disk_hits += 1
                resolved[key] = value
            else:
                self.stats.misses += 1
                pending[key] = workload
        if pending:
            items = list(pending.items())
            fresh = self._execute_batch([workload for _, workload in items])
            for (key, workload), result in zip(items, fresh):
                self.stats.record_execution(key)
                self.cache.put(key, result, workload.describe())
                resolved[key] = result
        return [resolved[key] for key in keys]

    def _execute_batch(self, workloads: list[Workload]) -> list[NetworkResult]:
        if self.jobs > 1 and len(workloads) > 1:
            # The pool is created once per session and reused across batches
            # so workers pay the interpreter/import start-up cost only once.
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return list(self._pool.map(execute_workload, workloads))
        return [execute_workload(workload) for workload in workloads]

    def compile_stats(self, workload: Workload) -> ProgramStats:
        """Compile a Bit Fusion workload (cached) and return program stats."""
        # '-program' (not ':') keeps the key a valid filename on Windows,
        # where the on-disk cache stores one '<key>.json' per entry.
        key = f"{workload.fingerprint()}-program"
        value, source = self.cache.get_with_source(key)
        if value is not None:
            self.stats.hits += 1
            if source == "disk":
                self.stats.disk_hits += 1
            return value
        self.stats.misses += 1
        stats = compile_workload(workload)
        self.stats.record_execution(key)
        self.cache.put(key, stats, workload.describe())
        return stats

    # ------------------------------------------------------------------ #
    # Declarative sweeps
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        networks: Iterable[str],
        batch_sizes: Iterable[int] = (16,),
        bandwidths: Iterable[int | None] = (None,),
        platform: str = "bitfusion",
        base_config: BitFusionConfig | None = None,
        fixed_bits: int | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
    ) -> SweepResult:
        """Run the cartesian product of networks x batch sizes x bandwidths.

        The bandwidth axis applies to Bit Fusion only (it maps to
        ``BitFusionConfig.with_bandwidth``); baseline platforms accept the
        default ``(None,)`` axis and use their paper configuration at each
        batch size.  GPU workloads need a device spec and precision, so they
        go through :meth:`run_many` with explicit workloads instead.
        """
        network_list = list(networks)
        batch_list = list(batch_sizes)
        bandwidth_list = list(bandwidths)
        if platform != "bitfusion":
            if bandwidth_list != [None]:
                raise ValueError(
                    f"the bandwidth axis only applies to bitfusion, not {platform!r}"
                )
            if (
                base_config is not None
                or fixed_bits is not None
                or not enable_loop_ordering
                or not enable_layer_fusion
            ):
                raise ValueError(
                    "base_config, fixed_bits and the compiler flags only apply to "
                    f"bitfusion sweeps, not {platform!r}"
                )

        workloads: list[Workload] = []
        axes: list[tuple[str, int, int | None]] = []
        for network, batch, bandwidth in product(network_list, batch_list, bandwidth_list):
            if platform == "bitfusion":
                config = (
                    base_config.with_batch_size(batch)
                    if base_config is not None
                    else BitFusionConfig.eyeriss_matched(batch_size=batch)
                )
                if bandwidth is not None:
                    config = config.with_bandwidth(bandwidth)
                workload = Workload.bitfusion(
                    network,
                    batch_size=batch,
                    config=config,
                    fixed_bits=fixed_bits,
                    enable_loop_ordering=enable_loop_ordering,
                    enable_layer_fusion=enable_layer_fusion,
                )
            elif platform == "eyeriss":
                workload = Workload.eyeriss(network, batch_size=batch)
            elif platform == "stripes":
                workload = Workload.stripes(network, batch_size=batch)
            elif platform == "temporal":
                workload = Workload.temporal(network, batch_size=batch)
            else:
                raise ValueError(
                    f"sweep supports bitfusion/eyeriss/stripes/temporal, not {platform!r}"
                )
            workloads.append(workload)
            axes.append((network, batch, bandwidth))

        results = self.run_many(workloads)
        return SweepResult(
            SweepPoint(
                network=network,
                batch_size=batch,
                bandwidth=bandwidth,
                workload=workload,
                result=result,
            )
            for (network, batch, bandwidth), workload, result in zip(axes, workloads, results)
        )


# ---------------------------------------------------------------------- #
# Default-session management
# ---------------------------------------------------------------------- #
_DEFAULT_SESSION: EvaluationSession | None = None


def get_default_session() -> EvaluationSession:
    """The process-wide shared session, created lazily on first use."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = EvaluationSession()
    return _DEFAULT_SESSION


def set_default_session(session: EvaluationSession | None) -> EvaluationSession | None:
    """Install a new default session; returns the previous one."""
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


def resolve_session(session: EvaluationSession | None = None) -> EvaluationSession:
    """The explicit session if given, else the shared default."""
    return session if session is not None else get_default_session()


@contextmanager
def use_session(session: EvaluationSession) -> Iterator[EvaluationSession]:
    """Scope ``session`` as the default for the duration of a ``with`` block."""
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)
