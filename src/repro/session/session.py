"""EvaluationSession: the shared, cached, parallel workload engine.

One session backs one report (or one interactive study).  Every experiment
routes its simulations through :meth:`EvaluationSession.run` /
:meth:`~EvaluationSession.run_many`, so a full-report invocation simulates
each unique (platform config, network, batch, compiler flags) point exactly
once regardless of how many figures need it, and batches of independent
workloads can fan out over a process pool.

:meth:`EvaluationSession.sweep` is the declarative face of the engine:
bandwidth, batch-size and benchmark scans (Figures 15/16 and any new
scenario scan) are one call each instead of a hand-written experiment loop.

A module-level *default session* lets experiment modules be called directly
(as the pytest-benchmark harness does) while still sharing a cache; the
report runner installs its own session for the duration of a report via
:func:`use_session`.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.config import BitFusionConfig
from repro.session.cache import CacheStats, ProgramStats, ResultCache
from repro.session.engine import (
    WorkloadExecutionError,
    compose_plan,
    execute_work_unit,
    execute_workload,
    obtain_program,
    plan_workload,
    program_cache_key,
    simulate_planned_blocks,
    try_compose_from_cache,
)
from repro.session.workload import Workload, estimated_cost
from repro.sim.results import NetworkResult

__all__ = [
    "EvaluationSession",
    "SweepPoint",
    "SweepResult",
    "get_default_session",
    "set_default_session",
    "resolve_session",
    "use_session",
]


@dataclass(frozen=True)
class SweepPoint:
    """One (network, batch, bandwidth) point of a sweep and its result."""

    network: str
    batch_size: int
    bandwidth: int | None
    workload: Workload
    result: NetworkResult


class SweepResult:
    """Results of a declarative sweep, addressable by axis values."""

    def __init__(self, points: Iterable[SweepPoint]) -> None:
        self.points = tuple(points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def select(
        self,
        network: str | None = None,
        batch_size: int | None = None,
        bandwidth: int | None = None,
    ) -> list[SweepPoint]:
        """All points matching the given axis values (None matches any)."""
        return [
            point
            for point in self.points
            if (network is None or point.network == network)
            and (batch_size is None or point.batch_size == batch_size)
            and (bandwidth is None or point.bandwidth == bandwidth)
        ]

    def result(
        self,
        network: str | None = None,
        batch_size: int | None = None,
        bandwidth: int | None = None,
    ) -> NetworkResult:
        """The unique result at the given axis values; KeyError otherwise."""
        matches = self.select(network=network, batch_size=batch_size, bandwidth=bandwidth)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one sweep point for network={network!r} "
                f"batch_size={batch_size!r} bandwidth={bandwidth!r}, found {len(matches)}"
            )
        return matches[0].result

    def latency(self, **axes: object) -> float:
        """Per-inference latency (seconds) of the unique matching point."""
        return self.result(**axes).latency_per_inference_s  # type: ignore[arg-type]


class EvaluationSession:
    """Cached, optionally parallel executor of evaluation workloads.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`run_many` / :meth:`sweep`.  1 (the
        default) executes inline; higher values fan uncached workloads out
        over a ``ProcessPoolExecutor``.  Results are ordered by the input
        workload order either way, so parallel runs are byte-identical to
        serial ones.
    cache_dir:
        Optional directory for the persistent JSON artifact store; ``None``
        keeps the cache in memory only.
    cache:
        Pre-built :class:`ResultCache` to share between sessions (mutually
        exclusive with ``cache_dir``).
    max_cache_bytes:
        Optional size budget for the on-disk store (least-recently-used
        entries are evicted past it); only meaningful with ``cache_dir``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        cache: ResultCache | None = None,
        max_cache_bytes: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        if cache is not None and max_cache_bytes is not None:
            raise ValueError("max_cache_bytes only applies when the session owns its cache")
        self.jobs = jobs
        self.cache = cache if cache is not None else ResultCache(cache_dir, max_cache_bytes)
        self.stats = CacheStats()
        self._pool: ProcessPoolExecutor | None = None

    def close(self) -> None:
        """Shut down the worker pool and flush pending cache bookkeeping.

        Idempotent; cached entries themselves are untouched (only batched
        manifest recency updates are written out).
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self.cache.flush()

    def __enter__(self) -> "EvaluationSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Core execution
    # ------------------------------------------------------------------ #
    def run(self, workload: Workload) -> NetworkResult:
        """Run one workload, serving it from the cache when possible."""
        return self.run_many([workload])[0]

    def run_many(self, workloads: Iterable[Workload]) -> list[NetworkResult]:
        """Run a batch of workloads, in input order.

        The batch is deduplicated by fingerprint and resolved against the
        cache in three steps: whole results from memory, Bit Fusion results
        composed from cached program/block/layer artifacts, and only then
        fresh execution.  In-batch duplicates of a still-pending workload
        count as deduplication wins (``stats.deduped``), not cache hits —
        no cached value existed when they were looked up.  Genuinely new
        workloads are scheduled longest-job-first (estimated by network MAC
        count x batch size, ties broken by workload fingerprint so the
        schedule never depends on input order) so a process pool's tail is
        as short as possible, and results are returned in input order either
        way — parallel runs are byte-identical to serial ones.  Each unique
        workload is simulated at most once per session lifetime.

        With ``jobs > 1`` the parallel path is warm-artifact aware: the main
        process compiles centrally through the program cache and ships each
        worker only the blocks whose results are genuinely missing (see
        :mod:`repro.session.engine`).  A worker failure does not abort the
        batch — surviving results are stored first, then a
        :class:`~repro.session.engine.WorkloadExecutionError` naming every
        failed workload is raised.
        """
        ordered = list(workloads)
        keys = [workload.fingerprint() for workload in ordered]
        resolved: dict[str, NetworkResult] = {}
        pending: dict[str, Workload] = {}
        for key, workload in zip(keys, ordered):
            if key in pending:
                # Duplicate of work that is queued but not done: a dedup
                # win, not a cache hit (nothing cached served it).
                self.stats.deduped += 1
                continue
            if key in resolved:
                self.stats.hits += 1
                continue
            value, source = self.cache.get_with_source(key)
            if value is not None:
                self.stats.hits += 1
                if source == "disk":
                    self.stats.disk_hits += 1
                resolved[key] = value
                continue
            composed, from_disk = try_compose_from_cache(workload, self.cache, self.stats)
            if composed is not None:
                self.stats.hits += 1
                if from_disk:
                    self.stats.disk_hits += 1
                # Memoize the composition (memory-only: its per-block
                # artifacts already live on disk) so repeat lookups skip
                # the artifact walk.
                self.cache.put(key, composed, workload.describe(), persist=False)
                resolved[key] = composed
                continue
            self.stats.misses += 1
            pending[key] = workload
        if pending:
            # Longest job first: the costliest simulations start earliest so
            # pool workers never idle behind one giant network queued last.
            # Equal-cost workloads tie-break on their (stable, content-based)
            # fingerprint rather than input order, so the schedule is
            # identical no matter how the calling experiments ordered their
            # workloads — parallel sweep execution stays reproducible.
            items = sorted(
                pending.items(),
                key=lambda item: (-estimated_cost(item[1]), item[0]),
            )
            try:
                if self.jobs > 1 and len(items) > 1:
                    resolved.update(self._execute_parallel(items))
                else:
                    resolved.update(self._execute_serial(items))
            finally:
                # One manifest write per executed batch, not one per
                # artifact — and surviving artifacts are flushed even when a
                # parallel batch raises for a failed workload.
                self.cache.flush()
        return [resolved[key] for key in keys]

    def _execute_serial(
        self, items: list[tuple[str, Workload]]
    ) -> dict[str, NetworkResult]:
        """Run scheduled workloads inline, batching their simulations.

        Every Bit Fusion workload of the batch is planned against the cache
        first (central compile, per-block resolution through both cache
        levels, in-batch duplicates deferred to their claimant exactly like
        the parallel protocol); the genuinely missing blocks of *all* plans
        then simulate through as few vectorized batched calls as possible
        (:func:`~repro.session.engine.simulate_planned_blocks` — a sweep
        varying only simulation parameters collapses into one 2-D grid
        pass) before each workload composes in schedule order.  Baseline
        workloads (no compile stage) execute whole, as always.
        """
        claimed: set[str] = set()
        plans = [
            plan_workload(workload, self.cache, self.stats, claimed)
            for _, workload in items
        ]
        started = time.perf_counter()
        remote = simulate_planned_blocks(plans)
        self.stats.sim_seconds += time.perf_counter() - started
        resolved: dict[str, NetworkResult] = {}
        for (key, workload), plan, layers in zip(items, plans, remote):
            if plan.program is None:
                started = time.perf_counter()
                result = execute_workload(workload)
                self.stats.sim_seconds += time.perf_counter() - started
            else:
                started = time.perf_counter()
                result = compose_plan(plan, layers, self.cache, self.stats)
                self.stats.compose_seconds += time.perf_counter() - started
            self._store_result(key, workload, result)
            resolved[key] = result
        return resolved

    def _execute_parallel(
        self, items: list[tuple[str, Workload]]
    ) -> dict[str, NetworkResult]:
        """Run scheduled workloads over the pool, warm artifacts resolved first.

        Each workload is planned against the cache in the main process
        (central compile, per-block resolution through both cache levels);
        only plans with genuinely missing work ship a
        :class:`~repro.session.engine.WorkUnit` to the pool, and each unit
        is submitted the moment its plan is ready, so workers simulate the
        first networks while the main process is still compiling the rest.
        Results compose and store in schedule order, so blocks deferred to
        an earlier in-batch claimant resolve from the cache exactly as they
        would serially.
        """
        # The pool is created once per session and reused across batches
        # so workers pay the interpreter/import start-up cost only once.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        claimed: set[str] = set()
        plans = []
        futures = []
        for _, workload in items:
            plan = plan_workload(workload, self.cache, self.stats, claimed)
            plans.append(plan)
            if plan.needs_worker:
                unit = plan.work_unit()
                self.stats.workers.units += 1
                self.stats.workers.remote_blocks += len(unit.simulate_indices)
                futures.append(self._pool.submit(execute_work_unit, unit))
        replies = iter(futures)
        resolved: dict[str, NetworkResult] = {}
        failures: list[str] = []
        for (key, workload), plan in zip(items, plans):
            reply = next(replies).result() if plan.needs_worker else None
            if reply is not None and reply.error is not None:
                failures.append(reply.error)
                continue
            if reply is not None:
                # Fold worker-side wall time into the session's per-stage
                # timers so parallel footers measure the same stages.
                self.stats.compile_seconds += reply.compile_seconds
                self.stats.sim_seconds += reply.sim_seconds
            if reply is not None and reply.result is not None:
                result = reply.result
            else:
                remote = dict(reply.layers) if reply is not None else {}
                started = time.perf_counter()
                result = compose_plan(plan, remote, self.cache, self.stats)
                self.stats.compose_seconds += time.perf_counter() - started
            self._store_result(key, workload, result)
            resolved[key] = result
        if failures:
            raise WorkloadExecutionError(failures)
        return resolved

    def _store_result(self, key: str, workload: Workload, result: NetworkResult) -> None:
        """Record an execution and store its workload-level result.

        Bit Fusion results are compositions of on-disk artifacts, so the
        composed record itself stays memory-only; baseline platforms cache
        their whole result (it is their only artifact).
        """
        self.stats.record_execution(key)
        persist = workload.platform != "bitfusion"
        self.cache.put(key, result, workload.describe(), persist=persist)

    def compile_stats(self, workload: Workload) -> ProgramStats:
        """Compile a Bit Fusion workload (cached) and return program stats.

        The statistics are derived from the program-level artifact cache —
        the same compiled programs the simulation pipeline uses — so a
        report that already simulated a benchmark never recompiles it just
        to count instructions.
        """
        program, source = obtain_program(workload, self.cache, self.stats)
        if source == "miss":
            self.stats.misses += 1
            self.stats.record_execution(program_cache_key(workload))
            self.cache.flush()
        else:
            self.stats.hits += 1
            if source == "disk":
                self.stats.disk_hits += 1
        return ProgramStats.from_program(program)

    # ------------------------------------------------------------------ #
    # Declarative sweeps
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        networks: Iterable[str],
        batch_sizes: Iterable[int] = (16,),
        bandwidths: Iterable[int | None] = (None,),
        platform: str = "bitfusion",
        base_config: BitFusionConfig | None = None,
        fixed_bits: int | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
    ) -> SweepResult:
        """Run the cartesian product of networks x batch sizes x bandwidths.

        The bandwidth axis applies to Bit Fusion only (it maps to
        ``BitFusionConfig.with_bandwidth``); baseline platforms accept the
        default ``(None,)`` axis and use their paper configuration at each
        batch size.  GPU workloads need a device spec and precision, so they
        go through :meth:`run_many` with explicit workloads instead.
        """
        network_list = list(networks)
        batch_list = list(batch_sizes)
        bandwidth_list = list(bandwidths)
        if platform != "bitfusion":
            if bandwidth_list != [None]:
                raise ValueError(
                    f"the bandwidth axis only applies to bitfusion, not {platform!r}"
                )
            if (
                base_config is not None
                or fixed_bits is not None
                or not enable_loop_ordering
                or not enable_layer_fusion
            ):
                raise ValueError(
                    "base_config, fixed_bits and the compiler flags only apply to "
                    f"bitfusion sweeps, not {platform!r}"
                )

        workloads: list[Workload] = []
        axes: list[tuple[str, int, int | None]] = []
        for network, batch, bandwidth in product(network_list, batch_list, bandwidth_list):
            if platform == "bitfusion":
                config = (
                    base_config.with_batch_size(batch)
                    if base_config is not None
                    else BitFusionConfig.eyeriss_matched(batch_size=batch)
                )
                if bandwidth is not None:
                    config = config.with_bandwidth(bandwidth)
                workload = Workload.bitfusion(
                    network,
                    batch_size=batch,
                    config=config,
                    fixed_bits=fixed_bits,
                    enable_loop_ordering=enable_loop_ordering,
                    enable_layer_fusion=enable_layer_fusion,
                )
            elif platform == "eyeriss":
                workload = Workload.eyeriss(network, batch_size=batch)
            elif platform == "stripes":
                workload = Workload.stripes(network, batch_size=batch)
            elif platform == "temporal":
                workload = Workload.temporal(network, batch_size=batch)
            else:
                raise ValueError(
                    f"sweep supports bitfusion/eyeriss/stripes/temporal, not {platform!r}"
                )
            workloads.append(workload)
            axes.append((network, batch, bandwidth))

        results = self.run_many(workloads)
        return SweepResult(
            SweepPoint(
                network=network,
                batch_size=batch,
                bandwidth=bandwidth,
                workload=workload,
                result=result,
            )
            for (network, batch, bandwidth), workload, result in zip(axes, workloads, results)
        )


# ---------------------------------------------------------------------- #
# Default-session management
# ---------------------------------------------------------------------- #
_DEFAULT_SESSION: EvaluationSession | None = None


def get_default_session() -> EvaluationSession:
    """The process-wide shared session, created lazily on first use."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = EvaluationSession()
    return _DEFAULT_SESSION


def set_default_session(session: EvaluationSession | None) -> EvaluationSession | None:
    """Install a new default session; returns the previous one."""
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


def resolve_session(session: EvaluationSession | None = None) -> EvaluationSession:
    """The explicit session if given, else the shared default."""
    return session if session is not None else get_default_session()


@contextmanager
def use_session(session: EvaluationSession) -> Iterator[EvaluationSession]:
    """Scope ``session`` as the default for the duration of a ``with`` block."""
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)
