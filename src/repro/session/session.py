"""EvaluationSession: the shared, cached, parallel workload engine.

One session backs one report (or one interactive study).  Every experiment
routes its simulations through :meth:`EvaluationSession.run` /
:meth:`~EvaluationSession.run_many`, so a full-report invocation simulates
each unique (platform config, network, batch, compiler flags) point exactly
once regardless of how many figures need it, and batches of independent
workloads can fan out over a process pool.

:meth:`EvaluationSession.sweep` is the declarative face of the engine:
bandwidth, batch-size and benchmark scans (Figures 15/16 and any new
scenario scan) are one call each instead of a hand-written experiment loop.

A module-level *default session* lets experiment modules be called directly
(as the pytest-benchmark harness does) while still sharing a cache; the
report runner installs its own session for the duration of a report via
:func:`use_session`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import product
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.config import BitFusionConfig
from repro.session import testing
from repro.session.backends import (
    ExecutionBackend,
    Failure,
    InlineBackend,
    ProcessPoolBackend,
)
from repro.session.cache import CacheStats, ProgramStats, ResultCache
from repro.session.checkpoint import SweepCheckpoint
from repro.session.engine import (
    QuarantineRecord,
    WorkloadExecutionError,
    compose_plan,
    describe_workload_error,
    execute_work_unit,
    execute_workload,
    obtain_program,
    plan_workload,
    program_cache_key,
    try_compose_from_cache,
)
from repro.session.workload import Workload, estimated_cost
from repro.sim.results import NetworkResult

__all__ = [
    "EvaluationSession",
    "SweepPoint",
    "SweepResult",
    "get_default_session",
    "set_default_session",
    "resolve_session",
    "use_session",
]

#: Callback fired once per unique workload the moment its result is known
#: (cache hit at lookup, or commit after fresh execution) — the streaming
#: seam incremental Pareto reduction hangs off.
ResultCallback = Callable[[Workload, NetworkResult], None]


class _RetryError(RuntimeError):
    """A retry attempt failed; carries the already-formatted failure message."""

    def __init__(self, message: str) -> None:
        self.message = message
        super().__init__(message)


@dataclass(frozen=True)
class SweepPoint:
    """One (network, batch, bandwidth) point of a sweep and its result."""

    network: str
    batch_size: int
    bandwidth: int | None
    workload: Workload
    result: NetworkResult


class SweepResult:
    """Results of a declarative sweep, addressable by axis values."""

    def __init__(self, points: Iterable[SweepPoint]) -> None:
        self.points = tuple(points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def select(
        self,
        network: str | None = None,
        batch_size: int | None = None,
        bandwidth: int | None = None,
    ) -> list[SweepPoint]:
        """All points matching the given axis values (None matches any)."""
        return [
            point
            for point in self.points
            if (network is None or point.network == network)
            and (batch_size is None or point.batch_size == batch_size)
            and (bandwidth is None or point.bandwidth == bandwidth)
        ]

    def result(
        self,
        network: str | None = None,
        batch_size: int | None = None,
        bandwidth: int | None = None,
    ) -> NetworkResult:
        """The unique result at the given axis values; KeyError otherwise."""
        matches = self.select(network=network, batch_size=batch_size, bandwidth=bandwidth)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one sweep point for network={network!r} "
                f"batch_size={batch_size!r} bandwidth={bandwidth!r}, found {len(matches)}"
            )
        return matches[0].result

    def latency(self, **axes: object) -> float:
        """Per-inference latency (seconds) of the unique matching point."""
        return self.result(**axes).latency_per_inference_s  # type: ignore[arg-type]


class EvaluationSession:
    """Cached, optionally parallel executor of evaluation workloads.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`run_many` / :meth:`sweep`.  1 (the
        default) executes inline; higher values fan uncached workloads out
        over a ``ProcessPoolExecutor``.  Results are ordered by the input
        workload order either way, so parallel runs are byte-identical to
        serial ones.  Shorthand for ``backend=ProcessPoolBackend(jobs)``.
    backend:
        Explicit :class:`~repro.session.backends.ExecutionBackend` owning
        where pending work executes (inline, process pool, or remote TCP
        workers).  Mutually exclusive with a non-default ``jobs``; the
        session adopts the backend's job count when it has one.  The
        session retains everything else — cache resolution, commit
        ordering, retry-once/quarantine, the checkpoint journal — so every
        backend shares the same fault-tolerance and byte-identity
        contracts.
    cache_dir:
        Optional directory for the persistent artifact store (segmented
        pack-file layout by default; legacy JSON-per-entry directories are
        served and migrated transparently — see
        :mod:`repro.session.store`); ``None`` keeps the cache in memory
        only.
    cache:
        Pre-built :class:`ResultCache` to share between sessions (mutually
        exclusive with ``cache_dir``).
    max_cache_bytes:
        Optional size budget for the on-disk store (least-recently-used
        entries are evicted past it); only meaningful with ``cache_dir``.
    checkpoint:
        Optional :class:`~repro.session.checkpoint.SweepCheckpoint` journal.
        When given, every scheduled workload is journaled as planned before
        execution and as completed the moment its result is stored — and
        the serial path commits **per workload** (plan → simulate → compose
        → store → journal, in schedule order) instead of batching the whole
        schedule's simulations, so a run killed at an arbitrary point loses
        at most its one in-flight workload.  The trade is deliberate:
        checkpointed runs give up cross-point grid merging
        (:func:`~repro.session.engine.simulate_planned_blocks` over the
        whole batch) in exchange for kill-anywhere resumability; results
        are bit-identical either way (the batched executor is bit-exact
        against the scalar path by contract).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
        cache: ResultCache | None = None,
        max_cache_bytes: int | None = None,
        checkpoint: SweepCheckpoint | None = None,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if backend is not None and jobs != 1:
            raise ValueError("pass either backend or jobs, not both")
        if cache is not None and cache_dir is not None:
            raise ValueError("pass either cache or cache_dir, not both")
        if cache is not None and max_cache_bytes is not None:
            raise ValueError("max_cache_bytes only applies when the session owns its cache")
        if backend is None:
            backend = ProcessPoolBackend(jobs) if jobs > 1 else InlineBackend()
        self.backend = backend
        self.jobs = getattr(backend, "jobs", jobs)
        self.cache = cache if cache is not None else ResultCache(cache_dir, max_cache_bytes)
        self.stats = CacheStats()
        self.checkpoint = checkpoint

    @property
    def _pool(self):
        """The process-pool backend's executor (tests swap in stand-ins)."""
        return getattr(self.backend, "_pool", None)

    @_pool.setter
    def _pool(self, pool) -> None:
        self.backend._pool = pool

    def close(self) -> None:
        """Shut down the execution backend and flush cache bookkeeping.

        Idempotent; cached entries themselves are untouched (only batched
        manifest recency updates are written out).
        """
        self.backend.close()
        if self.checkpoint is not None:
            self.checkpoint.close()
        self.cache.close()

    def __enter__(self) -> "EvaluationSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Core execution
    # ------------------------------------------------------------------ #
    def run(self, workload: Workload) -> NetworkResult:
        """Run one workload, serving it from the cache when possible."""
        return self.run_many([workload])[0]

    def run_many(
        self,
        workloads: Iterable[Workload],
        on_result: ResultCallback | None = None,
    ) -> list[NetworkResult]:
        """Run a batch of workloads, in input order.

        The batch is deduplicated by fingerprint and resolved against the
        cache in three steps: whole results from memory, Bit Fusion results
        composed from cached program/block/layer artifacts, and only then
        fresh execution.  In-batch duplicates of a still-pending workload
        count as deduplication wins (``stats.deduped``), not cache hits —
        no cached value existed when they were looked up.  Genuinely new
        workloads are scheduled longest-job-first (estimated by network MAC
        count x batch size, ties broken by workload fingerprint so the
        schedule never depends on input order) so a process pool's tail is
        as short as possible, and results are returned in input order either
        way — parallel runs are byte-identical to serial ones.  Each unique
        workload is simulated at most once per session lifetime.

        With ``jobs > 1`` the parallel path is warm-artifact aware: the main
        process compiles centrally through the program cache and ships each
        worker only the blocks whose results are genuinely missing (see
        :mod:`repro.session.engine`).

        **Fault tolerance** (serial and parallel alike): a workload whose
        execution fails — a worker error reply, a crashed worker process, a
        raising simulation or composition — is retried exactly once, inline
        in the coordinating process (immune to pool state).  If the retry
        fails too, the workload is quarantined: journaled (when a checkpoint
        is attached), counted in ``stats.retries``, and reported through a
        :class:`~repro.session.engine.WorkloadExecutionError` carrying the
        quarantine list — raised only *after* every surviving result and
        artifact has been stored, so one bad workload costs the batch
        nothing but its own point.

        ``on_result`` (when given) fires once per unique workload the moment
        its result is known — at cache-lookup time for warm workloads, at
        commit time for fresh ones — so callers can stream incremental
        reductions (the sweep runner's Pareto archive) while the batch runs.
        With a session :attr:`checkpoint`, every scheduled workload is
        journaled as planned up front and as completed at commit.
        """
        ordered = list(workloads)
        keys = [workload.fingerprint() for workload in ordered]
        resolved: dict[str, NetworkResult] = {}
        pending: dict[str, Workload] = {}
        for key, workload in zip(keys, ordered):
            if key in pending:
                # Duplicate of work that is queued but not done: a dedup
                # win, not a cache hit (nothing cached served it).
                self.stats.deduped += 1
                continue
            if key in resolved:
                self.stats.hits += 1
                continue
            value, source = self.cache.get_with_source(key)
            if value is not None:
                self.stats.hits += 1
                if source == "disk":
                    self.stats.disk_hits += 1
                resolved[key] = value
                self._note_resolved(key, workload, value, on_result)
                continue
            composed, from_disk = try_compose_from_cache(workload, self.cache, self.stats)
            if composed is not None:
                self.stats.hits += 1
                if from_disk:
                    self.stats.disk_hits += 1
                # Memoize the composition (memory-only: its per-block
                # artifacts already live on disk) so repeat lookups skip
                # the artifact walk.
                self.cache.put(key, composed, workload.describe(), persist=False)
                resolved[key] = composed
                self._note_resolved(key, workload, composed, on_result)
                continue
            self.stats.misses += 1
            pending[key] = workload
        if pending:
            # Longest job first: the costliest simulations start earliest so
            # pool workers never idle behind one giant network queued last.
            # Equal-cost workloads tie-break on their (stable, content-based)
            # fingerprint rather than input order, so the schedule is
            # identical no matter how the calling experiments ordered their
            # workloads — parallel sweep execution stays reproducible.
            items = sorted(
                pending.items(),
                key=lambda item: (-estimated_cost(item[1]), item[0]),
            )
            if self.checkpoint is not None:
                for key, workload in items:
                    self.checkpoint.record_planned(key, workload.label())
            try:
                executed, failures = self.backend.execute(self, items, on_result)
                resolved.update(executed)
                if failures:
                    self._finish_failures(failures, resolved, on_result)
            finally:
                # One manifest (and, pack layout, one segment-index) write
                # per executed batch, not one per artifact — and surviving
                # artifacts are flushed even when a batch raises for a
                # quarantined workload.
                self.cache.flush()
        return [resolved[key] for key in keys]

    def _finish_plan(self, workload: Workload, plan, layers) -> NetworkResult:
        """Compose a planned Bit Fusion workload (or run a baseline whole)."""
        if plan.program is None:
            started = time.perf_counter()
            result = execute_workload(workload)
            self.stats.sim_seconds += time.perf_counter() - started
        else:
            started = time.perf_counter()
            result = compose_plan(plan, layers, self.cache, self.stats)
            self.stats.compose_seconds += time.perf_counter() - started
        return result

    def _compose_plan(self, plan, remote) -> NetworkResult:
        """Compose a plan from worker-delivered layers plus cached artifacts."""
        return compose_plan(plan, remote, self.cache, self.stats)

    # ------------------------------------------------------------------ #
    # Retry-once / quarantine policy
    # ------------------------------------------------------------------ #
    def _finish_failures(
        self,
        failures: list[Failure],
        resolved: dict[str, NetworkResult],
        on_result: ResultCallback | None,
    ) -> None:
        """Retry every failed workload once; quarantine what fails again.

        Runs after the batch's surviving workloads have all been committed,
        so a retried workload resolves every artifact a successful neighbour
        (or in-batch claimant) already stored.  Retries execute inline in
        the coordinating process through :func:`~repro.session.engine.
        execute_work_unit` — a fresh execution immune to worker-pool state,
        and still routed through the fault-injection seam so chaos tests
        can exercise both outcomes.  If any workload fails its retry, a
        :class:`~repro.session.engine.WorkloadExecutionError` carrying the
        quarantine list is raised at the very end.
        """
        messages: list[str] = []
        quarantined: list[QuarantineRecord] = []
        for failure in failures:
            if self.checkpoint is not None:
                self.checkpoint.record_failed(
                    failure.key, failure.workload.label(), failure.message, attempt=1
                )
            self.stats.retries += 1
            try:
                result = self._retry_workload(failure.workload)
            except Exception as error:
                message = (
                    error.message
                    if isinstance(error, _RetryError)
                    else describe_workload_error(failure.workload, error)
                )
                messages.append(message)
                quarantined.append(
                    QuarantineRecord(
                        fingerprint=failure.key,
                        label=failure.workload.label(),
                        error=message,
                    )
                )
                if self.checkpoint is not None:
                    self.checkpoint.record_quarantined(
                        failure.key, failure.workload.label(), message
                    )
                continue
            self._commit(failure.key, failure.workload, result, on_result)
            resolved[failure.key] = result
        if quarantined:
            raise WorkloadExecutionError(messages, quarantined=tuple(quarantined))

    def _retry_workload(self, workload: Workload) -> NetworkResult:
        """One retry attempt: replan against the cache, execute, compose.

        Planned with throwaway statistics — retry work is accounted by
        ``stats.retries`` alone, so the per-stage counters (and the footer
        lines CI greps) keep describing the fault-free pipeline.  The replan
        sees everything the failed first attempt and its neighbours already
        stored, so a transient fault usually retries into a mostly-warm
        compose.
        """
        retry_stats = CacheStats()
        plan = plan_workload(workload, self.cache, retry_stats, set())
        remote: dict[int, object] = {}
        if plan.needs_worker:
            reply = execute_work_unit(plan.work_unit())
            if reply.error is not None:
                raise _RetryError(reply.error)
            if reply.result is not None:
                return reply.result
            remote = dict(reply.layers)
        return compose_plan(plan, remote, self.cache, retry_stats)

    # ------------------------------------------------------------------ #
    # Committing results
    # ------------------------------------------------------------------ #
    def _note_resolved(
        self,
        key: str,
        workload: Workload,
        result: NetworkResult,
        on_result: ResultCallback | None,
    ) -> None:
        """A workload resolved straight from the cache at lookup time."""
        if self.checkpoint is not None:
            self.checkpoint.record_completed(key)
        if on_result is not None:
            on_result(workload, result)

    def _commit(
        self,
        key: str,
        workload: Workload,
        result: NetworkResult,
        on_result: ResultCallback | None,
    ) -> None:
        """Store a fresh result, journal it, and notify the stream.

        Ordering is the crash-safety contract: the artifacts and result are
        stored first, the checkpoint's ``completed`` event is appended and
        flushed second, stream callbacks fire third, and the test-only
        after-commit hook (the kill point of the fault-injection harness)
        fires last — so anything that dies *at* the hook leaves a journal
        that only ever under-reports completed work, never over-reports it.
        """
        self._store_result(key, workload, result)
        if self.checkpoint is not None:
            self.checkpoint.record_completed(key)
        if on_result is not None:
            on_result(workload, result)
        testing.fire_after_commit(workload, result)

    def _store_result(self, key: str, workload: Workload, result: NetworkResult) -> None:
        """Record an execution and store its workload-level result.

        Bit Fusion results are compositions of on-disk artifacts, so the
        composed record itself stays memory-only; baseline platforms cache
        their whole result (it is their only artifact).
        """
        self.stats.record_execution(key)
        persist = workload.platform != "bitfusion"
        self.cache.put(key, result, workload.describe(), persist=persist)

    def compile_stats(self, workload: Workload) -> ProgramStats:
        """Compile a Bit Fusion workload (cached) and return program stats.

        The statistics are derived from the program-level artifact cache —
        the same compiled programs the simulation pipeline uses — so a
        report that already simulated a benchmark never recompiles it just
        to count instructions.
        """
        program, source = obtain_program(workload, self.cache, self.stats)
        if source == "miss":
            self.stats.misses += 1
            self.stats.record_execution(program_cache_key(workload))
            self.cache.flush()
        else:
            self.stats.hits += 1
            if source == "disk":
                self.stats.disk_hits += 1
        return ProgramStats.from_program(program)

    # ------------------------------------------------------------------ #
    # Declarative sweeps
    # ------------------------------------------------------------------ #
    def sweep(
        self,
        networks: Iterable[str],
        batch_sizes: Iterable[int] = (16,),
        bandwidths: Iterable[int | None] = (None,),
        platform: str = "bitfusion",
        base_config: BitFusionConfig | None = None,
        fixed_bits: int | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
    ) -> SweepResult:
        """Run the cartesian product of networks x batch sizes x bandwidths.

        The bandwidth axis applies to Bit Fusion only (it maps to
        ``BitFusionConfig.with_bandwidth``); baseline platforms accept the
        default ``(None,)`` axis and use their paper configuration at each
        batch size.  GPU workloads need a device spec and precision, so they
        go through :meth:`run_many` with explicit workloads instead.
        """
        network_list = list(networks)
        batch_list = list(batch_sizes)
        bandwidth_list = list(bandwidths)
        if platform != "bitfusion":
            if bandwidth_list != [None]:
                raise ValueError(
                    f"the bandwidth axis only applies to bitfusion, not {platform!r}"
                )
            if (
                base_config is not None
                or fixed_bits is not None
                or not enable_loop_ordering
                or not enable_layer_fusion
            ):
                raise ValueError(
                    "base_config, fixed_bits and the compiler flags only apply to "
                    f"bitfusion sweeps, not {platform!r}"
                )

        workloads: list[Workload] = []
        axes: list[tuple[str, int, int | None]] = []
        for network, batch, bandwidth in product(network_list, batch_list, bandwidth_list):
            if platform == "bitfusion":
                config = (
                    base_config.with_batch_size(batch)
                    if base_config is not None
                    else BitFusionConfig.eyeriss_matched(batch_size=batch)
                )
                if bandwidth is not None:
                    config = config.with_bandwidth(bandwidth)
                workload = Workload.bitfusion(
                    network,
                    batch_size=batch,
                    config=config,
                    fixed_bits=fixed_bits,
                    enable_loop_ordering=enable_loop_ordering,
                    enable_layer_fusion=enable_layer_fusion,
                )
            elif platform == "eyeriss":
                workload = Workload.eyeriss(network, batch_size=batch)
            elif platform == "stripes":
                workload = Workload.stripes(network, batch_size=batch)
            elif platform == "temporal":
                workload = Workload.temporal(network, batch_size=batch)
            else:
                raise ValueError(
                    f"sweep supports bitfusion/eyeriss/stripes/temporal, not {platform!r}"
                )
            workloads.append(workload)
            axes.append((network, batch, bandwidth))

        results = self.run_many(workloads)
        return SweepResult(
            SweepPoint(
                network=network,
                batch_size=batch,
                bandwidth=bandwidth,
                workload=workload,
                result=result,
            )
            for (network, batch, bandwidth), workload, result in zip(axes, workloads, results)
        )


# ---------------------------------------------------------------------- #
# Default-session management
# ---------------------------------------------------------------------- #
_DEFAULT_SESSION: EvaluationSession | None = None


def get_default_session() -> EvaluationSession:
    """The process-wide shared session, created lazily on first use."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = EvaluationSession()
    return _DEFAULT_SESSION


def set_default_session(session: EvaluationSession | None) -> EvaluationSession | None:
    """Install a new default session; returns the previous one."""
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


def resolve_session(session: EvaluationSession | None = None) -> EvaluationSession:
    """The explicit session if given, else the shared default."""
    return session if session is not None else get_default_session()


@contextmanager
def use_session(session: EvaluationSession) -> Iterator[EvaluationSession]:
    """Scope ``session`` as the default for the duration of a ``with`` block."""
    previous = set_default_session(session)
    try:
        yield session
    finally:
        set_default_session(previous)
