"""Workload: one (platform, network, batch, compiler-flags) evaluation point.

A :class:`Workload` is the unit of work the evaluation session caches and
parallelizes.  It names everything that determines a simulation's outcome —
the platform and its configuration, the benchmark network (and any variant
or bitwidth transform applied to it), the batch size and the Bit Fusion
compiler flags — and condenses all of it into a stable content
:meth:`~Workload.fingerprint` suitable as a cache key that survives process
boundaries and on-disk round trips.

Workloads are frozen dataclasses built from picklable parts only, so a
process pool can ship them to worker processes unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, is_dataclass, replace
from typing import Any

from repro.fingerprint import fingerprint_payload

from repro.baselines.eyeriss import EyerissConfig
from repro.baselines.gpu import GpuPrecision, GpuSpec
from repro.baselines.stripes import StripesConfig
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.network import Network

__all__ = [
    "Workload",
    "PLATFORMS",
    "fixed_bitwidth_network",
    "load_network",
    "network_digest",
    "estimated_cost",
]

#: Platform identifiers the session knows how to build models for.
PLATFORMS = ("bitfusion", "eyeriss", "stripes", "gpu", "temporal")

#: Memoized network-structure digests keyed by (canonical name, variant,
#: fixed_bits).  The model zoo is static at runtime, so rebuilding and
#: re-hashing the same network for every cache lookup would be pure waste.
_NETWORK_DIGESTS: dict[tuple[str, str, int | None], str] = {}

#: Memoized per-sample MAC counts, same key, for job-size estimation.
_NETWORK_MACS: dict[tuple[str, str, int | None], int] = {}


def fixed_bitwidth_network(network: Network, bits: int = 8) -> Network:
    """Copy of a network with every layer forced to a fixed operand bitwidth.

    This is what a fixed-precision accelerator built on the same fabric
    would execute; the ablation experiments use it to isolate the benefit
    of bit-level fusion itself.
    """
    fixed = Network(f"{network.name}-{bits}bit")
    for layer in network:
        fixed.add(replace(layer, input_bits=bits, weight_bits=bits, output_bits=bits))
    return fixed


@dataclass(frozen=True)
class Workload:
    """One evaluation point: a network on a configured platform.

    Attributes
    ----------
    platform:
        One of :data:`PLATFORMS`.
    network:
        Benchmark name from the model zoo (``repro.dnn.models.BENCHMARKS``).
    batch_size:
        Inference batch size.
    variant:
        ``"quantized"`` runs the model evaluated on Bit Fusion / Stripes;
        ``"baseline"`` runs the regular (non-widened) variant the paper uses
        for Eyeriss and the GPUs.
    fixed_bits:
        When set, every layer is forced to this operand bitwidth before
        execution (the ablation experiments' fixed-precision strawman).
    config:
        Platform configuration dataclass (``BitFusionConfig``,
        ``EyerissConfig``, ``StripesConfig`` or ``GpuSpec``).  ``None``
        selects the platform's paper-default configuration at
        :attr:`batch_size`.
    gpu_precision:
        ``"fp32"`` or ``"int8"``; only meaningful for the GPU platform.
    enable_loop_ordering, enable_layer_fusion:
        Fusion compiler flags; only meaningful for the Bit Fusion platform
        but always part of the fingerprint so flag changes invalidate
        cached results.
    """

    platform: str
    network: str
    batch_size: int = 16
    variant: str = "quantized"
    fixed_bits: int | None = None
    config: Any = None
    gpu_precision: str | None = None
    enable_loop_ordering: bool = True
    enable_layer_fusion: bool = True

    def __post_init__(self) -> None:
        if self.platform not in PLATFORMS:
            raise ValueError(
                f"unknown platform {self.platform!r}; expected one of {PLATFORMS}"
            )
        try:
            # Canonicalize aliases ("alexnet", "cifar10", ...) so equivalent
            # workloads collapse onto one fingerprint.
            object.__setattr__(self, "network", models.canonical_name(self.network))
        except KeyError as error:
            raise ValueError(str(error)) from None
        if self.batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {self.batch_size}")
        if self.variant not in ("quantized", "baseline"):
            raise ValueError(f"variant must be 'quantized' or 'baseline', got {self.variant!r}")
        if self.platform == "gpu":
            if self.gpu_precision not in ("fp32", "int8"):
                raise ValueError(
                    f"gpu workloads need gpu_precision 'fp32' or 'int8', got {self.gpu_precision!r}"
                )
            if self.config is None:
                raise ValueError(
                    "gpu workloads need a device spec as config (e.g. TEGRA_X2, TITAN_XP)"
                )
        # Resolve default configurations eagerly so semantically identical
        # workloads (bare constructor vs named constructor) share one
        # fingerprint, and the fingerprint always hashes what actually runs.
        if self.config is None:
            if self.platform == "bitfusion":
                object.__setattr__(
                    self, "config", BitFusionConfig.eyeriss_matched(batch_size=self.batch_size)
                )
            elif self.platform == "eyeriss":
                object.__setattr__(self, "config", EyerissConfig(batch_size=self.batch_size))
            elif self.platform == "stripes":
                object.__setattr__(self, "config", StripesConfig(batch_size=self.batch_size))
        elif self.platform == "temporal":
            raise ValueError(
                "temporal workloads take no config (the model is the paper's "
                "fixed same-area design)"
            )

    # ------------------------------------------------------------------ #
    # Named constructors (one per platform, paper-default configurations)
    # ------------------------------------------------------------------ #
    @staticmethod
    def bitfusion(
        network: str,
        batch_size: int = 16,
        config: BitFusionConfig | None = None,
        fixed_bits: int | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
    ) -> "Workload":
        """A Bit Fusion run; defaults to the Eyeriss-matched configuration.

        Using the same default everywhere is what lets different experiments
        share cached simulations: Figure 13's runs, Figure 15's 128 bits/cycle
        points, Figure 16's batch-16 points and the ablation baselines all
        collapse onto identical workloads.
        """
        return Workload(
            platform="bitfusion",
            network=network,
            batch_size=batch_size,
            fixed_bits=fixed_bits,
            config=config,
            enable_loop_ordering=enable_loop_ordering,
            enable_layer_fusion=enable_layer_fusion,
        )

    @staticmethod
    def eyeriss(
        network: str, batch_size: int = 16, config: EyerissConfig | None = None
    ) -> "Workload":
        """An Eyeriss run on the regular (non-widened) model variant."""
        return Workload(
            platform="eyeriss",
            network=network,
            batch_size=batch_size,
            variant="baseline",
            config=config,
        )

    @staticmethod
    def stripes(
        network: str, batch_size: int = 16, config: StripesConfig | None = None
    ) -> "Workload":
        """A Stripes run on the quantized model variant (Figure 18)."""
        return Workload(
            platform="stripes",
            network=network,
            batch_size=batch_size,
            config=config,
        )

    @staticmethod
    def gpu(
        network: str,
        spec: GpuSpec,
        precision: GpuPrecision | str = GpuPrecision.FP32,
        batch_size: int = 16,
    ) -> "Workload":
        """A GPU roofline run on the regular model variant (Figure 17)."""
        value = precision.value if isinstance(precision, GpuPrecision) else precision
        return Workload(
            platform="gpu",
            network=network,
            batch_size=batch_size,
            variant="baseline",
            config=spec,
            gpu_precision=value,
        )

    @staticmethod
    def temporal(network: str, batch_size: int = 16) -> "Workload":
        """A same-area temporal bit-serial design run (Section III-C)."""
        return Workload(platform="temporal", network=network, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # Fingerprinting
    # ------------------------------------------------------------------ #
    def _config_payload(self) -> dict[str, Any] | None:
        if self.config is None:
            return None
        if is_dataclass(self.config):
            return {"type": type(self.config).__name__, **asdict(self.config)}
        raise TypeError(
            f"workload config must be a dataclass, got {type(self.config).__name__}"
        )

    def fingerprint(self) -> str:
        """Stable content hash of everything that determines the result.

        Includes the *structure* of the resolved network (via
        :meth:`repro.dnn.network.Network.fingerprint`), so a change to the
        model zoo invalidates cached results for the affected benchmark.
        """
        payload: dict[str, Any] = {
            "platform": self.platform,
            "network": self.network,
            "network_fingerprint": network_digest(self),
            "batch_size": self.batch_size,
            "variant": self.variant,
            "fixed_bits": self.fixed_bits,
            "config": self._config_payload(),
            "gpu_precision": self.gpu_precision,
        }
        if self.platform == "bitfusion":
            payload["compiler"] = {
                "enable_loop_ordering": self.enable_loop_ordering,
                "enable_layer_fusion": self.enable_layer_fusion,
            }
        return fingerprint_payload(payload)

    def label(self) -> str:
        """Compact one-line description for logs and error messages.

        Parallel execution attaches this to worker failures so one raising
        workload in a pool batch names itself instead of aborting the whole
        batch anonymously.
        """
        parts = [f"{self.platform}/{self.network}", f"batch={self.batch_size}"]
        if self.variant != "quantized":
            parts.append(f"variant={self.variant}")
        if self.fixed_bits is not None:
            parts.append(f"fixed_bits={self.fixed_bits}")
        config_name = getattr(self.config, "name", None)
        if config_name:
            parts.append(f"config={config_name}")
        if self.gpu_precision is not None:
            parts.append(f"precision={self.gpu_precision}")
        return " ".join(parts)

    def describe(self) -> dict[str, Any]:
        """Human-readable JSON description stored next to on-disk entries."""
        return {
            "platform": self.platform,
            "network": self.network,
            "batch_size": self.batch_size,
            "variant": self.variant,
            "fixed_bits": self.fixed_bits,
            "config": None if self.config is None else type(self.config).__name__,
            "config_name": getattr(self.config, "name", None),
            "gpu_precision": self.gpu_precision,
            "enable_loop_ordering": self.enable_loop_ordering,
            "enable_layer_fusion": self.enable_layer_fusion,
        }


def load_network(workload: Workload) -> Network:
    """Materialize the network a workload runs (variant plus transforms)."""
    if workload.variant == "baseline":
        network = models.load_baseline_variant(workload.network)
    else:
        network = models.load(workload.network)
    if workload.fixed_bits is not None:
        network = fixed_bitwidth_network(network, workload.fixed_bits)
    return network


def network_digest(workload: Workload) -> str:
    """Structure fingerprint of the network a workload resolves to (memoized).

    Both the workload fingerprint and the compile-stage cache key hash this
    digest, so they can never disagree about what "the same network" means.
    """
    digest_key = (workload.network, workload.variant, workload.fixed_bits)
    if digest_key not in _NETWORK_DIGESTS:
        _NETWORK_DIGESTS[digest_key] = load_network(workload).fingerprint()
    return _NETWORK_DIGESTS[digest_key]


def estimated_cost(workload: Workload) -> int:
    """Rough simulation-cost estimate: network MAC count x batch size.

    The estimate only needs to *rank* jobs: :meth:`EvaluationSession.run_many
    <repro.session.session.EvaluationSession.run_many>` schedules uncached
    workloads longest-job-first so a process pool is never left waiting on
    one giant network scheduled last (the classic long-tail of wide sweeps).
    """
    macs_key = (workload.network, workload.variant, workload.fixed_bits)
    if macs_key not in _NETWORK_MACS:
        _NETWORK_MACS[macs_key] = load_network(workload).total_macs()
    return _NETWORK_MACS[macs_key] * workload.batch_size
