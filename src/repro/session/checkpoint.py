"""Append-only sweep checkpoint journal: planned / completed / quarantined.

A :class:`SweepCheckpoint` is the durable progress record of one sweep (or
NAS search): an append-only JSONL file, one event per line, living next to
the artifact cache directory (``<cache-dir>/sweep-checkpoint.jsonl`` — the
``.jsonl`` suffix keeps it invisible to the cache's ``*.json`` entry glob).
Every event is written *and flushed* the moment it happens, so a run killed
at an arbitrary point — including ``SIGKILL``, which runs no cleanup — loses
at most the event being written, never an earlier one.

The journal records four event kinds:

* ``planned`` — a workload fingerprint entered the execution schedule;
* ``completed`` — its result was composed and stored (the artifact cache
  holds everything needed to recompose it, so a resumed run serves it
  without fresh work);
* ``failed`` — one execution attempt failed (the retry-once policy records
  the first attempt here before retrying);
* ``quarantined`` — the retry failed too and the workload was set aside
  with its labelled error.

Loading is **corruption-tolerant**: a half-written final line (the SIGKILL
case), trailing garbage or a hand-edited file degrade to a warning and the
affected lines are skipped — a checkpoint can make a resumed run *faster*,
never wrong, because resumption double-checks every completed fingerprint
against the artifact cache (:func:`~repro.session.engine.
audit_workload_cache`) before trusting it.  Events are replayed in file
order, so a fingerprint quarantined in one leg and completed in a later one
counts as completed.

The journal is *advisory by design*: the artifact cache remains the source
of truth for what work exists (its entry files are written atomically and
read directly from disk, independent of the batched manifest), and the
checkpoint is the source of truth for *progress accounting* — what the
``sweep --resume`` footer reports and what the quarantine policy remembers.

**Concurrent writers** are safe two ways.  Every append takes an advisory
``fcntl`` lock on the journal file (where the platform has ``fcntl``), so
two coordinators sharing a cache directory cannot interleave a torn JSONL
line.  Alternatively, a coordinator constructed with a ``writer`` name
appends to its own suffixed sibling (``sweep-checkpoint.alice.jsonl``) and
never contends at all; loading replays the base journal and then every
sibling in sorted-name order, so any coordinator resuming against the
shared directory sees the union of all writers' progress.
"""

from __future__ import annotations

import json
import re
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, IO

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # non-Unix: appends stay single-writer-safe only
    fcntl = None  # type: ignore[assignment]

__all__ = ["CheckpointRecord", "SweepCheckpoint"]

#: File name used by ``python -m repro.harness sweep --cache-dir`` (and the
#: NAS equivalent).  The ``.jsonl`` suffix is load-bearing: the cache
#: directory's manifest rebuild globs ``*.json`` and must never sweep the
#: journal up as a (corrupt) cache entry.
SWEEP_CHECKPOINT_NAME = "sweep-checkpoint.jsonl"
NAS_CHECKPOINT_NAME = "nas-checkpoint.jsonl"

_EVENTS = ("planned", "completed", "failed", "quarantined")


@dataclass(frozen=True)
class CheckpointRecord:
    """One journaled failure or quarantine: who failed, and how."""

    fingerprint: str
    label: str
    error: str


class SweepCheckpoint:
    """Append-only JSONL journal of one sweep's execution progress.

    Parameters
    ----------
    path:
        The journal file.  Created (with its parent directory) on the first
        recorded event; an existing file is replayed on construction —
        along with any per-writer siblings (``<stem>.<writer><suffix>``)
        other coordinators left beside it.
    writer:
        Optional writer name (e.g. a hostname).  When given, this
        checkpoint's appends go to its own suffixed sibling journal instead
        of ``path`` itself, so multiple coordinators sharing a cache
        directory never contend on one file.  Names are restricted to
        ``[A-Za-z0-9._-]`` so the sibling glob stays unambiguous.
    """

    def __init__(self, path: str | Path, writer: str | None = None) -> None:
        self.path = Path(path)
        if writer is not None and not re.fullmatch(r"[A-Za-z0-9._-]+", writer):
            raise ValueError(
                f"writer name {writer!r} must match [A-Za-z0-9._-]+"
            )
        self.writer = writer
        #: Where this instance appends: the base path, or a writer sibling.
        self.write_path = (
            self.path
            if writer is None
            else self.path.with_name(f"{self.path.stem}.{writer}{self.path.suffix}")
        )
        self._handle: IO[str] | None = None
        #: fingerprint -> label, every workload ever scheduled.
        self._planned: dict[str, str] = {}
        self._completed: set[str] = set()
        #: fingerprint -> most recent quarantine record.
        self._quarantined: dict[str, CheckpointRecord] = {}
        #: fingerprint -> journaled failed attempts (retries included).
        self._failed: dict[str, list[CheckpointRecord]] = {}
        #: Lines skipped as unreadable during the last load.
        self.corrupt_lines = 0
        self._load()

    # ------------------------------------------------------------------ #
    # Loading (corruption-tolerant)
    # ------------------------------------------------------------------ #
    def _sibling_paths(self) -> list[Path]:
        """Per-writer sibling journals beside the base path, sorted by name."""
        pattern = f"{self.path.stem}.*{self.path.suffix}"
        return sorted(
            sibling
            for sibling in self.path.parent.glob(pattern)
            if sibling != self.path
        )

    def _load(self) -> None:
        # Replay the base journal first, then every writer sibling in
        # sorted-name order: the merge is deterministic, and since a later
        # ``completed`` supersedes an earlier ``quarantined`` (and vice
        # versa per _apply), the union of all coordinators' progress is
        # what a resumed run sees.
        for journal in [self.path, *self._sibling_paths()]:
            self._load_file(journal)

    def _load_file(self, journal: Path) -> None:
        if not journal.exists():
            return
        try:
            text = journal.read_text(encoding="utf-8")
        except OSError as error:  # unreadable journal: warn, start fresh
            warnings.warn(
                f"sweep checkpoint {journal} is unreadable ({error}); "
                "treating its events as unrecorded",
                stacklevel=2,
            )
            return
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                event = json.loads(line)
                if not isinstance(event, dict):
                    raise ValueError("event is not an object")
                self._apply(event)
            except (ValueError, KeyError, TypeError):
                # A truncated final line is the normal SIGKILL signature;
                # anything else unreadable is equally non-fatal — the
                # artifact cache, not the journal, decides what re-runs.
                self.corrupt_lines += 1
                warnings.warn(
                    f"sweep checkpoint {journal} line {number} is corrupt; "
                    "skipping it (affected workloads will simply replan)",
                    stacklevel=2,
                )

    def _apply(self, event: dict[str, Any]) -> None:
        kind = event["event"]
        if kind not in _EVENTS:
            raise ValueError(f"unknown checkpoint event {kind!r}")
        fingerprint = event["fingerprint"]
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ValueError("checkpoint event carries no fingerprint")
        label = str(event.get("label", ""))
        if kind == "planned":
            self._planned.setdefault(fingerprint, label)
        elif kind == "completed":
            self._completed.add(fingerprint)
            # A later success supersedes an earlier quarantine (the resumed
            # leg retried the workload and it survived).
            self._quarantined.pop(fingerprint, None)
        else:
            record = CheckpointRecord(
                fingerprint=fingerprint,
                label=label or self._planned.get(fingerprint, ""),
                error=str(event.get("error", "")),
            )
            if kind == "failed":
                self._failed.setdefault(fingerprint, []).append(record)
            else:
                self._quarantined[fingerprint] = record
                self._completed.discard(fingerprint)

    # ------------------------------------------------------------------ #
    # Recording (append + flush per event)
    # ------------------------------------------------------------------ #
    def _append(self, event: dict[str, Any]) -> None:
        if self._handle is None:
            self.write_path.parent.mkdir(parents=True, exist_ok=True)
            # A SIGKILLed writer can leave the file ending mid-line; close
            # that line off before appending, or the first new event would
            # concatenate onto the garbage and be lost to the next load.
            unterminated = False
            try:
                with self.write_path.open("rb") as probe:
                    probe.seek(-1, 2)
                    unterminated = probe.read(1) != b"\n"
            except (OSError, ValueError):  # missing or empty file
                unterminated = False
            self._handle = self.write_path.open("a", encoding="utf-8")
            if unterminated:
                self._handle.write("\n")
        line = json.dumps(event, sort_keys=True) + "\n"
        # Advisory lock per append: two coordinators sharing one journal
        # (no ``writer`` names) serialize their writes, so a concurrent
        # append can never tear a JSONL line.  The lock is held only for
        # the write+flush — contention is one line's worth of I/O.
        if fcntl is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        try:
            self._handle.write(line)
            # Flush per event: a SIGKILL between events must never lose a
            # committed point.  (OS-level buffering after flush() is enough —
            # the kernel keeps the data even when the process dies; fsync
            # would only guard against whole-machine crashes, which a sweep
            # checkpoint does not need to survive.)
            self._handle.flush()
        finally:
            if fcntl is not None:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        self._apply(event)

    def record_planned(self, fingerprint: str, label: str = "") -> None:
        """Journal a workload entering the execution schedule."""
        if fingerprint in self._planned:
            return
        self._append({"event": "planned", "fingerprint": fingerprint, "label": label})

    def record_completed(self, fingerprint: str) -> None:
        """Journal a workload's result being composed and stored."""
        if fingerprint in self._completed:
            return
        self._append({"event": "completed", "fingerprint": fingerprint})

    def record_failed(
        self, fingerprint: str, label: str, error: str, attempt: int = 1
    ) -> None:
        """Journal one failed execution attempt (before any retry)."""
        self._append(
            {
                "event": "failed",
                "fingerprint": fingerprint,
                "label": label,
                "error": error,
                "attempt": attempt,
            }
        )

    def record_quarantined(self, fingerprint: str, label: str, error: str) -> None:
        """Journal a workload whose retry also failed: set it aside."""
        self._append(
            {
                "event": "quarantined",
                "fingerprint": fingerprint,
                "label": label,
                "error": error,
            }
        )

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def planned(self) -> dict[str, str]:
        """fingerprint -> label of every workload ever scheduled."""
        return dict(self._planned)

    @property
    def completed(self) -> frozenset[str]:
        """Fingerprints whose results were composed and stored."""
        return frozenset(self._completed)

    @property
    def quarantined(self) -> tuple[CheckpointRecord, ...]:
        """Workloads set aside after their retry failed (journal order)."""
        return tuple(self._quarantined.values())

    def failed_attempts(self, fingerprint: str) -> tuple[CheckpointRecord, ...]:
        """Every journaled failed attempt of one workload."""
        return tuple(self._failed.get(fingerprint, ()))

    def reset(self) -> None:
        """Truncate the journal: a non-``--resume`` run starts fresh.

        Per-writer sibling journals are deleted too — a fresh sweep must
        not inherit another coordinator's stale progress on the next load.
        """
        self.close()
        self._planned.clear()
        self._completed.clear()
        self._quarantined.clear()
        self._failed.clear()
        self.corrupt_lines = 0
        if self.path.exists():
            self.path.write_text("", encoding="utf-8")
        for sibling in self._sibling_paths():
            try:
                sibling.unlink()
            except OSError:
                pass

    def close(self) -> None:
        """Close the append handle (idempotent; reopened on the next event)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
