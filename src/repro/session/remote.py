"""Remote execution backend: TCP/JSON workers for multi-host sweeps.

The third :class:`~repro.session.backends.ExecutionBackend`: work units are
shipped over TCP to worker daemons (``python -m repro.harness worker
--bind HOST:PORT``) instead of a local process pool.  The protocol reuses
the cache-aware worker machinery unchanged — the coordinator plans every
workload centrally (compile through the program cache, resolve warm blocks,
claim in-batch duplicates) and ships each worker a
:class:`~repro.session.engine.WorkUnit` already sliced to the genuinely
missing blocks, so a mostly-warm sweep sends almost nothing over the wire.

Wire format
-----------
Length-prefixed JSON: every message is a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  Three request shapes::

    {"op": "ping"}                  -> {"op": "pong", "version": ...}
    {"op": "run", "unit": {...}}    -> {"op": "result", "result": {...}}
    {"op": "shutdown"}              -> {"op": "bye"}     (then the server exits)

``unit`` and ``result`` are the JSON forms of :class:`WorkUnit` /
:class:`WorkResult` (:func:`work_unit_to_dict` and friends); every artifact
inside them rides the same JSON codecs the on-disk cache uses, so a block
result round-trips the wire bit-exactly (Python's JSON float encoding is
shortest-round-trip) and remote sweeps stay byte-identical to serial ones.

Failure semantics
-----------------
Worker death, a dropped connection or a timeout surfaces exactly like a
crashed pool future: the in-flight unit's workload fails into the session's
retry-once → quarantine path, the dead worker stops receiving units, and
the survivors drain the rest of the schedule — so a killed worker mid-sweep
costs at most one retried work unit.  The coordinator-side transport is
wrapped by the :func:`repro.session.testing.transport_wrapper` fault seam,
so chaos tests can drop or delay connections deterministically.

Workers given ``--cache-dir`` store freshly simulated layer records into
their (typically shared) artifact cache as well — entry writes are atomic
and content-keyed, so coordinator and workers writing the same records
concurrently is safe by construction.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Sequence

from repro import __version__
from repro.baselines.eyeriss import EyerissConfig
from repro.baselines.gpu import GpuSpec
from repro.baselines.stripes import StripesConfig
from repro.core.config import BitFusionConfig, TechnologyNode
from repro.isa.program import Program
from repro.session import testing
from repro.session.backends import ExecutionBackend, Failure, ResultCallback
from repro.session.cache import (
    layer_result_from_dict,
    layer_result_to_dict,
    network_result_from_dict,
    network_result_to_dict,
)
from repro.session.engine import (
    WorkResult,
    WorkUnit,
    describe_workload_error,
    execute_work_unit,
    plan_workload,
    simulate_planned_blocks,
    store_layer_record,
)
from repro.session.workload import Workload
from repro.sim.results import NetworkResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.cache import ResultCache
    from repro.session.session import EvaluationSession

__all__ = [
    "RemoteBackend",
    "RemoteWorkerError",
    "WorkerClient",
    "WorkerServer",
    "parse_worker_address",
    "recv_message",
    "send_message",
    "work_unit_from_dict",
    "work_unit_to_dict",
    "work_result_from_dict",
    "work_result_to_dict",
    "workload_from_dict",
    "workload_to_dict",
]

#: Length prefix: 4-byte big-endian unsigned payload size.
_LENGTH = struct.Struct(">I")

#: Hard bound on one message (guards a corrupt/hostile length prefix).
MAX_MESSAGE_BYTES = 256 * 1024 * 1024

#: Default coordinator-side socket timeout: a worker that neither replies
#: nor dies within this window counts as dead (same path as a crash).
DEFAULT_TIMEOUT_SECONDS = 300.0


class RemoteWorkerError(ConnectionError):
    """A remote worker died, timed out or replied with garbage."""


# ---------------------------------------------------------------------- #
# JSON codecs: Workload / WorkUnit / WorkResult
# ---------------------------------------------------------------------- #
#: Config classes a workload may carry, keyed by the type name
#: ``Workload._config_payload`` records.
_CONFIG_TYPES: dict[str, type] = {
    "BitFusionConfig": BitFusionConfig,
    "EyerissConfig": EyerissConfig,
    "StripesConfig": StripesConfig,
    "GpuSpec": GpuSpec,
}


def config_to_dict(config: Any) -> dict[str, Any] | None:
    """JSON form of a platform configuration dataclass (or ``None``)."""
    if config is None:
        return None
    import dataclasses

    if not dataclasses.is_dataclass(config):
        raise TypeError(f"config must be a dataclass, got {type(config).__name__}")
    return {"type": type(config).__name__, **dataclasses.asdict(config)}


def config_from_dict(payload: dict[str, Any] | None) -> Any:
    """Rebuild a platform configuration from :func:`config_to_dict`."""
    if payload is None:
        return None
    fields = dict(payload)
    type_name = fields.pop("type")
    try:
        cls = _CONFIG_TYPES[type_name]
    except KeyError:
        raise ValueError(f"unknown workload config type {type_name!r}") from None
    if isinstance(fields.get("technology"), dict):
        fields["technology"] = TechnologyNode(**fields["technology"])
    return cls(**fields)


def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """JSON form of a workload, sufficient to rebuild it bit-exactly."""
    return {
        "platform": workload.platform,
        "network": workload.network,
        "batch_size": workload.batch_size,
        "variant": workload.variant,
        "fixed_bits": workload.fixed_bits,
        "config": config_to_dict(workload.config),
        "gpu_precision": workload.gpu_precision,
        "enable_loop_ordering": workload.enable_loop_ordering,
        "enable_layer_fusion": workload.enable_layer_fusion,
    }


def workload_from_dict(payload: dict[str, Any]) -> Workload:
    """Rebuild a workload from :func:`workload_to_dict`."""
    return Workload(
        platform=payload["platform"],
        network=payload["network"],
        batch_size=payload["batch_size"],
        variant=payload.get("variant", "quantized"),
        fixed_bits=payload.get("fixed_bits"),
        config=config_from_dict(payload.get("config")),
        gpu_precision=payload.get("gpu_precision"),
        enable_loop_ordering=payload.get("enable_loop_ordering", True),
        enable_layer_fusion=payload.get("enable_layer_fusion", True),
    )


def work_unit_to_dict(unit: WorkUnit) -> dict[str, Any]:
    """JSON form of one work unit (program payload is already JSON-shaped)."""
    return {
        "workload": None if unit.workload is None else workload_to_dict(unit.workload),
        "config": config_to_dict(unit.config),
        "program_payload": unit.program_payload,
        "simulate_indices": list(unit.simulate_indices),
    }


def work_unit_from_dict(payload: dict[str, Any]) -> WorkUnit:
    """Rebuild a work unit from :func:`work_unit_to_dict`."""
    workload_payload = payload.get("workload")
    return WorkUnit(
        workload=None if workload_payload is None else workload_from_dict(workload_payload),
        program_payload=payload.get("program_payload"),
        simulate_indices=tuple(payload.get("simulate_indices", ())),
        config=config_from_dict(payload.get("config")),
    )


def work_result_to_dict(result: WorkResult) -> dict[str, Any]:
    """JSON form of a worker reply (layers/result via the cache codecs)."""
    return {
        "layers": [
            [index, layer_result_to_dict(layer)] for index, layer in result.layers
        ],
        "result": None if result.result is None else network_result_to_dict(result.result),
        "error": result.error,
        "compile_seconds": result.compile_seconds,
        "sim_seconds": result.sim_seconds,
        "worker_id": result.worker_id,
    }


def work_result_from_dict(payload: dict[str, Any]) -> WorkResult:
    """Rebuild a worker reply from :func:`work_result_to_dict`."""
    result_payload = payload.get("result")
    return WorkResult(
        layers=tuple(
            (index, layer_result_from_dict(layer))
            for index, layer in payload.get("layers", ())
        ),
        result=None if result_payload is None else network_result_from_dict(result_payload),
        error=payload.get("error"),
        compile_seconds=payload.get("compile_seconds", 0.0),
        sim_seconds=payload.get("sim_seconds", 0.0),
        worker_id=payload.get("worker_id", ""),
    )


# ---------------------------------------------------------------------- #
# Framing
# ---------------------------------------------------------------------- #
def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    """Write one length-prefixed JSON message."""
    data = json.dumps(message, sort_keys=True).encode("utf-8")
    sock.sendall(_LENGTH.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise RemoteWorkerError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict[str, Any] | None:
    """Read one length-prefixed JSON message; ``None`` on a clean EOF."""
    try:
        prefix = sock.recv(_LENGTH.size)
    except (TimeoutError, socket.timeout):
        raise
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        prefix += _recv_exact(sock, _LENGTH.size - len(prefix))
    (size,) = _LENGTH.unpack(prefix)
    if size > MAX_MESSAGE_BYTES:
        raise RemoteWorkerError(f"message of {size} bytes exceeds the protocol bound")
    message = json.loads(_recv_exact(sock, size).decode("utf-8"))
    if not isinstance(message, dict):
        raise RemoteWorkerError("protocol message is not a JSON object")
    return message


def parse_worker_address(address: str) -> tuple[str, int]:
    """Split ``host:port`` (the CLI's ``--workers`` / ``--bind`` syntax)."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"worker address {address!r} is not host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"worker address {address!r} has a non-integer port") from None


# ---------------------------------------------------------------------- #
# Worker daemon
# ---------------------------------------------------------------------- #
class WorkerServer:
    """One remote worker: accept coordinator connections, run work units.

    Single-threaded by design — one coordinator connection is served at a
    time, and the coordinator pipelines one unit per worker anyway.  Binding
    port 0 picks an ephemeral port; the bound address is ``self.address``.

    ``cache`` (optional, typically a shared ``--cache-dir``) receives the
    layer records of every freshly simulated block, exactly as the
    coordinator stores them at compose time — duplicate stores are
    idempotent (atomic writes of content-keyed, identical payloads), so a
    worker warming the cache alongside the coordinator is safe.

    ``fail_after`` is the deterministic chaos knob (``--fail-after`` on the
    CLI): serve that many units normally, then hard-exit (``os._exit``)
    upon *receiving* the next one without replying — indistinguishable, to
    the coordinator, from a worker SIGKILLed mid-unit.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: "ResultCache | None" = None,
        fail_after: int | None = None,
    ) -> None:
        self.cache = cache
        self.fail_after = fail_after
        self.units_served = 0
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.5)
        self._stop = threading.Event()
        bound_host, bound_port = self._listener.getsockname()[:2]
        self.host = host if host else bound_host
        self.port = bound_port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        """Ask ``serve_forever`` to return after the current connection."""
        self._stop.set()

    def close(self) -> None:
        self._stop.set()
        self._listener.close()

    def serve_forever(self) -> None:
        """Accept and serve coordinator connections until shutdown."""
        try:
            while not self._stop.is_set():
                try:
                    connection, _ = self._listener.accept()
                except (TimeoutError, socket.timeout):
                    continue
                except OSError:
                    break
                with connection:
                    self._serve_connection(connection)
        finally:
            self._listener.close()

    def _serve_connection(self, connection: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                message = recv_message(connection)
            except (RemoteWorkerError, OSError, ValueError):
                return
            if message is None:
                return
            op = message.get("op")
            if op == "ping":
                send_message(connection, {"op": "pong", "version": __version__})
            elif op == "shutdown":
                send_message(connection, {"op": "bye"})
                self._stop.set()
                return
            elif op == "run":
                if self.fail_after is not None and self.units_served >= self.fail_after:
                    # Deterministic SIGKILL stand-in: die holding the unit,
                    # reply unsent, no cleanup — the coordinator sees a dead
                    # connection exactly as with a real kill -9.
                    os._exit(1)
                reply = self._run(message.get("unit"))
                self.units_served += 1
                send_message(connection, {"op": "result", "result": work_result_to_dict(reply)})
            else:
                send_message(connection, {"op": "error", "error": f"unknown op {op!r}"})

    def _run(self, unit_payload: Any) -> WorkResult:
        try:
            unit = work_unit_from_dict(unit_payload)
        except Exception as error:  # noqa: BLE001 — reply, never crash the daemon
            return WorkResult(error=f"undecodable work unit: {type(error).__name__}: {error}")
        reply = execute_work_unit(unit)
        if reply.worker_id == "":
            reply = WorkResult(
                layers=reply.layers,
                result=reply.result,
                error=reply.error,
                compile_seconds=reply.compile_seconds,
                sim_seconds=reply.sim_seconds,
                worker_id=self.address,
            )
        if self.cache is not None and reply.error is None and reply.layers:
            self._store(unit, reply)
        return reply

    def _store(self, unit: WorkUnit, reply: WorkResult) -> None:
        """Store fresh layer records into the worker's (shared) cache.

        One group commit per unit: on a pack-layout shared store the
        unit's records land as a single append to this worker's own
        segment (no locks against sibling workers or the coordinator —
        readers merge all segments at open), followed by one flush of the
        index sidecar and manifest.
        """
        try:
            assert unit.program_payload is not None
            program = Program.from_dict(unit.program_payload)
            config = unit.sim_config
            description = {} if unit.workload is None else unit.workload.describe()
            with self.cache.batch():
                for (_, layer), compiled in zip(reply.layers, program.blocks):
                    store_layer_record(self.cache, config, compiled, layer, description)
            self.cache.flush()
        except Exception:  # noqa: BLE001 — cache warming is best-effort
            pass


# ---------------------------------------------------------------------- #
# Coordinator client
# ---------------------------------------------------------------------- #
class WorkerClient:
    """Coordinator-side connection to one worker daemon."""

    def __init__(self, address: str, timeout: float = DEFAULT_TIMEOUT_SECONDS) -> None:
        self.address = address
        self.timeout = timeout
        self.alive = True
        self._sock: socket.socket | None = None

    def _connection(self) -> socket.socket:
        if self._sock is None:
            host, port = parse_worker_address(self.address)
            self._sock = socket.create_connection((host, port), timeout=self.timeout)
        return self._sock

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """One request/reply round trip; raises :class:`RemoteWorkerError`."""
        try:
            sock = self._connection()
            send_message(sock, message)
            reply = recv_message(sock)
        except (OSError, ValueError, RemoteWorkerError) as error:
            self.mark_dead()
            raise RemoteWorkerError(
                f"worker {self.address} failed: {type(error).__name__}: {error}"
            ) from error
        if reply is None:
            self.mark_dead()
            raise RemoteWorkerError(f"worker {self.address} closed the connection")
        return reply

    def mark_dead(self) -> None:
        self.alive = False
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def shutdown(self) -> None:
        """Best-effort remote shutdown (used by tests and CI teardown)."""
        try:
            self.request({"op": "shutdown"})
        except RemoteWorkerError:
            pass


class RemoteBackend(ExecutionBackend):
    """Shard work units across TCP worker daemons.

    Workloads are planned centrally (identical to the pool backend), and
    the pending units drain through the workers work-stealing style: each
    worker's thread pulls the next unit the moment it finishes its current
    one, so a dead worker forfeits only its in-flight unit — the survivors
    absorb the rest of the schedule.  Results compose and commit in
    schedule order after the drain, preserving the serial path's
    deferred-block semantics and byte-identical output.
    """

    name = "remote"

    def __init__(
        self, workers: Sequence[str], timeout: float = DEFAULT_TIMEOUT_SECONDS
    ) -> None:
        addresses = [address.strip() for address in workers if address.strip()]
        if not addresses:
            raise ValueError("RemoteBackend needs at least one worker address")
        for address in addresses:
            parse_worker_address(address)  # fail fast on malformed input
        self.timeout = timeout
        self._clients = [WorkerClient(address, timeout) for address in addresses]

    def describe(self) -> str:
        names = ", ".join(client.address for client in self._clients)
        return f"remote ({len(self._clients)} workers: {names})"

    def close(self) -> None:
        for client in self._clients:
            client.close()

    # ------------------------------------------------------------------ #
    # Unit transport
    # ------------------------------------------------------------------ #
    def _request_unit(self, client: WorkerClient, unit: WorkUnit) -> tuple[WorkResult, float, float]:
        """Ship one unit; returns (reply, dispatch_seconds, wait_seconds)."""
        started = time.perf_counter()
        message = {"op": "run", "unit": work_unit_to_dict(unit)}
        dispatch = time.perf_counter() - started

        def transport() -> dict[str, Any]:
            return client.request(message)

        started = time.perf_counter()
        wrapper = testing.transport_wrapper()
        if wrapper is not None:
            reply = wrapper(client.address, unit, transport)
        else:
            reply = transport()
        elapsed = time.perf_counter() - started
        if reply.get("op") != "result":
            client.mark_dead()
            raise RemoteWorkerError(
                f"worker {client.address} sent unexpected op {reply.get('op')!r}"
            )
        try:
            result = work_result_from_dict(reply["result"])
        except Exception as error:  # noqa: BLE001 — garbage reply = dead worker
            client.mark_dead()
            raise RemoteWorkerError(
                f"worker {client.address} sent an undecodable result: {error}"
            ) from error
        # Dispatch is the coordinator-side serialization of the unit; the
        # blocking socket exchange (send + remote simulate + reply) is wait.
        return result, dispatch, elapsed

    def _run_units(
        self,
        units: list[tuple[int, WorkUnit]],
        stats: Any = None,
    ) -> dict[int, WorkResult | Exception]:
        """Drain units across the live workers; one thread per worker.

        Returns a slot → reply map where a reply may be the exception that
        killed it (worker death, timeout, injected drop).  Units left
        unclaimed because *every* worker died map to the last error, so the
        session's retry path still completes the sweep inline.
        """
        results: dict[int, WorkResult | Exception] = {}
        queue = deque(units)
        lock = threading.Lock()

        def drain(client: WorkerClient) -> None:
            while client.alive:
                with lock:
                    if not queue:
                        return
                    slot, unit = queue.popleft()
                try:
                    reply, dispatch, waited = self._request_unit(client, unit)
                except Exception as error:  # noqa: BLE001 — recorded per unit
                    client.mark_dead()
                    with lock:
                        results[slot] = error
                    return
                with lock:
                    results[slot] = reply
                    if stats is not None:
                        stats.workers.dispatch_seconds += dispatch
                        stats.workers.wait_seconds += waited
                        stats.workers.record_worker(client.address)

        live = [client for client in self._clients if client.alive]
        threads = [
            threading.Thread(target=drain, args=(client,), daemon=True)
            for client in live
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        while queue:
            slot, unit = queue.popleft()
            results[slot] = RemoteWorkerError(
                "no live remote workers left for this unit"
            )
        return results

    # ------------------------------------------------------------------ #
    # ExecutionBackend interface
    # ------------------------------------------------------------------ #
    def execute(
        self,
        session: "EvaluationSession",
        items: list[tuple[str, Workload]],
        on_result: ResultCallback | None = None,
    ) -> tuple[dict[str, NetworkResult], list[Failure]]:
        stats = session.stats
        stats.workers.backend = self.name
        claimed: set[str] = set()
        plans = []
        pending_units: list[tuple[int, WorkUnit]] = []
        for slot, (_, workload) in enumerate(items):
            plan = plan_workload(workload, session.cache, stats, claimed)
            plans.append(plan)
            if plan.needs_worker:
                unit = plan.work_unit()
                stats.workers.units += 1
                stats.workers.remote_blocks += len(unit.simulate_indices)
                pending_units.append((slot, unit))
        replies = self._run_units(pending_units, stats)
        resolved: dict[str, NetworkResult] = {}
        failures: list[Failure] = []
        for slot, ((key, workload), plan) in enumerate(zip(items, plans)):
            reply: WorkResult | None = None
            if plan.needs_worker:
                answer = replies[slot]
                if isinstance(answer, Exception):
                    # The worker died (or timed out) holding this unit: the
                    # reply never arrived.  Exactly the crashed-future path —
                    # fail the workload into the session's retry/quarantine
                    # policy and carry on with the survivors.
                    failures.append(
                        Failure(key, workload, describe_workload_error(workload, answer))
                    )
                    continue
                reply = answer
            if reply is not None and reply.error is not None:
                failures.append(Failure(key, workload, reply.error))
                continue
            if reply is not None:
                stats.compile_seconds += reply.compile_seconds
                stats.sim_seconds += reply.sim_seconds
            try:
                if reply is not None and reply.result is not None:
                    result = reply.result
                else:
                    remote = dict(reply.layers) if reply is not None else {}
                    started = time.perf_counter()
                    result = session._compose_plan(plan, remote)
                    stats.compose_seconds += time.perf_counter() - started
            except Exception as error:
                failures.append(
                    Failure(key, workload, describe_workload_error(workload, error))
                )
                continue
            session._commit(key, workload, result, on_result)
            resolved[key] = result
        return resolved, failures

    def simulate_plans(self, plans: Sequence[Any]) -> list[dict[int, Any]]:
        """Shard arbitrary plans' missing blocks across the workers.

        The NAS estimator's seam: candidate plans carry no workload, so the
        shipped units are anonymous (``workload=None`` + the simulation
        config).  Any unit a worker fails — error reply, dead connection —
        falls back to inline simulation of just that plan, so the estimator
        never sees a transport fault.
        """
        out: list[dict[int, Any]] = [{} for _ in plans]
        pending: list[tuple[int, Any]] = []
        units: list[tuple[int, WorkUnit]] = []
        for index, plan in enumerate(plans):
            if plan.program is None or not plan.simulate_indices:
                continue
            blocks = plan.program.blocks
            payload = {
                "network_name": plan.program.network_name,
                "blocks": [blocks[i].to_dict() for i in plan.simulate_indices],
            }
            unit = WorkUnit(
                workload=getattr(plan, "workload", None),
                program_payload=payload,
                simulate_indices=tuple(plan.simulate_indices),
                config=plan.config,
            )
            pending.append((index, plan))
            units.append((index, unit))
        if not units:
            return out
        replies = self._run_units(units)
        for index, plan in pending:
            reply = replies[index]
            if isinstance(reply, Exception) or reply.error is not None:
                out[index] = simulate_planned_blocks([plan])[0]
            else:
                out[index] = dict(reply.layers)
        return out
