"""Result cache keyed by workload fingerprint (in-memory + optional disk).

The cache stores two payload kinds: full :class:`~repro.sim.results.NetworkResult`
records (one per simulated workload) and the lightweight
:class:`ProgramStats` records the ISA experiment derives from compiled
programs.  Both serialize losslessly to JSON — every field is an int, float
or string, and Python's JSON round-trips floats exactly — so an entry read
back from disk is bit-identical to the freshly computed result.

On-disk layout: one ``<fingerprint>.json`` file per entry under the cache
directory, carrying the payload kind, a human-readable workload description
and the payload itself.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.energy.breakdown import EnergyBreakdown
from repro.sim.results import LayerResult, MemoryTraffic, NetworkResult

__all__ = [
    "CacheStats",
    "ProgramStats",
    "ResultCache",
    "network_result_to_dict",
    "network_result_from_dict",
]


@dataclass(frozen=True)
class ProgramStats:
    """Instruction statistics of one compiled Fusion-ISA program."""

    network_name: str
    block_instruction_counts: tuple[int, ...]
    total_instructions: int
    binary_bytes: int

    @property
    def blocks(self) -> int:
        return len(self.block_instruction_counts)


@dataclass
class CacheStats:
    """Counters the session reports at the end of a run.

    ``hits`` counts lookups satisfied from memory or disk, ``misses``
    lookups that required fresh work; ``disk_hits`` is the subset of hits
    that came from the on-disk store; ``unique_executions`` counts distinct
    fingerprints executed this session — simulations plus compilations (the
    acceptance criterion is that no fingerprint is ever executed twice).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    executions: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def unique_executions(self) -> int:
        return len(self.executions)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_execution(self, key: str) -> None:
        self.executions[key] = self.executions.get(key, 0) + 1

    def max_executions_per_workload(self) -> int:
        """1 when every unique workload was simulated exactly once."""
        return max(self.executions.values(), default=0)

    def summary(self) -> str:
        return (
            f"{self.lookups} workload lookups: {self.hits} cache hits "
            f"({self.disk_hits} from disk), {self.misses} misses, "
            f"{self.unique_executions} unique executions "
            f"(simulations + compilations, hit rate {self.hit_rate:.0%})"
        )


# ---------------------------------------------------------------------- #
# NetworkResult <-> JSON
# ---------------------------------------------------------------------- #
def network_result_to_dict(result: NetworkResult) -> dict[str, Any]:
    """Serialize a NetworkResult to a JSON-compatible dictionary."""
    return asdict(result)


def network_result_from_dict(payload: dict[str, Any]) -> NetworkResult:
    """Rebuild a NetworkResult from :func:`network_result_to_dict` output."""
    layers = tuple(
        LayerResult(
            name=layer["name"],
            macs=layer["macs"],
            input_bits=layer["input_bits"],
            weight_bits=layer["weight_bits"],
            compute_cycles=layer["compute_cycles"],
            memory_cycles=layer["memory_cycles"],
            overhead_cycles=layer["overhead_cycles"],
            traffic=MemoryTraffic(**layer["traffic"]),
            energy=EnergyBreakdown(**layer["energy"]),
            utilization=layer["utilization"],
        )
        for layer in payload["layers"]
    )
    return NetworkResult(
        network_name=payload["network_name"],
        platform=payload["platform"],
        batch_size=payload["batch_size"],
        frequency_mhz=payload["frequency_mhz"],
        layers=layers,
    )


def _program_stats_to_dict(stats: ProgramStats) -> dict[str, Any]:
    return {
        "network_name": stats.network_name,
        "block_instruction_counts": list(stats.block_instruction_counts),
        "total_instructions": stats.total_instructions,
        "binary_bytes": stats.binary_bytes,
    }


def _program_stats_from_dict(payload: dict[str, Any]) -> ProgramStats:
    return ProgramStats(
        network_name=payload["network_name"],
        block_instruction_counts=tuple(payload["block_instruction_counts"]),
        total_instructions=payload["total_instructions"],
        binary_bytes=payload["binary_bytes"],
    )


_SERIALIZERS = {
    "network_result": (network_result_to_dict, network_result_from_dict),
    "program_stats": (_program_stats_to_dict, _program_stats_from_dict),
}


def _kind_of(value: Any) -> str:
    if isinstance(value, NetworkResult):
        return "network_result"
    if isinstance(value, ProgramStats):
        return "program_stats"
    raise TypeError(f"cannot cache values of type {type(value).__name__}")


class ResultCache:
    """Fingerprint-keyed store of evaluation results.

    Parameters
    ----------
    cache_dir:
        When given, entries are also persisted as JSON files under this
        directory and later sessions (or processes) can reuse them; when
        ``None`` the cache is memory-only and lives for one session.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self._memory: dict[str, Any] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._entry_path(key) is not None

    def _entry_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        return path if path.exists() else None

    def get(self, key: str) -> Any | None:
        """Fetch an entry, promoting disk entries into memory. None on miss."""
        if key in self._memory:
            return self._memory[key]
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            _, deserialize = _SERIALIZERS[entry["kind"]]
            value = deserialize(entry["payload"])
        except (OSError, ValueError, KeyError, TypeError):
            # A corrupted or schema-stale entry is a miss, not a crash; the
            # fresh simulation overwrites it on the next put().
            return None
        self._memory[key] = value
        return value

    def get_with_source(self, key: str) -> tuple[Any | None, str]:
        """Like :meth:`get` but also reports ``"memory"``/``"disk"``/``"miss"``."""
        if key in self._memory:
            return self._memory[key], "memory"
        value = self.get(key)
        return value, ("disk" if value is not None else "miss")

    def put(self, key: str, value: Any, description: dict[str, Any] | None = None) -> None:
        """Store an entry in memory and, when configured, on disk."""
        kind = _kind_of(value)
        self._memory[key] = value
        if self.cache_dir is not None:
            serialize, _ = _SERIALIZERS[kind]
            entry = {
                "kind": kind,
                "workload": description or {},
                "payload": serialize(value),
            }
            path = self.cache_dir / f"{key}.json"
            # Per-process temp name so concurrent runs sharing a cache dir
            # never tear each other's writes; the final replace is atomic.
            tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
            tmp.replace(path)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()
