"""Two-level artifact cache keyed by content fingerprints (memory + disk).

The staged compile → simulate-blocks → compose pipeline produces cacheable
artifacts at every seam, and this module stores all of them behind one
fingerprint-keyed interface:

* ``program`` — a compiled :class:`~repro.isa.program.Program`, keyed by a
  *structure-only* fingerprint (network structure, batch, scratchpad sizes,
  compiler flags), so sweeps that vary only simulation parameters (e.g.
  off-chip bandwidth) reuse one compilation;
* ``layer_result`` — one simulated block's
  :class:`~repro.sim.results.LayerResult`, keyed by the block fingerprint
  plus the simulation-affecting configuration, so unchanged blocks are never
  re-simulated;
* ``layer`` — the same record stored *content-addressed*: keyed by the
  name-free layer fingerprint (layer shape + bitwidths + tiling +
  instruction image) plus the simulation-affecting configuration, with the
  record's name normalized away.  Block-level lookups fall back to this
  level on a miss, so identical layers dedupe across different networks in
  model-family sweeps (the entry is renamed to the requesting block on use);
* ``network_result`` — a full composed/simulated
  :class:`~repro.sim.results.NetworkResult` (the baselines' unit of work);
* ``tiling`` — one :class:`~repro.isa.tiling.TilingPlan`, keyed by the GEMM
  shape + operand bitwidths + the loop orders searched + the scratchpad
  capacities the search targeted (:func:`repro.session.engine.
  tiling_cache_key`).  The compiler's dominant cost is the tiling search,
  and duplicate GEMM shapes are everywhere — within a network (ResNet's
  repeated blocks), across networks, and across sweep points that do not
  vary the buffers — so memoizing plans here is what makes cold compiles
  cheap and warm ones nearly free;
* ``program_stats`` — lightweight instruction statistics (legacy kind,
  still readable).

Every payload serializes losslessly to JSON — ints, floats and strings
only, and Python's JSON round-trips floats exactly — so an entry read back
from disk is bit-identical to the freshly computed artifact.

On-disk layout — two formats, one directory contract:

* ``pack`` (default for new directories): entries live in append-only
  pack segments managed by :class:`repro.session.store.SegmentedStore`
  (length-prefixed compact records + per-segment index sidecars).  The
  key index is built once at open; lookups are dictionary hits, writes
  are group-committed appends (:meth:`ResultCache.batch` buffers a
  batch's records into a single segment write), bulk reads go through
  :meth:`ResultCache.get_many`/:meth:`ResultCache.prefetch`, and
  eviction is segment compaction instead of per-file unlinks.
* ``json`` (legacy, read-compatible fallback and correctness oracle):
  one ``<fingerprint>.json`` file per entry.  Opening an old JSON-layout
  directory keeps serving it unchanged; ``python -m repro.harness cache
  migrate`` converts it in place.  Both formats produce byte-identical
  results and statistics — only the I/O cost differs.

The layout is auto-detected from the directory contents (segments → pack,
per-entry files → json, empty → pack), overridable per cache via the
``layout=`` parameter or globally via ``REPRO_CACHE_LAYOUT=json|pack``.
A pack-layout cache still reads stray ``<key>.json`` entries left in the
directory (mixed dirs mid-migration), so the two formats can coexist.

Either way a ``manifest.json`` carries a schema version and an entry
index (kind, size, recency).  The manifest makes a cache directory safe to
share across machines and CI runs: a schema bump or a hand-edited directory
degrades to a rebuild, never a crash, and an optional ``max_bytes`` budget
evicts least-recently-used entries so shared directories stay bounded.

The manifest is strictly advisory: entry lookups always check the backing
store, so a stale, missing or read-only manifest never affects
correctness — read paths degrade to plain reads when the directory is not
writable, and concurrent writers that race on the manifest merely leave it
temporarily incomplete (each writer enforces the size budget against its
own view until the next rebuild reconciles the index).
"""

from __future__ import annotations

import json
import os
import re
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.isa.program import Program
from repro.session.store import SEGMENT_SUFFIX, SegmentedStore, encode_body
from repro.isa.tiling import TilingPlan
from repro.sim.results import (
    LayerResult,
    NetworkResult,
    layer_result_from_dict,
    layer_result_to_dict,
)

__all__ = [
    "CacheStats",
    "StageStats",
    "WorkerStats",
    "ProgramStats",
    "ResultCache",
    "MANIFEST_SCHEMA_VERSION",
    "network_result_to_dict",
    "network_result_from_dict",
]

#: Version of the on-disk manifest schema; a mismatch triggers a rebuild.
#: v2 added the content-addressed ``layer`` entry kind; v3 added the
#: ``tiling`` entry kind (older manifests rebuild cleanly — entry payloads
#: are unchanged and stay readable).
MANIFEST_SCHEMA_VERSION = 3

_MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ProgramStats:
    """Instruction statistics of one compiled Fusion-ISA program."""

    network_name: str
    block_instruction_counts: tuple[int, ...]
    total_instructions: int
    binary_bytes: int

    @property
    def blocks(self) -> int:
        return len(self.block_instruction_counts)

    @classmethod
    def from_program(cls, program: Program) -> "ProgramStats":
        """Distill the statistics of a compiled program.

        Deriving the statistics from a (possibly cache-restored) program is
        what lets the ISA experiment share the program-level cache with the
        simulation pipeline instead of keeping a parallel store.
        """
        return cls(
            network_name=program.network_name,
            block_instruction_counts=tuple(len(compiled.block) for compiled in program),
            total_instructions=program.total_instructions(),
            binary_bytes=program.total_binary_bytes(),
        )


@dataclass
class StageStats:
    """Hit/miss counters for one pipeline stage (programs or blocks)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_hit(self, source: str) -> None:
        self.hits += 1
        if source == "disk":
            self.disk_hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def summary(self, label: str, work: str) -> str:
        return (
            f"{label}: {self.hits} hits ({self.disk_hits} from disk), "
            f"{self.misses} {work} (hit rate {self.hit_rate:.0%})"
        )


@dataclass
class WorkerStats:
    """Counters of the cache-aware parallel worker protocol.

    ``units`` counts :class:`~repro.session.engine.WorkUnit`s dispatched to
    pool workers, ``remote_blocks`` the blocks those units actually
    simulated, and ``reused_blocks`` the blocks the main process resolved
    from the artifact cache (or from another in-flight workload of the same
    batch) instead of shipping — the waste the protocol exists to avoid.

    ``backend`` names the execution backend that dispatched the units
    (``pool``, ``remote``; empty when everything ran inline), ``per_worker``
    counts units per worker identity (pool pid or remote address), and
    ``dispatch_seconds`` / ``wait_seconds`` accumulate the coordinator-side
    wall time spent serializing/submitting units versus blocking on their
    replies — the ``--profile`` table's per-backend overhead row.
    """

    units: int = 0
    remote_blocks: int = 0
    reused_blocks: int = 0
    backend: str = ""
    dispatch_seconds: float = 0.0
    wait_seconds: float = 0.0
    per_worker: dict[str, int] = field(default_factory=dict)

    def record_worker(self, worker_id: str) -> None:
        """Attribute one completed work unit to a worker identity."""
        self.per_worker[worker_id] = self.per_worker.get(worker_id, 0) + 1

    def summary(self) -> str:
        label = f"parallel workers [{self.backend}]" if self.backend else "parallel workers"
        return (
            f"{label}: {self.units} work units dispatched, "
            f"{self.remote_blocks} blocks simulated remotely, "
            f"{self.reused_blocks} blocks reused from cache"
        )

    def per_worker_summary(self) -> str | None:
        """One footer line of per-worker unit counts, or None when inline."""
        if not self.per_worker:
            return None
        parts = ", ".join(
            f"{worker}: {count}" for worker, count in sorted(self.per_worker.items())
        )
        return f"per-worker units: {parts}"


@dataclass
class CacheStats:
    """Counters the session reports at the end of a run.

    Workload-level counters: ``hits`` counts lookups satisfied from memory,
    disk, or by composing cached per-block artifacts; ``misses`` lookups
    that required fresh work; ``deduped`` counts in-batch duplicates of a
    workload whose execution was still pending (no cached value existed, so
    they are deduplication wins rather than cache hits); ``disk_hits`` is
    the subset of hits that involved the on-disk store;
    ``unique_executions`` counts distinct fingerprints that did fresh work
    this session (the acceptance criterion is that no fingerprint is ever
    executed twice).

    Stage-level counters: ``programs`` tracks compile-stage cache traffic
    (misses are compilations), ``tilings`` tracks the tiling-plan memo the
    compiler consults before every search (misses are actual searches —
    the compiler's dominant cost — and hits are duplicate GEMM shapes
    served from the memo), ``blocks`` tracks block-key lookups of the
    simulate-blocks stage (misses are per-block simulations) and ``layers``
    tracks the content-addressed layer-level fallback consulted on every
    block-key miss (hits are simulations avoided by cross-network layer
    dedupe).  ``workers`` tracks the parallel worker protocol.
    ``compile_seconds`` accumulates the wall-clock time spent inside
    ``FusionCompiler.compile`` (cache misses only), surfaced by the report
    footer's ``compile time`` line so compile-cost regressions are visible
    on every run.  ``sim_seconds`` accumulates block/workload simulation
    wall time the same way (the ``sim time`` footer line), and
    ``compose_seconds`` the result-composition time; parallel runs fold the
    worker-side timings from each
    :class:`~repro.session.engine.WorkResult` into both, so serial and
    parallel footers measure the same stages.
    """

    hits: int = 0
    misses: int = 0
    deduped: int = 0
    disk_hits: int = 0
    #: Failed executions retried once (the retry-once / quarantine policy);
    #: 0 on every fault-free run, so the summary only mentions it when a
    #: retry actually happened and fault-free footers stay byte-identical.
    retries: int = 0
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    compose_seconds: float = 0.0
    executions: dict[str, int] = field(default_factory=dict)
    programs: StageStats = field(default_factory=StageStats)
    tilings: StageStats = field(default_factory=StageStats)
    blocks: StageStats = field(default_factory=StageStats)
    layers: StageStats = field(default_factory=StageStats)
    workers: WorkerStats = field(default_factory=WorkerStats)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.deduped

    @property
    def unique_executions(self) -> int:
        return len(self.executions)

    @property
    def hit_rate(self) -> float:
        """Hits over genuine cache lookups (in-batch duplicates excluded)."""
        consulted = self.hits + self.misses
        return self.hits / consulted if consulted else 0.0

    def record_execution(self, key: str) -> None:
        self.executions[key] = self.executions.get(key, 0) + 1

    def max_executions_per_workload(self) -> int:
        """1 when every unique workload was simulated exactly once."""
        return max(self.executions.values(), default=0)

    def summary(self) -> str:
        lines = [
            f"{self.lookups} workload lookups: {self.hits} cache hits "
            f"({self.disk_hits} from disk), {self.misses} misses, "
            f"{self.deduped} in-batch duplicates deduped, "
            f"{self.unique_executions} unique executions "
            f"(hit rate {self.hit_rate:.0%})"
        ]
        lines.append(self.programs.summary("program cache", "compiles"))
        lines.append(self.tilings.summary("tiling memo", "tiling searches"))
        lines.append(self.blocks.summary("block cache", "block simulations"))
        lines.append(self.layers.summary("layer dedup", "layer-key misses"))
        if self.retries:
            # Only on faulty runs: fault-free footers must stay byte-identical
            # across releases (CI greps them).
            lines.append(f"workload retries: {self.retries} failed execution(s) retried once")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# NetworkResult <-> JSON
# ---------------------------------------------------------------------- #
def network_result_to_dict(result: NetworkResult) -> dict[str, Any]:
    """Serialize a NetworkResult to a JSON-compatible dictionary."""
    return asdict(result)


def network_result_from_dict(payload: dict[str, Any]) -> NetworkResult:
    """Rebuild a NetworkResult from :func:`network_result_to_dict` output."""
    layers = tuple(layer_result_from_dict(layer) for layer in payload["layers"])
    return NetworkResult(
        network_name=payload["network_name"],
        platform=payload["platform"],
        batch_size=payload["batch_size"],
        frequency_mhz=payload["frequency_mhz"],
        layers=layers,
    )


def _program_stats_to_dict(stats: ProgramStats) -> dict[str, Any]:
    return {
        "network_name": stats.network_name,
        "block_instruction_counts": list(stats.block_instruction_counts),
        "total_instructions": stats.total_instructions,
        "binary_bytes": stats.binary_bytes,
    }


def _program_stats_from_dict(payload: dict[str, Any]) -> ProgramStats:
    return ProgramStats(
        network_name=payload["network_name"],
        block_instruction_counts=tuple(payload["block_instruction_counts"]),
        total_instructions=payload["total_instructions"],
        binary_bytes=payload["binary_bytes"],
    )


_SERIALIZERS = {
    "network_result": (network_result_to_dict, network_result_from_dict),
    "layer_result": (layer_result_to_dict, layer_result_from_dict),
    # Content-addressed layer entries are LayerResults stored under a
    # name-free key (and with a normalized name); the payload is identical.
    "layer": (layer_result_to_dict, layer_result_from_dict),
    "program": (Program.to_dict, Program.from_dict),
    "program_stats": (_program_stats_to_dict, _program_stats_from_dict),
    "tiling": (TilingPlan.to_dict, TilingPlan.from_dict),
}


def _kind_of(value: Any) -> str:
    if isinstance(value, NetworkResult):
        return "network_result"
    if isinstance(value, LayerResult):
        return "layer_result"
    if isinstance(value, Program):
        return "program"
    if isinstance(value, ProgramStats):
        return "program_stats"
    if isinstance(value, TilingPlan):
        return "tiling"
    raise TypeError(f"cannot cache values of type {type(value).__name__}")


#: Environment override for the on-disk layout (``json`` or ``pack``);
#: an explicit ``layout=`` argument wins over it, auto-detection applies
#: when neither is set.  CI's format-compatibility smoke uses this to seed
#: a legacy JSON-layout directory without code changes.
LAYOUT_ENV = "REPRO_CACHE_LAYOUT"

#: Entry files put ``"kind"`` first (``json.dumps(sort_keys=True)`` of a
#: dict whose first sorted key is ``kind``), so a bounded prefix is enough
#: to recover it during a manifest rebuild — reading whole payloads (which
#: can be megabytes for network results) made rebuilds scale with payload
#: bytes instead of entry count.
_KIND_PREFIX_BYTES = 256
_KIND_PATTERN = re.compile(r'"kind":\s*"([a-z_]+)"')


def _read_entry_kind(path: Path) -> str:
    """Recover an entry file's ``kind`` from a bounded prefix read."""
    try:
        with path.open("rb") as handle:
            head = handle.read(_KIND_PREFIX_BYTES).decode("utf-8", errors="replace")
    except OSError:
        return "unknown"
    match = _KIND_PATTERN.search(head)
    return match.group(1) if match is not None else "unknown"


class ResultCache:
    """Fingerprint-keyed store of evaluation artifacts.

    Parameters
    ----------
    cache_dir:
        When given, entries are also persisted under this directory and
        later sessions (or processes) can reuse them; when ``None`` the
        cache is memory-only and lives for one session.
    max_bytes:
        Optional size budget for the on-disk store.  When the sum of entry
        sizes exceeds the budget after a write, least-recently-used entries
        are evicted until it fits (the entry just written always survives).
    layout:
        On-disk format: ``"pack"`` (segmented pack-file store) or
        ``"json"`` (legacy one-file-per-entry).  ``None`` consults the
        ``REPRO_CACHE_LAYOUT`` environment variable, then auto-detects
        from the directory contents; fresh directories default to pack.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        max_bytes: int | None = None,
        layout: str | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        #: Wall-clock seconds spent on cache disk IO (entry reads in
        #: :meth:`get`/:meth:`prefetch`, entry writes in :meth:`put` and
        #: batch drains) — the ``cache-IO`` row of ``python -m
        #: repro.harness --profile``.
        self.io_seconds = 0.0
        self._memory: dict[str, Any] = {}
        #: Bulk-read staging (:meth:`prefetch`): values read from disk but
        #: not yet handed out, so the first :meth:`get_with_source` on a
        #: prefetched key still reports ``"disk"`` exactly like the
        #: one-file-per-entry oracle would.
        self._prefetched: dict[str, Any] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_bytes = max_bytes
        self._manifest: dict[str, dict[str, Any]] = {}
        #: Memory-only keys whose recency touches route to another key's
        #: manifest entry (:meth:`alias`) — promoted layer-level hits.
        self._aliases: dict[str, str] = {}
        self._manifest_dirty = False
        self._seq = 0
        #: Running total of manifest entry bytes, maintained incrementally
        #: so the per-put budget check is O(1) instead of re-summing the
        #: whole manifest on every write.
        self._live_bytes = 0
        self._store: SegmentedStore | None = None
        #: Pack layout only: whether stray per-entry JSON files exist in
        #: the directory and must be consulted as a read fallback.
        self._json_fallback = False
        #: Group-commit state (:meth:`batch`): nesting depth plus the
        #: encoded record bodies queued for the next single segment append.
        self._batch_depth = 0
        self._batch_records: dict[str, tuple[str, bytes]] = {}
        self.layout = "memory"
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self.layout = self._resolve_layout(layout)
            if self.layout == "pack":
                self._store = SegmentedStore(self.cache_dir)
            self._load_manifest()

    def _resolve_layout(self, layout: str | None) -> str:
        """Explicit argument > ``REPRO_CACHE_LAYOUT`` > directory contents."""
        assert self.cache_dir is not None
        if layout is None:
            layout = os.environ.get(LAYOUT_ENV) or None
        if layout not in (None, "json", "pack"):
            raise ValueError(f"unknown cache layout {layout!r} (expected 'json' or 'pack')")
        has_segments = False
        has_entries = False
        try:
            for item in os.scandir(self.cache_dir):
                name = item.name
                if name.startswith("pack-") and name.endswith(SEGMENT_SUFFIX):
                    has_segments = True
                elif (
                    name.endswith(".json")
                    and name != _MANIFEST_NAME
                    and not name.endswith(".tmp")
                ):
                    has_entries = True
        except OSError:
            pass
        self._json_fallback = has_entries
        if layout is not None:
            return layout
        if has_segments:
            return "pack"
        if has_entries:
            return "json"
        return "pack"

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory or key in self._prefetched:
            return True
        if self._store is not None:
            if key in self._store:
                return True
            return self._json_fallback and self._entry_path(key) is not None
        return self._entry_path(key) is not None

    # ------------------------------------------------------------------ #
    # Manifest (schema version + entry index + recency for LRU)
    # ------------------------------------------------------------------ #
    @property
    def _manifest_path(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / _MANIFEST_NAME

    def _load_manifest(self) -> None:
        try:
            payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            if payload.get("schema_version") != MANIFEST_SCHEMA_VERSION:
                raise ValueError("manifest schema mismatch")
            entries = payload["entries"]
            if not isinstance(entries, dict) or not all(
                isinstance(entry, dict)
                and isinstance(entry.get("seq", 0), (int, float))
                and isinstance(entry.get("bytes", 0), (int, float))
                for entry in entries.values()
            ):
                raise ValueError("malformed manifest entries")
            self._manifest = entries
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, stale-schema or corrupted manifest: rebuild the index
            # from the entry files actually present.  Entry payloads stay
            # readable either way — the manifest is bookkeeping, not data.
            self._rebuild_manifest()
        self._seq = max(
            (int(entry.get("seq", 0)) for entry in self._manifest.values()), default=0
        )
        self._live_bytes = sum(
            int(entry.get("bytes", 0)) for entry in self._manifest.values()
        )

    def _rebuild_manifest(self) -> None:
        """Rebuild the advisory index from the entries actually present.

        Sizes come from ``stat`` (json files) or the store index (pack
        records), and an entry's ``kind`` comes from the store index or a
        bounded prefix read of the file — never a full payload read, so a
        rebuild scales with the entry *count*, not the payload bytes.
        """
        assert self.cache_dir is not None
        records: list[tuple[float, str, Path, int]] = []
        for path in self.cache_dir.glob("*.json"):
            if path.name == _MANIFEST_NAME or path.name.endswith(".tmp"):
                continue
            try:
                stat = path.stat()
            except OSError:
                # A concurrent evictor may unlink entries mid-scan; a file
                # that vanished simply is not part of the rebuilt index.
                continue
            records.append((stat.st_mtime, path.name, path, stat.st_size))
        entries: dict[str, dict[str, Any]] = {}
        # Oldest files get the lowest recency so a fresh manifest preserves a
        # sensible LRU order.
        seq = 0
        for seq, (_, _, path, size) in enumerate(sorted(records), 1):
            entries[path.stem] = {"kind": _read_entry_kind(path), "bytes": size, "seq": seq}
        if self._store is not None:
            # Pack records carry their kind and size in the store index —
            # no reads at all.  Store entries are newer than any leftover
            # json files by construction (migration deletes the files), so
            # they take the higher recency and win key collisions.
            for key, kind, size in self._store.index_entries():
                seq += 1
                entries[key] = {"kind": kind, "bytes": size, "seq": seq}
        self._manifest = entries
        self._manifest_dirty = True
        self._flush_manifest()

    def _flush_manifest(self) -> None:
        """Write the manifest if it has pending changes.

        A read-only shared cache directory (e.g. one seeded into CI and
        mounted immutable) must still *serve* entries, so write failures are
        swallowed: the manifest is advisory bookkeeping, never data.
        """
        if not self._manifest_dirty:
            return
        payload = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "entries": self._manifest,
        }
        path = self._manifest_path
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            return
        self._manifest_dirty = False

    def flush(self) -> None:
        """Flush pending manifest updates and the store's index sidecar.

        One call lands everything batched since the last flush: recency
        touches, new entries' bookkeeping, and (pack layout) the writer
        segment's index sidecar — a single index flush per executed batch,
        not one per record.  Records queued inside an open :meth:`batch`
        scope are left for the scope's own drain.
        """
        self._flush_manifest()
        if self._store is not None:
            self._store.flush()

    def alias(self, key: str, target: str) -> None:
        """Route recency touches on a memory-only ``key`` to ``target``.

        The engine's layer-level dedupe promotes a layer hit into memory
        under the requesting *block* key without persisting it (the payload
        already lives on disk under the layer key).  Repeat memory hits on
        that block key would otherwise touch nothing — the block key has no
        manifest entry — leaving the hot backing layer entry LRU-coldest
        and first to be evicted under a size budget.  Aliasing makes those
        touches land on the persistent entry that actually serves them.
        """
        if key != target:
            self._aliases[key] = target

    def _touch(self, key: str) -> None:
        """Mark an entry (or the entry it aliases) most-recently-used.

        Touches are batched in memory and flushed with the next write (or an
        explicit :meth:`flush`): a warm, read-mostly run should not rewrite
        the manifest once per lookup, and recency is advisory anyway.  Each
        touch also increments the entry's ``refs`` counter — the per-entry
        reuse statistic ``--cache-info`` reports.
        """
        entry = self._manifest.get(key)
        if entry is None:
            target = self._aliases.get(key)
            entry = self._manifest.get(target) if target is not None else None
            if entry is None:
                return
        self._seq += 1
        entry["seq"] = self._seq
        entry["refs"] = int(entry.get("refs", 0)) + 1
        self._manifest_dirty = True

    def _evict_over_budget(self, protected: str) -> None:
        """Evict least-recently-used entries until the size budget fits.

        The budget check runs on every put, so it compares the maintained
        running total (``_live_bytes``) instead of re-summing the manifest,
        and only sorts by recency once actually over budget.  Pack layout:
        eviction drops the key from the store index (its record bytes
        become dead) and one compaction pass afterwards rewrites segments
        that are now mostly dead — no per-entry unlinks.
        """
        if self.max_bytes is None or self.cache_dir is None:
            return
        if self._live_bytes <= self.max_bytes:
            return
        by_recency = sorted(
            (key for key in self._manifest if key != protected),
            key=lambda key: int(self._manifest[key].get("seq", 0)),
        )
        for key in by_recency:
            if self._live_bytes <= self.max_bytes:
                break
            if self._store is not None:
                self._batch_records.pop(key, None)
                self._store.discard(key)
            else:
                try:
                    (self.cache_dir / f"{key}.json").unlink(missing_ok=True)
                except OSError:
                    continue
            self._live_bytes -= int(self._manifest[key].get("bytes", 0))
            del self._manifest[key]
            # Batched like every other manifest update (the index is
            # advisory; a stale entry for a deleted record is harmless until
            # the next flush or rebuild reconciles it).
            self._manifest_dirty = True
        if self._store is not None:
            # Aggressive: an evicted record must be gone for the *next*
            # reader too, so any idle segment now carrying dead bytes is
            # rewritten (evictions landing in this process's own segment
            # stay dead-byte marks — its index sidecar hides them).
            self._store.compact(aggressive=True)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def _entry_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        return path if path.exists() else None

    @staticmethod
    def _decode_entry(entry: dict[str, Any]) -> Any | None:
        """Deserialize one entry record's payload; None when unreadable."""
        try:
            _, deserialize = _SERIALIZERS[entry["kind"]]
            return deserialize(entry["payload"])
        except (ValueError, KeyError, TypeError):
            return None

    def _read_disk_entry(self, key: str) -> Any | None:
        """One on-disk entry (store record or json file), deserialized.

        Pack layout consults the store index first and falls back to a
        stray ``<key>.json`` file when the directory still carries legacy
        entries (mid-migration mixed dirs).  IO time is accounted here.
        """
        started = time.perf_counter()
        try:
            if self._store is not None:
                record = self._store.get_record(key)
                if record is not None:
                    return self._decode_entry(record)
                if not self._json_fallback:
                    return None
            path = self._entry_path(key)
            if path is None:
                return None
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(entry, dict):
                    return None
            except (OSError, ValueError):
                # A corrupted or schema-stale entry is a miss, not a crash;
                # the fresh computation overwrites it on the next put().
                return None
            return self._decode_entry(entry)
        finally:
            self.io_seconds += time.perf_counter() - started

    def get(self, key: str) -> Any | None:
        """Fetch an entry, promoting disk entries into memory. None on miss."""
        if key in self._memory:
            # Memory hits must refresh disk recency too: the hottest entries
            # are exactly the ones promoted into memory, and without the
            # touch they would look LRU-coldest on disk and be evicted first.
            self._touch(key)
            return self._memory[key]
        value = self._prefetched.pop(key, None)
        if value is None:
            value = self._read_disk_entry(key)
        if value is None:
            return None
        self._memory[key] = value
        self._touch(key)
        return value

    def prefetch(self, keys: Iterable[str]) -> set[str] | None:
        """Bulk-stage on-disk entries for upcoming :meth:`get` calls.

        Pack layout: one index pass plus per-segment reads in offset order
        resolves the whole batch; staged values sit apart from the memory
        tier so the first :meth:`get_with_source` on each still reports
        ``"disk"`` — statistics stay byte-identical to the json oracle.
        Returns the keys that are *not* available (a following ``get``
        would miss), or ``None`` when there is nothing to bulk-read (json
        or memory-only layout, where per-entry reads are already the cost).
        """
        if self._store is None:
            return None
        wanted = [
            key
            for key in keys
            if key not in self._memory and key not in self._prefetched
        ]
        missing: set[str] = set()
        if not wanted:
            return missing
        started = time.perf_counter()
        records = self._store.get_records(wanted)
        self.io_seconds += time.perf_counter() - started
        for key in wanted:
            record = records.get(key)
            value = self._decode_entry(record) if record is not None else None
            if value is None and self._json_fallback:
                value = self._read_disk_entry(key)
            if value is None:
                missing.add(key)
            else:
                self._prefetched[key] = value
        return missing

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Resolve a batch of keys in one index pass; absent keys omitted.

        Equivalent to (and accounted exactly like) a :meth:`get` per key,
        but pack-layout reads are grouped per segment instead of probing
        the filesystem once per key.
        """
        keys = list(keys)
        self.prefetch(keys)
        out: dict[str, Any] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                out[key] = value
        return out

    def get_with_source(self, key: str) -> tuple[Any | None, str]:
        """Like :meth:`get` but also reports ``"memory"``/``"disk"``/``"miss"``."""
        if key in self._memory:
            self._touch(key)
            return self._memory[key], "memory"
        value = self.get(key)
        return value, ("disk" if value is not None else "miss")

    def put(
        self,
        key: str,
        value: Any,
        description: dict[str, Any] | None = None,
        persist: bool = True,
        kind: str | None = None,
    ) -> None:
        """Store an entry in memory and, when configured, on disk.

        ``persist=False`` keeps the entry memory-only even when a cache
        directory is configured — the session uses this for composed
        network results whose per-block artifacts already live on disk
        (persisting the composition too would just duplicate them).

        ``kind`` overrides the kind inferred from the value's type; the
        engine uses it to store content-addressed ``layer`` entries, which
        are ordinary :class:`~repro.sim.results.LayerResult` payloads filed
        under a different kind than the block-keyed ``layer_result`` ones.

        Json layout: the entry file is written immediately (and
        atomically).  Pack layout: the record is appended to this process's
        segment immediately — or, inside a :meth:`batch` scope, queued and
        group-committed as one segment write when the scope closes.  Either
        way manifest updates are batched and land with the next eviction
        pass or :meth:`flush` (the session flushes after every executed
        batch and on close), so storing N artifacts costs O(1) manifest
        rewrites instead of N.
        """
        if kind is None:
            kind = _kind_of(value)
        elif kind not in _SERIALIZERS:
            raise ValueError(f"unknown cache entry kind {kind!r}")
        self._memory[key] = value
        self._prefetched.pop(key, None)
        if self.cache_dir is None or not persist:
            return
        serialize, _ = _SERIALIZERS[kind]
        entry = {
            "kind": kind,
            "workload": description or {},
            "payload": serialize(value),
        }
        if self._store is not None:
            body = encode_body(key, entry)
            if self._batch_depth > 0:
                # Pure CPU: the queued record's I/O happens (and is timed)
                # at the batch drain.
                self._batch_records[key] = (kind, body)
            else:
                started = time.perf_counter()
                sizes = self._store.append_encoded([(key, kind, body)])
                self.io_seconds += time.perf_counter() - started
                if sizes is None:
                    # A read-only shared cache directory still serves reads;
                    # the fresh value simply stays memory-only this session.
                    return
            entry_bytes = len(body)
        else:
            started = time.perf_counter()
            path = self.cache_dir / f"{key}.json"
            # Per-process temp name so concurrent runs sharing a cache dir
            # never tear each other's writes; the final replace is atomic.
            tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
            text = json.dumps(entry, sort_keys=True)
            try:
                tmp.write_text(text, encoding="utf-8")
                tmp.replace(path)
            except OSError:
                return
            finally:
                self.io_seconds += time.perf_counter() - started
            entry_bytes = len(text.encode("utf-8"))
        self._seq += 1
        # Overwrites keep the accumulated reference count: the entry's
        # payload is new but its reuse history is not.
        previous = self._manifest.get(key)
        refs = int(previous.get("refs", 0)) if previous else 0
        self._live_bytes -= int(previous.get("bytes", 0)) if previous else 0
        self._manifest[key] = {
            "kind": kind,
            "bytes": entry_bytes,
            "seq": self._seq,
            "refs": refs,
        }
        self._live_bytes += entry_bytes
        self._manifest_dirty = True
        if self.max_bytes is not None:
            self._evict_over_budget(protected=key)

    @contextmanager
    def batch(self) -> Iterator["ResultCache"]:
        """Group-commit scope: buffered puts land as one segment append.

        Inside the scope, :meth:`put` queues each record's encoded bytes
        instead of appending them one write at a time; when the outermost
        scope exits (normally *or* via an exception — whatever was stored
        stays stored) the queue drains as a single segment write.  Memory
        and manifest bookkeeping still update per put, so lookups, recency
        and eviction behave identically inside and outside a batch.  Nests
        flatly; a no-op for the json and memory-only layouts.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self._drain_batch()

    def _drain_batch(self) -> None:
        if not self._batch_records or self._store is None:
            return
        items = [
            (key, kind, body) for key, (kind, body) in self._batch_records.items()
        ]
        self._batch_records = {}
        started = time.perf_counter()
        self._store.append_encoded(items)
        self.io_seconds += time.perf_counter() - started
        # A failed drain (read-only directory) leaves the entries
        # memory-only; the advisory manifest self-heals on the next rebuild.

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()
        self._prefetched.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entry_summary(self) -> dict[str, dict[str, int]]:
        """Per-kind entry counts and byte totals of the on-disk store.

        Aggregated straight from the manifest index (``manifest.json``), so
        the numbers are exactly what the manifest records; a memory-only
        cache returns an empty mapping.  This is what ``python -m
        repro.harness --cache-info`` reports.
        """
        summary: dict[str, dict[str, int]] = {}
        for entry in self._manifest.values():
            kind = str(entry.get("kind", "unknown"))
            bucket = summary.setdefault(kind, {"entries": 0, "bytes": 0, "refs": 0})
            bucket["entries"] += 1
            bucket["bytes"] += int(entry.get("bytes", 0))
            bucket["refs"] += int(entry.get("refs", 0))
        return summary

    def top_referenced(self, kind: str, limit: int = 5) -> list[dict[str, Any]]:
        """The ``limit`` most-referenced on-disk entries of one kind.

        Each record carries the entry's fingerprint ``key``, its ``refs``
        count (touches accumulated in the manifest — recency refreshes, so
        every memory or disk hit counts one) and the stored ``workload``
        description (read from the entry file; empty when unreadable).
        Zero-reference entries are omitted: an entry that was only ever
        written tells nothing about reuse.  ``--cache-info`` prints this for
        the content-addressed ``layer`` kind, which is what a NAS search
        gets for free.
        """
        ranked = sorted(
            (
                (int(entry.get("refs", 0)), key)
                for key, entry in self._manifest.items()
                if str(entry.get("kind", "unknown")) == kind and int(entry.get("refs", 0)) > 0
            ),
            key=lambda item: (-item[0], item[1]),
        )
        records: list[dict[str, Any]] = []
        for refs, key in ranked[:limit]:
            description: dict[str, Any] = {}
            payload: dict[str, Any] | None = None
            if self._store is not None:
                payload = self._store.get_record(key)
            if payload is None and self.cache_dir is not None:
                try:
                    payload = json.loads(
                        (self.cache_dir / f"{key}.json").read_text(encoding="utf-8")
                    )
                except (OSError, ValueError):
                    payload = None
            if isinstance(payload, dict):
                description = payload.get("workload", {}) or {}
            records.append({"key": key, "refs": refs, "workload": description})
        return records

    def disk_keys(self) -> set[str]:
        """Keys currently resolvable from the on-disk store.

        Store-index keys plus (json layout or mixed dirs) per-entry file
        stems — the ground truth eviction tests and tooling check against,
        independent of the advisory manifest.
        """
        keys: set[str] = set()
        if self.cache_dir is None:
            return keys
        if self._store is not None:
            keys.update(self._store.keys())
            if not self._json_fallback:
                return keys
        try:
            for path in self.cache_dir.glob("*.json"):
                if path.name != _MANIFEST_NAME and not path.name.endswith(".tmp"):
                    keys.add(path.stem)
        except OSError:
            pass
        return keys

    def describe_layout(self) -> str:
        """One human-readable line describing the on-disk format.

        Printed by ``--cache-info`` so operators can tell at a glance
        whether a directory still uses the legacy one-file-per-entry
        layout (and would benefit from ``cache migrate``).
        """
        if self.cache_dir is None:
            return "memory-only (no cache directory)"
        if self._store is not None:
            segments = self._store.segment_count
            noun = "segment" if segments == 1 else "segments"
            line = f"segmented pack ({segments} {noun})"
            if self._json_fallback:
                line += ", serving legacy json entries as fallback"
            return line
        return "json files, one per entry (convert with: cache migrate)"

    def close(self) -> None:
        """Flush pending state and release store file handles.

        The cache stays usable afterwards (handles reopen lazily); this
        just bounds open file descriptors for long-lived processes that
        cycle many caches.
        """
        self.flush()
        if self._store is not None:
            self._store.close()
