"""Two-level artifact cache keyed by content fingerprints (memory + disk).

The staged compile → simulate-blocks → compose pipeline produces cacheable
artifacts at every seam, and this module stores all of them behind one
fingerprint-keyed interface:

* ``program`` — a compiled :class:`~repro.isa.program.Program`, keyed by a
  *structure-only* fingerprint (network structure, batch, scratchpad sizes,
  compiler flags), so sweeps that vary only simulation parameters (e.g.
  off-chip bandwidth) reuse one compilation;
* ``layer_result`` — one simulated block's
  :class:`~repro.sim.results.LayerResult`, keyed by the block fingerprint
  plus the simulation-affecting configuration, so unchanged blocks are never
  re-simulated;
* ``layer`` — the same record stored *content-addressed*: keyed by the
  name-free layer fingerprint (layer shape + bitwidths + tiling +
  instruction image) plus the simulation-affecting configuration, with the
  record's name normalized away.  Block-level lookups fall back to this
  level on a miss, so identical layers dedupe across different networks in
  model-family sweeps (the entry is renamed to the requesting block on use);
* ``network_result`` — a full composed/simulated
  :class:`~repro.sim.results.NetworkResult` (the baselines' unit of work);
* ``tiling`` — one :class:`~repro.isa.tiling.TilingPlan`, keyed by the GEMM
  shape + operand bitwidths + the loop orders searched + the scratchpad
  capacities the search targeted (:func:`repro.session.engine.
  tiling_cache_key`).  The compiler's dominant cost is the tiling search,
  and duplicate GEMM shapes are everywhere — within a network (ResNet's
  repeated blocks), across networks, and across sweep points that do not
  vary the buffers — so memoizing plans here is what makes cold compiles
  cheap and warm ones nearly free;
* ``program_stats`` — lightweight instruction statistics (legacy kind,
  still readable).

Every payload serializes losslessly to JSON — ints, floats and strings
only, and Python's JSON round-trips floats exactly — so an entry read back
from disk is bit-identical to the freshly computed artifact.

On-disk layout: one ``<fingerprint>.json`` file per entry under the cache
directory, plus a ``manifest.json`` carrying a schema version and an entry
index (kind, size, recency).  The manifest makes a cache directory safe to
share across machines and CI runs: a schema bump or a hand-edited directory
degrades to a rebuild, never a crash, and an optional ``max_bytes`` budget
evicts least-recently-used entries so shared directories stay bounded.

The manifest is strictly advisory: entry lookups always check the
filesystem, so a stale, missing or read-only manifest never affects
correctness — read paths degrade to plain reads when the directory is not
writable, and concurrent writers that race on the manifest merely leave it
temporarily incomplete (each writer enforces the size budget against its
own view until the next rebuild reconciles the index).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.isa.program import Program
from repro.isa.tiling import TilingPlan
from repro.sim.results import (
    LayerResult,
    NetworkResult,
    layer_result_from_dict,
    layer_result_to_dict,
)

__all__ = [
    "CacheStats",
    "StageStats",
    "WorkerStats",
    "ProgramStats",
    "ResultCache",
    "MANIFEST_SCHEMA_VERSION",
    "network_result_to_dict",
    "network_result_from_dict",
]

#: Version of the on-disk manifest schema; a mismatch triggers a rebuild.
#: v2 added the content-addressed ``layer`` entry kind; v3 added the
#: ``tiling`` entry kind (older manifests rebuild cleanly — entry payloads
#: are unchanged and stay readable).
MANIFEST_SCHEMA_VERSION = 3

_MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class ProgramStats:
    """Instruction statistics of one compiled Fusion-ISA program."""

    network_name: str
    block_instruction_counts: tuple[int, ...]
    total_instructions: int
    binary_bytes: int

    @property
    def blocks(self) -> int:
        return len(self.block_instruction_counts)

    @classmethod
    def from_program(cls, program: Program) -> "ProgramStats":
        """Distill the statistics of a compiled program.

        Deriving the statistics from a (possibly cache-restored) program is
        what lets the ISA experiment share the program-level cache with the
        simulation pipeline instead of keeping a parallel store.
        """
        return cls(
            network_name=program.network_name,
            block_instruction_counts=tuple(len(compiled.block) for compiled in program),
            total_instructions=program.total_instructions(),
            binary_bytes=program.total_binary_bytes(),
        )


@dataclass
class StageStats:
    """Hit/miss counters for one pipeline stage (programs or blocks)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_hit(self, source: str) -> None:
        self.hits += 1
        if source == "disk":
            self.disk_hits += 1

    def record_miss(self) -> None:
        self.misses += 1

    def summary(self, label: str, work: str) -> str:
        return (
            f"{label}: {self.hits} hits ({self.disk_hits} from disk), "
            f"{self.misses} {work} (hit rate {self.hit_rate:.0%})"
        )


@dataclass
class WorkerStats:
    """Counters of the cache-aware parallel worker protocol.

    ``units`` counts :class:`~repro.session.engine.WorkUnit`s dispatched to
    pool workers, ``remote_blocks`` the blocks those units actually
    simulated, and ``reused_blocks`` the blocks the main process resolved
    from the artifact cache (or from another in-flight workload of the same
    batch) instead of shipping — the waste the protocol exists to avoid.

    ``backend`` names the execution backend that dispatched the units
    (``pool``, ``remote``; empty when everything ran inline), ``per_worker``
    counts units per worker identity (pool pid or remote address), and
    ``dispatch_seconds`` / ``wait_seconds`` accumulate the coordinator-side
    wall time spent serializing/submitting units versus blocking on their
    replies — the ``--profile`` table's per-backend overhead row.
    """

    units: int = 0
    remote_blocks: int = 0
    reused_blocks: int = 0
    backend: str = ""
    dispatch_seconds: float = 0.0
    wait_seconds: float = 0.0
    per_worker: dict[str, int] = field(default_factory=dict)

    def record_worker(self, worker_id: str) -> None:
        """Attribute one completed work unit to a worker identity."""
        self.per_worker[worker_id] = self.per_worker.get(worker_id, 0) + 1

    def summary(self) -> str:
        label = f"parallel workers [{self.backend}]" if self.backend else "parallel workers"
        return (
            f"{label}: {self.units} work units dispatched, "
            f"{self.remote_blocks} blocks simulated remotely, "
            f"{self.reused_blocks} blocks reused from cache"
        )

    def per_worker_summary(self) -> str | None:
        """One footer line of per-worker unit counts, or None when inline."""
        if not self.per_worker:
            return None
        parts = ", ".join(
            f"{worker}: {count}" for worker, count in sorted(self.per_worker.items())
        )
        return f"per-worker units: {parts}"


@dataclass
class CacheStats:
    """Counters the session reports at the end of a run.

    Workload-level counters: ``hits`` counts lookups satisfied from memory,
    disk, or by composing cached per-block artifacts; ``misses`` lookups
    that required fresh work; ``deduped`` counts in-batch duplicates of a
    workload whose execution was still pending (no cached value existed, so
    they are deduplication wins rather than cache hits); ``disk_hits`` is
    the subset of hits that involved the on-disk store;
    ``unique_executions`` counts distinct fingerprints that did fresh work
    this session (the acceptance criterion is that no fingerprint is ever
    executed twice).

    Stage-level counters: ``programs`` tracks compile-stage cache traffic
    (misses are compilations), ``tilings`` tracks the tiling-plan memo the
    compiler consults before every search (misses are actual searches —
    the compiler's dominant cost — and hits are duplicate GEMM shapes
    served from the memo), ``blocks`` tracks block-key lookups of the
    simulate-blocks stage (misses are per-block simulations) and ``layers``
    tracks the content-addressed layer-level fallback consulted on every
    block-key miss (hits are simulations avoided by cross-network layer
    dedupe).  ``workers`` tracks the parallel worker protocol.
    ``compile_seconds`` accumulates the wall-clock time spent inside
    ``FusionCompiler.compile`` (cache misses only), surfaced by the report
    footer's ``compile time`` line so compile-cost regressions are visible
    on every run.  ``sim_seconds`` accumulates block/workload simulation
    wall time the same way (the ``sim time`` footer line), and
    ``compose_seconds`` the result-composition time; parallel runs fold the
    worker-side timings from each
    :class:`~repro.session.engine.WorkResult` into both, so serial and
    parallel footers measure the same stages.
    """

    hits: int = 0
    misses: int = 0
    deduped: int = 0
    disk_hits: int = 0
    #: Failed executions retried once (the retry-once / quarantine policy);
    #: 0 on every fault-free run, so the summary only mentions it when a
    #: retry actually happened and fault-free footers stay byte-identical.
    retries: int = 0
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    compose_seconds: float = 0.0
    executions: dict[str, int] = field(default_factory=dict)
    programs: StageStats = field(default_factory=StageStats)
    tilings: StageStats = field(default_factory=StageStats)
    blocks: StageStats = field(default_factory=StageStats)
    layers: StageStats = field(default_factory=StageStats)
    workers: WorkerStats = field(default_factory=WorkerStats)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.deduped

    @property
    def unique_executions(self) -> int:
        return len(self.executions)

    @property
    def hit_rate(self) -> float:
        """Hits over genuine cache lookups (in-batch duplicates excluded)."""
        consulted = self.hits + self.misses
        return self.hits / consulted if consulted else 0.0

    def record_execution(self, key: str) -> None:
        self.executions[key] = self.executions.get(key, 0) + 1

    def max_executions_per_workload(self) -> int:
        """1 when every unique workload was simulated exactly once."""
        return max(self.executions.values(), default=0)

    def summary(self) -> str:
        lines = [
            f"{self.lookups} workload lookups: {self.hits} cache hits "
            f"({self.disk_hits} from disk), {self.misses} misses, "
            f"{self.deduped} in-batch duplicates deduped, "
            f"{self.unique_executions} unique executions "
            f"(hit rate {self.hit_rate:.0%})"
        ]
        lines.append(self.programs.summary("program cache", "compiles"))
        lines.append(self.tilings.summary("tiling memo", "tiling searches"))
        lines.append(self.blocks.summary("block cache", "block simulations"))
        lines.append(self.layers.summary("layer dedup", "layer-key misses"))
        if self.retries:
            # Only on faulty runs: fault-free footers must stay byte-identical
            # across releases (CI greps them).
            lines.append(f"workload retries: {self.retries} failed execution(s) retried once")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# NetworkResult <-> JSON
# ---------------------------------------------------------------------- #
def network_result_to_dict(result: NetworkResult) -> dict[str, Any]:
    """Serialize a NetworkResult to a JSON-compatible dictionary."""
    return asdict(result)


def network_result_from_dict(payload: dict[str, Any]) -> NetworkResult:
    """Rebuild a NetworkResult from :func:`network_result_to_dict` output."""
    layers = tuple(layer_result_from_dict(layer) for layer in payload["layers"])
    return NetworkResult(
        network_name=payload["network_name"],
        platform=payload["platform"],
        batch_size=payload["batch_size"],
        frequency_mhz=payload["frequency_mhz"],
        layers=layers,
    )


def _program_stats_to_dict(stats: ProgramStats) -> dict[str, Any]:
    return {
        "network_name": stats.network_name,
        "block_instruction_counts": list(stats.block_instruction_counts),
        "total_instructions": stats.total_instructions,
        "binary_bytes": stats.binary_bytes,
    }


def _program_stats_from_dict(payload: dict[str, Any]) -> ProgramStats:
    return ProgramStats(
        network_name=payload["network_name"],
        block_instruction_counts=tuple(payload["block_instruction_counts"]),
        total_instructions=payload["total_instructions"],
        binary_bytes=payload["binary_bytes"],
    )


_SERIALIZERS = {
    "network_result": (network_result_to_dict, network_result_from_dict),
    "layer_result": (layer_result_to_dict, layer_result_from_dict),
    # Content-addressed layer entries are LayerResults stored under a
    # name-free key (and with a normalized name); the payload is identical.
    "layer": (layer_result_to_dict, layer_result_from_dict),
    "program": (Program.to_dict, Program.from_dict),
    "program_stats": (_program_stats_to_dict, _program_stats_from_dict),
    "tiling": (TilingPlan.to_dict, TilingPlan.from_dict),
}


def _kind_of(value: Any) -> str:
    if isinstance(value, NetworkResult):
        return "network_result"
    if isinstance(value, LayerResult):
        return "layer_result"
    if isinstance(value, Program):
        return "program"
    if isinstance(value, ProgramStats):
        return "program_stats"
    if isinstance(value, TilingPlan):
        return "tiling"
    raise TypeError(f"cannot cache values of type {type(value).__name__}")


class ResultCache:
    """Fingerprint-keyed store of evaluation artifacts.

    Parameters
    ----------
    cache_dir:
        When given, entries are also persisted as JSON files under this
        directory and later sessions (or processes) can reuse them; when
        ``None`` the cache is memory-only and lives for one session.
    max_bytes:
        Optional size budget for the on-disk store.  When the sum of entry
        sizes exceeds the budget after a write, least-recently-used entries
        are evicted until it fits (the entry just written always survives).
    """

    def __init__(
        self, cache_dir: str | Path | None = None, max_bytes: int | None = None
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        #: Wall-clock seconds spent on cache disk IO (entry reads in
        #: :meth:`get`, entry writes in :meth:`put`) — the ``cache-IO`` row
        #: of ``python -m repro.harness --profile``.
        self.io_seconds = 0.0
        self._memory: dict[str, Any] = {}
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_bytes = max_bytes
        self._manifest: dict[str, dict[str, Any]] = {}
        #: Memory-only keys whose recency touches route to another key's
        #: manifest entry (:meth:`alias`) — promoted layer-level hits.
        self._aliases: dict[str, str] = {}
        self._manifest_dirty = False
        self._seq = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._load_manifest()

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._entry_path(key) is not None

    # ------------------------------------------------------------------ #
    # Manifest (schema version + entry index + recency for LRU)
    # ------------------------------------------------------------------ #
    @property
    def _manifest_path(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / _MANIFEST_NAME

    def _load_manifest(self) -> None:
        try:
            payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
            if payload.get("schema_version") != MANIFEST_SCHEMA_VERSION:
                raise ValueError("manifest schema mismatch")
            entries = payload["entries"]
            if not isinstance(entries, dict) or not all(
                isinstance(entry, dict)
                and isinstance(entry.get("seq", 0), (int, float))
                and isinstance(entry.get("bytes", 0), (int, float))
                for entry in entries.values()
            ):
                raise ValueError("malformed manifest entries")
            self._manifest = entries
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, stale-schema or corrupted manifest: rebuild the index
            # from the entry files actually present.  Entry payloads stay
            # readable either way — the manifest is bookkeeping, not data.
            self._rebuild_manifest()
        self._seq = max(
            (int(entry.get("seq", 0)) for entry in self._manifest.values()), default=0
        )

    def _rebuild_manifest(self) -> None:
        assert self.cache_dir is not None
        records: list[tuple[float, str, Path, int]] = []
        for path in self.cache_dir.glob("*.json"):
            if path.name == _MANIFEST_NAME or path.name.endswith(".tmp"):
                continue
            try:
                stat = path.stat()
            except OSError:
                # A concurrent evictor may unlink entries mid-scan; a file
                # that vanished simply is not part of the rebuilt index.
                continue
            records.append((stat.st_mtime, path.name, path, stat.st_size))
        entries: dict[str, dict[str, Any]] = {}
        # Oldest files get the lowest recency so a fresh manifest preserves a
        # sensible LRU order.
        for seq, (_, _, path, size) in enumerate(sorted(records), 1):
            kind = "unknown"
            try:
                kind = json.loads(path.read_text(encoding="utf-8")).get("kind", "unknown")
            except (OSError, ValueError):
                pass
            entries[path.stem] = {"kind": kind, "bytes": size, "seq": seq}
        self._manifest = entries
        self._manifest_dirty = True
        self._flush_manifest()

    def _flush_manifest(self) -> None:
        """Write the manifest if it has pending changes.

        A read-only shared cache directory (e.g. one seeded into CI and
        mounted immutable) must still *serve* entries, so write failures are
        swallowed: the manifest is advisory bookkeeping, never data.
        """
        if not self._manifest_dirty:
            return
        payload = {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "entries": self._manifest,
        }
        path = self._manifest_path
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            tmp.replace(path)
        except OSError:
            return
        self._manifest_dirty = False

    def flush(self) -> None:
        """Flush any pending manifest updates (recency touches) to disk."""
        self._flush_manifest()

    def alias(self, key: str, target: str) -> None:
        """Route recency touches on a memory-only ``key`` to ``target``.

        The engine's layer-level dedupe promotes a layer hit into memory
        under the requesting *block* key without persisting it (the payload
        already lives on disk under the layer key).  Repeat memory hits on
        that block key would otherwise touch nothing — the block key has no
        manifest entry — leaving the hot backing layer entry LRU-coldest
        and first to be evicted under a size budget.  Aliasing makes those
        touches land on the persistent entry that actually serves them.
        """
        if key != target:
            self._aliases[key] = target

    def _touch(self, key: str) -> None:
        """Mark an entry (or the entry it aliases) most-recently-used.

        Touches are batched in memory and flushed with the next write (or an
        explicit :meth:`flush`): a warm, read-mostly run should not rewrite
        the manifest once per lookup, and recency is advisory anyway.  Each
        touch also increments the entry's ``refs`` counter — the per-entry
        reuse statistic ``--cache-info`` reports.
        """
        entry = self._manifest.get(key)
        if entry is None:
            target = self._aliases.get(key)
            entry = self._manifest.get(target) if target is not None else None
            if entry is None:
                return
        self._seq += 1
        entry["seq"] = self._seq
        entry["refs"] = int(entry.get("refs", 0)) + 1
        self._manifest_dirty = True

    def _evict_over_budget(self, protected: str) -> None:
        """Evict least-recently-used entries until the size budget fits."""
        if self.max_bytes is None or self.cache_dir is None:
            return
        total = sum(int(entry.get("bytes", 0)) for entry in self._manifest.values())
        if total <= self.max_bytes:
            return
        by_recency = sorted(
            (key for key in self._manifest if key != protected),
            key=lambda key: int(self._manifest[key].get("seq", 0)),
        )
        for key in by_recency:
            if total <= self.max_bytes:
                break
            total -= int(self._manifest[key].get("bytes", 0))
            try:
                (self.cache_dir / f"{key}.json").unlink(missing_ok=True)
            except OSError:
                continue
            del self._manifest[key]
            # Batched like every other manifest update (the index is
            # advisory; a stale entry for a deleted file is harmless until
            # the next flush or rebuild reconciles it).
            self._manifest_dirty = True

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def _entry_path(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        return path if path.exists() else None

    def get(self, key: str) -> Any | None:
        """Fetch an entry, promoting disk entries into memory. None on miss."""
        if key in self._memory:
            # Memory hits must refresh disk recency too: the hottest entries
            # are exactly the ones promoted into memory, and without the
            # touch they would look LRU-coldest on disk and be evicted first.
            self._touch(key)
            return self._memory[key]
        path = self._entry_path(key)
        if path is None:
            return None
        started = time.perf_counter()
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            _, deserialize = _SERIALIZERS[entry["kind"]]
            value = deserialize(entry["payload"])
        except (OSError, ValueError, KeyError, TypeError):
            # A corrupted or schema-stale entry is a miss, not a crash; the
            # fresh computation overwrites it on the next put().
            return None
        finally:
            self.io_seconds += time.perf_counter() - started
        self._memory[key] = value
        self._touch(key)
        return value

    def get_with_source(self, key: str) -> tuple[Any | None, str]:
        """Like :meth:`get` but also reports ``"memory"``/``"disk"``/``"miss"``."""
        if key in self._memory:
            self._touch(key)
            return self._memory[key], "memory"
        value = self.get(key)
        return value, ("disk" if value is not None else "miss")

    def put(
        self,
        key: str,
        value: Any,
        description: dict[str, Any] | None = None,
        persist: bool = True,
        kind: str | None = None,
    ) -> None:
        """Store an entry in memory and, when configured, on disk.

        ``persist=False`` keeps the entry memory-only even when a cache
        directory is configured — the session uses this for composed
        network results whose per-block artifacts already live on disk
        (persisting the composition too would just duplicate them).

        ``kind`` overrides the kind inferred from the value's type; the
        engine uses it to store content-addressed ``layer`` entries, which
        are ordinary :class:`~repro.sim.results.LayerResult` payloads filed
        under a different kind than the block-keyed ``layer_result`` ones.

        The entry file itself is written immediately (and atomically);
        manifest updates are batched and land with the next eviction pass or
        :meth:`flush` (the session flushes after every executed batch and on
        close), so storing N artifacts costs N entry writes plus O(1)
        manifest rewrites instead of N.
        """
        if kind is None:
            kind = _kind_of(value)
        elif kind not in _SERIALIZERS:
            raise ValueError(f"unknown cache entry kind {kind!r}")
        self._memory[key] = value
        if self.cache_dir is not None and persist:
            started = time.perf_counter()
            serialize, _ = _SERIALIZERS[kind]
            entry = {
                "kind": kind,
                "workload": description or {},
                "payload": serialize(value),
            }
            path = self.cache_dir / f"{key}.json"
            # Per-process temp name so concurrent runs sharing a cache dir
            # never tear each other's writes; the final replace is atomic.
            tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
            text = json.dumps(entry, sort_keys=True)
            try:
                tmp.write_text(text, encoding="utf-8")
                tmp.replace(path)
            except OSError:
                # A read-only shared cache directory still serves reads; the
                # fresh value simply stays memory-only for this session.
                return
            finally:
                self.io_seconds += time.perf_counter() - started
            self._seq += 1
            # Overwrites keep the accumulated reference count: the entry's
            # payload is new but its reuse history is not.
            refs = int(self._manifest.get(key, {}).get("refs", 0))
            self._manifest[key] = {
                "kind": kind,
                "bytes": len(text.encode("utf-8")),
                "seq": self._seq,
                "refs": refs,
            }
            self._manifest_dirty = True
            self._evict_over_budget(protected=key)

    def clear_memory(self) -> None:
        """Drop the in-memory layer (disk entries, if any, survive)."""
        self._memory.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entry_summary(self) -> dict[str, dict[str, int]]:
        """Per-kind entry counts and byte totals of the on-disk store.

        Aggregated straight from the manifest index (``manifest.json``), so
        the numbers are exactly what the manifest records; a memory-only
        cache returns an empty mapping.  This is what ``python -m
        repro.harness --cache-info`` reports.
        """
        summary: dict[str, dict[str, int]] = {}
        for entry in self._manifest.values():
            kind = str(entry.get("kind", "unknown"))
            bucket = summary.setdefault(kind, {"entries": 0, "bytes": 0, "refs": 0})
            bucket["entries"] += 1
            bucket["bytes"] += int(entry.get("bytes", 0))
            bucket["refs"] += int(entry.get("refs", 0))
        return summary

    def top_referenced(self, kind: str, limit: int = 5) -> list[dict[str, Any]]:
        """The ``limit`` most-referenced on-disk entries of one kind.

        Each record carries the entry's fingerprint ``key``, its ``refs``
        count (touches accumulated in the manifest — recency refreshes, so
        every memory or disk hit counts one) and the stored ``workload``
        description (read from the entry file; empty when unreadable).
        Zero-reference entries are omitted: an entry that was only ever
        written tells nothing about reuse.  ``--cache-info`` prints this for
        the content-addressed ``layer`` kind, which is what a NAS search
        gets for free.
        """
        ranked = sorted(
            (
                (int(entry.get("refs", 0)), key)
                for key, entry in self._manifest.items()
                if str(entry.get("kind", "unknown")) == kind and int(entry.get("refs", 0)) > 0
            ),
            key=lambda item: (-item[0], item[1]),
        )
        records: list[dict[str, Any]] = []
        for refs, key in ranked[:limit]:
            description: dict[str, Any] = {}
            if self.cache_dir is not None:
                try:
                    payload = json.loads(
                        (self.cache_dir / f"{key}.json").read_text(encoding="utf-8")
                    )
                    description = payload.get("workload", {}) or {}
                except (OSError, ValueError):
                    description = {}
            records.append({"key": key, "refs": refs, "workload": description})
        return records
