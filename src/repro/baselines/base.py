"""Shared machinery for the baseline accelerator models.

Every baseline (Eyeriss, Stripes, the GPUs) runs the same networks and is
reported through the same :class:`~repro.sim.results.NetworkResult` records
as Bit Fusion.  This module provides

* :class:`AcceleratorModel` — the abstract interface (``run(network,
  batch_size)``) the experiment harness drives, and
* :func:`dram_traffic_for_workload` — a helper that reuses the Fusion-ISA
  tiling machinery to estimate a baseline's off-chip traffic at *its* operand
  bitwidths and buffer capacities, so the comparison charges every platform
  the traffic its own precision implies (16-bit everything for Eyeriss,
  16-bit inputs for Stripes, FP32/INT8 for the GPUs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.config import BitFusionConfig
from repro.dnn.layers import Layer
from repro.dnn.network import Network
from repro.isa.optimizations import choose_loop_order
from repro.isa.tiling import GemmWorkload, TilingPlan
from repro.sim.results import NetworkResult

__all__ = ["AcceleratorModel", "dram_traffic_for_workload", "layer_gemm_workload"]


def layer_gemm_workload(
    layer: Layer,
    batch_size: int,
    input_bits: int | None = None,
    weight_bits: int | None = None,
    output_bits: int | None = None,
) -> GemmWorkload:
    """The GEMM a layer presents to a platform, at that platform's bitwidths.

    Passing explicit bitwidths overrides the layer's quantized declaration —
    Eyeriss, for example, executes every layer at 16 bits regardless of the
    bitwidth the quantized model could tolerate.
    """
    if not layer.has_gemm():
        raise ValueError(f"layer {layer.name!r} does not lower to a GEMM")
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    shape = layer.gemm_shape()
    return GemmWorkload(
        m=shape.m,
        n=shape.n,
        r=shape.repeats * batch_size,
        input_bits=input_bits if input_bits is not None else layer.input_bits,
        weight_bits=weight_bits if weight_bits is not None else layer.weight_bits,
        output_bits=output_bits if output_bits is not None else layer.output_bits,
    )


def dram_traffic_for_workload(
    workload: GemmWorkload,
    ibuf_kb: float,
    wbuf_kb: float,
    obuf_kb: float,
) -> TilingPlan:
    """Minimum-traffic tiling of a workload against a platform's buffer sizes.

    The baseline platforms have their own on-chip storage hierarchies; this
    helper reuses the loop-ordering/tiling optimizer so each baseline gets
    the best dataflow its buffers allow, which keeps the comparison fair
    (the paper likewise uses each baseline's own optimized schedule).
    """
    pseudo_config = BitFusionConfig(
        rows=1,
        columns=1,
        ibuf_kb=ibuf_kb,
        wbuf_kb=wbuf_kb,
        obuf_kb=obuf_kb,
        name="baseline-buffers",
    )
    return choose_loop_order(workload, pseudo_config)


class AcceleratorModel(ABC):
    """Common interface of every platform model in the reproduction.

    ``evaluate(network, batch_size)`` is the protocol the evaluation session
    (:mod:`repro.session`) drives: every platform — Bit Fusion itself, the
    baselines, and the temporal design — implements it, so the session can
    cache and parallelize all of them uniformly.  ``run`` is a concrete
    alias kept for the library's historical surface.

    Under the staged pipeline (compile → simulate-blocks → compose,
    :mod:`repro.session.engine`), ``evaluate`` is the single-stage face of
    each platform: Bit Fusion's implementation is the composition of its
    three cacheable stages, while the baselines simulate per layer and
    compose through the same
    :func:`~repro.sim.results.compose_network_result` stage, so every
    platform's per-layer records aggregate identically.
    """

    #: Platform name used in result records and reports.
    name: str = "accelerator"

    @abstractmethod
    def evaluate(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        """Run a network at the given batch size and return its results."""

    def run(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        """Alias of :meth:`evaluate` (the original entry-point name)."""
        return self.evaluate(network, batch_size=batch_size)

    def describe(self) -> str:
        """One-line human-readable description of the platform."""
        return self.name
