"""GPU roofline models: Tegra X2 and Titan Xp (Figure 17).

The paper measures the GPUs with TensorRT and 10,000 timed batches.  Without
GPU hardware, this reproduction substitutes roofline models built from the
published device parameters (Table III): a layer's execution time is the
maximum of its compute time at the device's (de-rated) peak throughput and
its memory time at the device's DRAM bandwidth; energy is the thermal design
power integrated over that time.  The de-rating factors reflect the fraction
of peak a well-tuned DNN library achieves and are the one calibration knob;
they are documented on each :class:`GpuSpec` instance.

Two precision modes are modelled, matching the figure: FP32 and the 8-bit
integer path (dp4a) that only the Titan Xp supports natively — the paper
notes that Tegra X2 *slows down* when 8-bit instructions are forced, so the
TX2 model exposes FP32 (and FP16) only.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from math import ceil

from repro.dnn.layers import Layer
from repro.dnn.network import Network
from repro.energy.breakdown import EnergyBreakdown
from repro.baselines.base import AcceleratorModel
from repro.sim.results import (
    LayerResult,
    MemoryTraffic,
    NetworkResult,
    compose_network_result,
)

__all__ = ["GpuPrecision", "GpuSpec", "GpuModel", "TEGRA_X2", "TITAN_XP"]

#: The roofline model expresses time in cycles of a nominal 1 GHz clock so
#: the shared :class:`NetworkResult` record (which is cycle-based) applies.
_NOMINAL_FREQUENCY_MHZ = 1000.0


@unique
class GpuPrecision(Enum):
    """Numeric precision of the GPU execution path."""

    FP32 = "fp32"
    INT8 = "int8"


@dataclass(frozen=True)
class GpuSpec:
    """Published device parameters plus achievable-fraction de-ratings.

    Attributes
    ----------
    peak_fp32_gflops / peak_int8_gops:
        Peak arithmetic throughput of each precision path (0 disables the
        path, e.g. INT8 on the Tegra X2).
    memory_bandwidth_gb_s:
        Peak DRAM bandwidth.
    tdp_w:
        Thermal design power, used as the sustained power draw.
    achievable_compute_fraction / achievable_bandwidth_fraction:
        Fraction of the peaks a tuned DNN library (TensorRT) sustains.
    """

    name: str
    peak_fp32_gflops: float
    peak_int8_gops: float
    memory_bandwidth_gb_s: float
    tdp_w: float
    achievable_compute_fraction: float = 0.45
    achievable_bandwidth_fraction: float = 0.70
    achievable_int8_fraction: float = 0.16

    def __post_init__(self) -> None:
        if self.peak_fp32_gflops <= 0:
            raise ValueError("peak_fp32_gflops must be positive")
        if self.memory_bandwidth_gb_s <= 0:
            raise ValueError("memory_bandwidth_gb_s must be positive")
        if self.tdp_w <= 0:
            raise ValueError("tdp_w must be positive")
        if not 0 < self.achievable_compute_fraction <= 1:
            raise ValueError("achievable_compute_fraction must be in (0, 1]")
        if not 0 < self.achievable_bandwidth_fraction <= 1:
            raise ValueError("achievable_bandwidth_fraction must be in (0, 1]")
        if not 0 < self.achievable_int8_fraction <= 1:
            raise ValueError("achievable_int8_fraction must be in (0, 1]")

    def supports(self, precision: GpuPrecision) -> bool:
        if precision is GpuPrecision.INT8:
            return self.peak_int8_gops > 0
        return True

    def achievable_fraction(self, precision: GpuPrecision) -> float:
        """De-rating of the arithmetic peak for the given precision path.

        The dp4a INT8 path has a much lower achievable fraction than FP32:
        TensorRT's INT8 kernels deliver roughly 1.5-2x the FP32 throughput in
        practice (the paper measures 19x vs 12x over the Tegra X2 baseline),
        nowhere near the 4x the raw instruction peak would suggest.
        """
        if precision is GpuPrecision.INT8:
            return self.achievable_int8_fraction
        return self.achievable_compute_fraction

    def peak_gops(self, precision: GpuPrecision) -> float:
        if precision is GpuPrecision.INT8:
            if self.peak_int8_gops <= 0:
                raise ValueError(f"{self.name} has no native INT8 path")
            return self.peak_int8_gops
        return self.peak_fp32_gflops

    def operand_bytes(self, precision: GpuPrecision) -> int:
        return 1 if precision is GpuPrecision.INT8 else 4


#: Tegra X2 (Pascal, 256 CUDA cores, Table III).  FP32 peak ~0.75 TFLOPS.
TEGRA_X2 = GpuSpec(
    name="Tegra X2",
    peak_fp32_gflops=750.0,
    peak_int8_gops=0.0,
    memory_bandwidth_gb_s=58.4,
    tdp_w=7.5,
)

#: Titan Xp (Pascal, 3,584 CUDA cores, Table III).  FP32 ~12.1 TFLOPS, INT8
#: dp4a ~48 TOPS.
TITAN_XP = GpuSpec(
    name="Titan Xp",
    peak_fp32_gflops=12_100.0,
    peak_int8_gops=48_400.0,
    memory_bandwidth_gb_s=547.0,
    tdp_w=250.0,
    achievable_compute_fraction=0.40,
    achievable_bandwidth_fraction=0.70,
)


class GpuModel(AcceleratorModel):
    """Roofline performance/energy model of one GPU at one precision."""

    def __init__(self, spec: GpuSpec, precision: GpuPrecision = GpuPrecision.FP32) -> None:
        if not spec.supports(precision):
            raise ValueError(f"{spec.name} does not support {precision.value}")
        self.spec = spec
        self.precision = precision
        self.name = f"{spec.name.lower().replace(' ', '-')}-{precision.value}"

    # ------------------------------------------------------------------ #
    # Per-layer modelling
    # ------------------------------------------------------------------ #
    def _layer_time_s(self, layer: Layer, batch_size: int) -> tuple[float, float, int]:
        """Return (compute_time, memory_time, macs) for one layer per batch."""
        spec = self.spec
        operand_bytes = spec.operand_bytes(self.precision)

        if layer.has_gemm():
            macs = layer.macs() * batch_size
            ops = 2.0 * macs
            compute_time = ops / (
                spec.peak_gops(self.precision)
                * 1e9
                * spec.achievable_fraction(self.precision)
            )
        else:
            macs = 0
            compute_time = 0.0

        moved_bytes = (
            layer.weight_count()
            + (layer.input_elements() + layer.output_elements()) * batch_size
        ) * operand_bytes
        memory_time = moved_bytes / (
            spec.memory_bandwidth_gb_s * 1e9 * spec.achievable_bandwidth_fraction
        )
        return compute_time, memory_time, macs

    def _run_layer(self, layer: Layer, batch_size: int) -> LayerResult:
        compute_time, memory_time, macs = self._layer_time_s(layer, batch_size)
        compute_cycles = ceil(compute_time * _NOMINAL_FREQUENCY_MHZ * 1e6)
        memory_cycles = ceil(memory_time * _NOMINAL_FREQUENCY_MHZ * 1e6)
        latency = max(compute_time, memory_time)
        operand_bits = self.spec.operand_bytes(self.precision) * 8

        moved_bits = (
            layer.weight_count()
            + (layer.input_elements() + layer.output_elements()) * batch_size
        ) * operand_bits
        traffic = MemoryTraffic(dram_read_bits=int(moved_bits))
        # The GPU energy model is TDP integrated over the layer's runtime;
        # the split between components is not observable from outside the
        # device, so everything is attributed to compute.
        energy = EnergyBreakdown(compute=latency * self.spec.tdp_w)
        return LayerResult(
            name=layer.name,
            macs=macs,
            input_bits=operand_bits if operand_bits <= 16 else 16,
            weight_bits=operand_bits if operand_bits <= 16 else 16,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            traffic=traffic,
            energy=energy,
            utilization=self.spec.achievable_fraction(self.precision) if macs else 0.0,
        )

    # ------------------------------------------------------------------ #
    # Network execution
    # ------------------------------------------------------------------ #
    def evaluate(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        batch_size = 16 if batch_size is None else batch_size
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        layers = tuple(self._run_layer(layer, batch_size) for layer in network)
        return compose_network_result(
            network_name=network.name,
            platform=self.name,
            batch_size=batch_size,
            frequency_mhz=_NOMINAL_FREQUENCY_MHZ,
            layers=layers,
        )

    def describe(self) -> str:
        spec = self.spec
        return (
            f"{spec.name} ({self.precision.value}): "
            f"{spec.peak_gops(self.precision) / 1e3:.1f} T(FL)OPS peak, "
            f"{spec.memory_bandwidth_gb_s:.0f} GB/s, {spec.tdp_w:.0f} W TDP"
        )
