"""Eyeriss baseline model (Chen et al., ISCA 2016 — the paper's Figure 13/14 comparison).

Eyeriss is a 168-PE spatial accelerator with a row-stationary dataflow.
Each PE holds a 16-bit multiply-accumulate datapath and a ~0.5 KB register
file; a shared global buffer (181.5 KB in the configuration of Table III)
staggers data between DRAM and the PE array.  Every operand is processed at
16 bits regardless of the precision the quantized model could tolerate —
this fixed precision is exactly the deficiency Bit Fusion addresses.

The model follows the methodology the paper describes:

* **Performance** — the PE array retires at most 168 multiply-accumulates
  per cycle; the row-stationary mapping achieves a layer-type-dependent
  fraction of that peak (convolutions map well, fully-connected and
  recurrent layers poorly).  Off-chip transfers at 16 bits overlap with
  compute (Eyeriss double-buffers its global buffer), so a layer's latency
  is the maximum of the two.
* **Energy** — per-MAC datapath energy, per-MAC register-file traffic
  (the RF accesses dominate Eyeriss energy in Figure 14), global-buffer
  accesses and DRAM traffic, each priced with the same 45 nm models used
  for Bit Fusion and scaled to the configured technology node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.core.config import TechnologyNode
from repro.dnn.layers import ConvLayer, Layer
from repro.dnn.network import Network
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import SramEnergyModel
from repro.energy.components import ComputeEnergyModel
from repro.energy.dram import DramEnergyModel
from repro.baselines.base import AcceleratorModel, layer_gemm_workload
from repro.sim.results import (
    LayerResult,
    MemoryTraffic,
    NetworkResult,
    compose_network_result,
)

__all__ = ["EyerissConfig", "EyerissModel"]


@dataclass(frozen=True)
class EyerissConfig:
    """Eyeriss platform parameters (Table III, scaled to 45 nm).

    Attributes
    ----------
    pe_count:
        Processing elements in the spatial array.
    frequency_mhz:
        Clock frequency used for the comparison (the paper runs both
        accelerators at 500 MHz).
    operand_bits:
        Fixed operand precision of the datapath.
    global_buffer_kb:
        Shared on-chip SRAM capacity.
    rf_bytes_per_pe:
        Per-PE register file capacity.
    dram_bandwidth_bits_per_cycle:
        Off-chip bandwidth, matched to the Bit Fusion configuration.
    conv_utilization / fc_utilization:
        Fraction of the 168-MAC/cycle peak the row-stationary mapping
        achieves for convolutional and fully-connected/recurrent layers.
    rf_accesses_per_mac:
        Register-file accesses charged per multiply-accumulate.
    glb_accesses_per_mac:
        Global-buffer accesses charged per multiply-accumulate (most reuse
        is filtered by the register files).
    """

    pe_count: int = 168
    frequency_mhz: float = 500.0
    operand_bits: int = 16
    global_buffer_kb: float = 181.5
    rf_bytes_per_pe: float = 512.0
    dram_bandwidth_bits_per_cycle: int = 128
    conv_utilization: float = 0.85
    fc_utilization: float = 0.70
    rf_accesses_per_mac: float = 4.0
    glb_accesses_per_mac: float = 0.25
    technology: TechnologyNode = field(default_factory=TechnologyNode.nm45)
    batch_size: int = 16
    name: str = "eyeriss"

    def __post_init__(self) -> None:
        if self.pe_count <= 0:
            raise ValueError(f"pe_count must be positive, got {self.pe_count}")
        if not 0.0 < self.conv_utilization <= 1.0:
            raise ValueError(f"conv_utilization must be in (0, 1], got {self.conv_utilization}")
        if not 0.0 < self.fc_utilization <= 1.0:
            raise ValueError(f"fc_utilization must be in (0, 1], got {self.fc_utilization}")


class EyerissModel(AcceleratorModel):
    """Performance/energy model of the Eyeriss baseline."""

    def __init__(self, config: EyerissConfig | None = None) -> None:
        self.config = config if config is not None else EyerissConfig()
        self.name = self.config.name
        self._compute_energy = ComputeEnergyModel(technology=self.config.technology)
        self._glb = SramEnergyModel(
            capacity_kb=self.config.global_buffer_kb, access_bits=64
        )
        scale = self.config.technology.energy_scale
        self._dram = DramEnergyModel(pj_per_bit=DramEnergyModel().pj_per_bit * scale)

    # ------------------------------------------------------------------ #
    # Per-layer modelling
    # ------------------------------------------------------------------ #
    def _utilization(self, layer: Layer) -> float:
        if isinstance(layer, ConvLayer):
            return self.config.conv_utilization
        return self.config.fc_utilization

    def _compute_cycles(self, layer: Layer, macs: int) -> int:
        peak = self.config.pe_count * self._utilization(layer)
        return ceil(macs / peak)

    def _run_compute_layer(self, layer: Layer, batch_size: int) -> LayerResult:
        cfg = self.config
        workload = layer_gemm_workload(
            layer,
            batch_size,
            input_bits=cfg.operand_bits,
            weight_bits=cfg.operand_bits,
            output_bits=cfg.operand_bits,
        )
        macs = workload.macs
        compute_cycles = self._compute_cycles(layer, macs)

        # Off-chip traffic at 16 bits.  Eyeriss' row-stationary dataflow plus
        # its per-PE register files achieve near-ideal reuse of all three
        # tensors (that is the point of the design), so each tensor is
        # charged a single DRAM transfer per batch.  This is deliberately
        # generous to the baseline; under-modelling Eyeriss would overstate
        # Bit Fusion's advantage.
        dram_read_bits = workload.weight_footprint_bits + workload.input_footprint_bits
        dram_write_bits = workload.output_footprint_bits
        memory_cycles = ceil(
            (dram_read_bits + dram_write_bits) / cfg.dram_bandwidth_bits_per_cycle
        )

        rf_bits = int(macs * cfg.rf_accesses_per_mac * cfg.operand_bits)
        glb_bits = int(macs * cfg.glb_accesses_per_mac * cfg.operand_bits)
        traffic = MemoryTraffic(
            dram_read_bits=int(dram_read_bits),
            dram_write_bits=int(dram_write_bits),
            ibuf_read_bits=glb_bits,
            register_file_bits=rf_bits,
        )

        scale = cfg.technology.energy_scale
        energy = EnergyBreakdown(
            compute=macs * self._compute_energy.eyeriss_mac_energy_pj() * 1e-12,
            buffers=self._glb.energy_for_bits_j(glb_bits) * scale,
            register_file=macs
            * self._compute_energy.eyeriss_rf_energy_per_mac_pj(cfg.rf_accesses_per_mac)
            * 1e-12,
            dram=self._dram.energy_for_bits_j(dram_read_bits + dram_write_bits),
        )
        return LayerResult(
            name=layer.name,
            macs=macs,
            input_bits=cfg.operand_bits,
            weight_bits=cfg.operand_bits,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            overhead_cycles=0,
            traffic=traffic,
            energy=energy,
            utilization=self._utilization(layer),
        )

    def _run_auxiliary_layer(self, layer: Layer, batch_size: int) -> LayerResult:
        """Pooling/activation layers: streamed at 16 bits through the buffer."""
        cfg = self.config
        moved_bits = (
            (layer.input_elements() + layer.output_elements())
            * batch_size
            * cfg.operand_bits
        )
        memory_cycles = ceil(moved_bits / cfg.dram_bandwidth_bits_per_cycle)
        traffic = MemoryTraffic(
            dram_read_bits=layer.input_elements() * batch_size * cfg.operand_bits,
            dram_write_bits=layer.output_elements() * batch_size * cfg.operand_bits,
        )
        energy = EnergyBreakdown(dram=self._dram.energy_for_bits_j(moved_bits))
        return LayerResult(
            name=layer.name,
            macs=0,
            input_bits=cfg.operand_bits,
            weight_bits=cfg.operand_bits,
            compute_cycles=0,
            memory_cycles=memory_cycles,
            traffic=traffic,
            energy=energy,
            utilization=0.0,
        )

    # ------------------------------------------------------------------ #
    # Network execution
    # ------------------------------------------------------------------ #
    def evaluate(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        batch = self.config.batch_size if batch_size is None else batch_size
        layers = []
        for layer in network:
            if layer.has_gemm():
                layers.append(self._run_compute_layer(layer, batch))
            else:
                layers.append(self._run_auxiliary_layer(layer, batch))
        return compose_network_result(
            network_name=network.name,
            platform=self.name,
            batch_size=batch,
            frequency_mhz=self.config.frequency_mhz,
            layers=layers,
        )

    def describe(self) -> str:
        cfg = self.config
        return (
            f"Eyeriss: {cfg.pe_count} PEs at {cfg.frequency_mhz:.0f} MHz, "
            f"{cfg.operand_bits}-bit operands, {cfg.global_buffer_kb:.1f} KB global buffer, "
            f"{cfg.technology.name}"
        )
