"""The purely temporal variable-bitwidth design (Figures 8 and 10).

Section III-C contrasts Bit Fusion's *spatial fusion* with a *temporal*
design in which each 2-bit multiplier iterates over the operand slices
across cycles, accumulating shifted partial products in a private register.
The temporal approach also offers bitwidth flexibility, but its per-unit
shifter and wide accumulator dominate area and power once 16-bit operands
must be supported — Figure 10 reports the synthesized comparison at equal
BitBrick count (3.5x more area, 3.2x more power than the hybrid Fusion
Unit).

Two things are modelled here:

* :class:`TemporalDesignComparison` reproduces the Figure 10 table from the
  published synthesis constants.
* :class:`TemporalDesignModel` answers the follow-on question the figure
  implies: in the *same silicon area*, how much throughput does a temporal
  design deliver relative to Bit Fusion?  The temporal unit retires one
  2-bit x 2-bit product per cycle per unit and needs
  ``ceil(a/2) x ceil(w/2)`` cycles per multiply-accumulate, while packing
  3.5x fewer units per mm².
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.baselines.base import AcceleratorModel, layer_gemm_workload
from repro.dnn.layers import Layer
from repro.dnn.network import Network
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.components import (
    FUSION_UNIT_AREA_UM2,
    FUSION_UNIT_POWER_NW,
    TEMPORAL_UNIT_AREA_UM2,
    TEMPORAL_UNIT_POWER_NW,
    fusion_unit_area_breakdown,
    fusion_unit_power_breakdown,
    temporal_unit_area_breakdown,
    temporal_unit_power_breakdown,
)
from repro.energy.dram import DramEnergyModel
from repro.sim.results import (
    LayerResult,
    MemoryTraffic,
    NetworkResult,
    compose_network_result,
)

__all__ = [
    "LANES_PER_TEMPORAL_UNIT",
    "TemporalDesignComparison",
    "TemporalDesignModel",
    "TemporalAcceleratorModel",
]

#: Concurrent 2-bit x 2-bit multiply lanes per temporal unit (the unit holds
#: 16 BitBricks, matching the Fusion Unit it is compared against).
LANES_PER_TEMPORAL_UNIT = 16


@dataclass(frozen=True)
class TemporalDesignComparison:
    """The Figure 10 area/power comparison at 16 BitBricks per unit."""

    fusion_area_um2: float = FUSION_UNIT_AREA_UM2
    temporal_area_um2: float = TEMPORAL_UNIT_AREA_UM2
    fusion_power_nw: float = FUSION_UNIT_POWER_NW
    temporal_power_nw: float = TEMPORAL_UNIT_POWER_NW

    @property
    def area_reduction(self) -> float:
        """Area advantage of the hybrid Fusion Unit (paper: 3.5x)."""
        return self.temporal_area_um2 / self.fusion_area_um2

    @property
    def power_reduction(self) -> float:
        """Power advantage of the hybrid Fusion Unit (paper: 3.2x)."""
        return self.temporal_power_nw / self.fusion_power_nw

    def area_rows(self) -> list[dict[str, float | str]]:
        """Per-component area rows of the Figure 10 table (µm²)."""
        fusion = fusion_unit_area_breakdown()
        temporal = temporal_unit_area_breakdown()
        rows: list[dict[str, float | str]] = []
        for component in ("bitbricks", "shift_add", "register"):
            rows.append(
                {
                    "component": component,
                    "temporal_um2": temporal[component],
                    "fusion_um2": fusion[component],
                    "reduction": temporal[component] / fusion[component],
                }
            )
        rows.append(
            {
                "component": "total",
                "temporal_um2": self.temporal_area_um2,
                "fusion_um2": self.fusion_area_um2,
                "reduction": self.area_reduction,
            }
        )
        return rows

    def power_rows(self) -> list[dict[str, float | str]]:
        """Per-component power rows of the Figure 10 table (nW)."""
        fusion = fusion_unit_power_breakdown()
        temporal = temporal_unit_power_breakdown()
        rows: list[dict[str, float | str]] = []
        for component in ("bitbricks", "shift_add", "register"):
            rows.append(
                {
                    "component": component,
                    "temporal_nw": temporal[component],
                    "fusion_nw": fusion[component],
                    "reduction": temporal[component] / fusion[component],
                }
            )
        rows.append(
            {
                "component": "total",
                "temporal_nw": self.temporal_power_nw,
                "fusion_nw": self.fusion_power_nw,
                "reduction": self.power_reduction,
            }
        )
        return rows


class TemporalDesignModel:
    """Same-area throughput comparison between temporal and spatial fusion.

    Parameters
    ----------
    compute_area_mm2:
        Silicon area available for compute units (the paper's budget is
        1.1 mm²).
    """

    def __init__(self, compute_area_mm2: float = 1.1) -> None:
        if compute_area_mm2 <= 0:
            raise ValueError(f"compute area must be positive, got {compute_area_mm2}")
        self.compute_area_mm2 = compute_area_mm2
        self.comparison = TemporalDesignComparison()

    @property
    def fusion_units_in_area(self) -> int:
        """Hybrid Fusion Units that fit in the compute-area budget."""
        return int(self.compute_area_mm2 * 1e6 // FUSION_UNIT_AREA_UM2)

    @property
    def temporal_units_in_area(self) -> int:
        """Temporal units (16 2-bit multipliers each) that fit in the budget."""
        return int(self.compute_area_mm2 * 1e6 // TEMPORAL_UNIT_AREA_UM2)

    @staticmethod
    def temporal_cycles_per_mac(input_bits: int, weight_bits: int) -> int:
        """Cycles one temporal lane needs per multiply-accumulate."""
        if input_bits <= 0 or weight_bits <= 0:
            raise ValueError("operand bitwidths must be positive")
        return ceil(max(2, input_bits) / 2) * ceil(max(2, weight_bits) / 2)

    def temporal_macs_per_cycle(self, input_bits: int, weight_bits: int) -> float:
        """Same-area temporal throughput: 16 lanes per unit, serialized per MAC."""
        lanes = self.temporal_units_in_area * LANES_PER_TEMPORAL_UNIT
        return lanes / self.temporal_cycles_per_mac(input_bits, weight_bits)

    def fusion_macs_per_cycle(self, input_bits: int, weight_bits: int) -> float:
        """Same-area Bit Fusion throughput at the given bitwidths."""
        from repro.core.fusion_unit import fusion_config_for

        config = fusion_config_for(input_bits, weight_bits)
        return self.fusion_units_in_area * config.macs_per_cycle

    def throughput_advantage(self, input_bits: int, weight_bits: int) -> float:
        """Bit Fusion speedup over the temporal design in the same area."""
        return self.fusion_macs_per_cycle(input_bits, weight_bits) / self.temporal_macs_per_cycle(
            input_bits, weight_bits
        )


class TemporalAcceleratorModel(AcceleratorModel):
    """Whole-network model of the same-area temporal bit-serial design.

    Extends :class:`TemporalDesignModel`'s per-bitwidth throughput answer to
    full benchmark networks so the temporal design participates in the
    shared :meth:`~repro.baselines.base.AcceleratorModel.evaluate` protocol
    and the evaluation session can cache and sweep it like any other
    platform.  The model charges each GEMM layer ``ceil(a/2) x ceil(w/2)``
    cycles per multiply-accumulate across the same-area lane budget, and
    reuses the generous single-transfer DRAM model the Eyeriss baseline
    uses, at the layer's *quantized* bitwidths (the temporal design is
    bit-flexible — its weakness is area/power, not precision).
    """

    def __init__(
        self,
        compute_area_mm2: float = 1.1,
        frequency_mhz: float = 500.0,
        dram_bandwidth_bits_per_cycle: int = 128,
        batch_size: int = 16,
    ) -> None:
        if frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_mhz}")
        if dram_bandwidth_bits_per_cycle <= 0:
            raise ValueError(
                f"dram bandwidth must be positive, got {dram_bandwidth_bits_per_cycle}"
            )
        self.design = TemporalDesignModel(compute_area_mm2)
        self.frequency_mhz = frequency_mhz
        self.dram_bandwidth_bits_per_cycle = dram_bandwidth_bits_per_cycle
        self.batch_size = batch_size
        self.name = "temporal"
        self._dram = DramEnergyModel()

    @property
    def lanes(self) -> int:
        """Concurrent 2-bit x 2-bit multiply lanes in the area budget."""
        return self.design.temporal_units_in_area * LANES_PER_TEMPORAL_UNIT

    def _run_compute_layer(self, layer: Layer, batch: int) -> LayerResult:
        workload = layer_gemm_workload(layer, batch)
        macs = workload.macs
        per_mac = self.design.temporal_cycles_per_mac(layer.input_bits, layer.weight_bits)
        compute_cycles = ceil(macs * per_mac / self.lanes)

        dram_read_bits = workload.weight_footprint_bits + workload.input_footprint_bits
        dram_write_bits = workload.output_footprint_bits
        memory_cycles = ceil(
            (dram_read_bits + dram_write_bits) / self.dram_bandwidth_bits_per_cycle
        )

        compute_seconds = compute_cycles / (self.frequency_mhz * 1e6)
        compute_energy = (
            self.design.temporal_units_in_area
            * TEMPORAL_UNIT_POWER_NW
            * 1e-9
            * compute_seconds
        )
        traffic = MemoryTraffic(
            dram_read_bits=int(dram_read_bits), dram_write_bits=int(dram_write_bits)
        )
        energy = EnergyBreakdown(
            compute=compute_energy,
            dram=self._dram.energy_for_bits_j(dram_read_bits + dram_write_bits),
        )
        return LayerResult(
            name=layer.name,
            macs=macs,
            input_bits=layer.input_bits,
            weight_bits=layer.weight_bits,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            traffic=traffic,
            energy=energy,
            utilization=1.0,
        )

    def _run_auxiliary_layer(self, layer: Layer, batch: int) -> LayerResult:
        moved_bits = (
            layer.input_elements() * layer.input_bits
            + layer.output_elements() * layer.output_bits
        ) * batch
        memory_cycles = ceil(moved_bits / self.dram_bandwidth_bits_per_cycle)
        traffic = MemoryTraffic(
            dram_read_bits=layer.input_elements() * batch * layer.input_bits,
            dram_write_bits=layer.output_elements() * batch * layer.output_bits,
        )
        energy = EnergyBreakdown(dram=self._dram.energy_for_bits_j(moved_bits))
        return LayerResult(
            name=layer.name,
            macs=0,
            input_bits=layer.input_bits,
            weight_bits=layer.weight_bits,
            compute_cycles=0,
            memory_cycles=memory_cycles,
            traffic=traffic,
            energy=energy,
            utilization=0.0,
        )

    def evaluate(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        batch = self.batch_size if batch_size is None else batch_size
        if batch <= 0:
            raise ValueError(f"batch size must be positive, got {batch}")
        layers = tuple(
            self._run_compute_layer(layer, batch)
            if layer.has_gemm()
            else self._run_auxiliary_layer(layer, batch)
            for layer in network
        )
        return compose_network_result(
            network_name=network.name,
            platform=self.name,
            batch_size=batch,
            frequency_mhz=self.frequency_mhz,
            layers=layers,
        )

    def describe(self) -> str:
        return (
            f"Temporal bit-serial design: {self.design.temporal_units_in_area} units "
            f"({self.lanes} lanes) in {self.design.compute_area_mm2} mm2 at "
            f"{self.frequency_mhz:.0f} MHz"
        )
