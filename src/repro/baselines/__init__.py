"""Baseline accelerator models the paper compares Bit Fusion against.

Section V of the paper evaluates Bit Fusion against four classes of
baselines; each has a model here that produces the same
:class:`~repro.sim.results.NetworkResult` records as the Bit Fusion
simulator so the experiment harness can compute speedups and energy ratios
uniformly:

* :mod:`repro.baselines.eyeriss`  — the 168-PE row-stationary Eyeriss
  accelerator operating on 16-bit operands (Figures 13, 14).
* :mod:`repro.baselines.stripes`  — the bit-serial Stripes accelerator with
  16-bit inputs and serial variable-bitwidth weights (Figure 18).
* :mod:`repro.baselines.temporal` — the purely temporal variable-bitwidth
  design of Figures 8/10, used for the area/power comparison and the
  same-area throughput ablation.
* :mod:`repro.baselines.gpu`      — roofline models of the Tegra X2 and
  Titan Xp GPUs in FP32 and INT8 modes (Figure 17).
"""

from repro.baselines.base import AcceleratorModel, dram_traffic_for_workload
from repro.baselines.eyeriss import EyerissConfig, EyerissModel
from repro.baselines.stripes import StripesConfig, StripesModel
from repro.baselines.temporal import TemporalDesignComparison, TemporalDesignModel
from repro.baselines.gpu import GpuSpec, GpuModel, GpuPrecision, TEGRA_X2, TITAN_XP

__all__ = [
    "AcceleratorModel",
    "dram_traffic_for_workload",
    "EyerissConfig",
    "EyerissModel",
    "StripesConfig",
    "StripesModel",
    "TemporalDesignComparison",
    "TemporalDesignModel",
    "GpuSpec",
    "GpuModel",
    "GpuPrecision",
    "TEGRA_X2",
    "TITAN_XP",
]
