"""Stripes baseline model (Judd et al., MICRO 2016 — the paper's Figure 18 comparison).

Stripes accelerates DNNs with *bit-serial* arithmetic: its Serial
Inner-Product units (SIPs) hold the 16-bit input operand in parallel and
stream the weight operand one bit per cycle, so a layer whose weights need
``w`` bits finishes in time proportional to ``w``.  Inputs, however, stay at
16 bits — Stripes exploits precision flexibility on one operand only, which
is the axis on which Bit Fusion improves on it.

Configuration follows Table III and Section V-A: 16 tiles of 4,096 SIPs at
980 MHz in 45 nm, with a 2 MB eDRAM-class on-chip store.  The paper's
comparison drops a Bit Fusion systolic array of 512 Fusion Units into each
tile's area budget; the matching Bit Fusion configuration is
:meth:`repro.core.config.BitFusionConfig.stripes_matched`.

Model structure mirrors :class:`~repro.baselines.eyeriss.EyerissModel`:
layer-type utilization factors on the compute side, the shared
tiling/loop-order machinery for off-chip traffic at Stripes' operand widths
(16-bit inputs, serial ``w``-bit weights), and the common energy components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.core.config import TechnologyNode
from repro.dnn.layers import ConvLayer, Layer
from repro.dnn.network import Network
from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import SramEnergyModel
from repro.energy.components import ComputeEnergyModel
from repro.energy.dram import DramEnergyModel
from repro.baselines.base import (
    AcceleratorModel,
    dram_traffic_for_workload,
    layer_gemm_workload,
)
from repro.sim.results import (
    LayerResult,
    MemoryTraffic,
    NetworkResult,
    compose_network_result,
)

__all__ = ["StripesConfig", "StripesModel"]


@dataclass(frozen=True)
class StripesConfig:
    """Stripes platform parameters (Table III).

    Attributes
    ----------
    tiles, sips_per_tile:
        16 tiles of 4,096 SIPs in the evaluated configuration.
    input_bits:
        Fixed parallel precision of the input operand.
    max_weight_bits:
        Largest serial weight precision supported (16).
    eDRAM_kb, sram_kb:
        On-chip storage (2 MB eDRAM + 16 KB SRAM per Table III).
    """

    tiles: int = 16
    sips_per_tile: int = 4096
    frequency_mhz: float = 980.0
    input_bits: int = 16
    max_weight_bits: int = 16
    edram_kb: float = 2048.0
    sram_kb: float = 16.0
    dram_bandwidth_bits_per_cycle: int = 256
    conv_utilization: float = 0.85
    fc_utilization: float = 0.70
    technology: TechnologyNode = field(default_factory=TechnologyNode.nm45)
    batch_size: int = 16
    name: str = "stripes"

    def __post_init__(self) -> None:
        if self.tiles <= 0 or self.sips_per_tile <= 0:
            raise ValueError("tiles and sips_per_tile must be positive")
        if self.input_bits not in (8, 16):
            raise ValueError(f"input_bits must be 8 or 16, got {self.input_bits}")

    @property
    def total_sips(self) -> int:
        return self.tiles * self.sips_per_tile


class StripesModel(AcceleratorModel):
    """Performance/energy model of the Stripes baseline."""

    def __init__(self, config: StripesConfig | None = None) -> None:
        self.config = config if config is not None else StripesConfig()
        self.name = self.config.name
        self._compute_energy = ComputeEnergyModel(technology=self.config.technology)
        self._buffer = SramEnergyModel(capacity_kb=self.config.edram_kb / 16, access_bits=64)
        scale = self.config.technology.energy_scale
        self._dram = DramEnergyModel(pj_per_bit=DramEnergyModel().pj_per_bit * scale)

    # ------------------------------------------------------------------ #
    # Per-layer modelling
    # ------------------------------------------------------------------ #
    def serial_weight_bits(self, layer: Layer) -> int:
        """Serial cycles per multiply-accumulate for this layer's weights."""
        return max(1, min(layer.weight_bits, self.config.max_weight_bits))

    def _utilization(self, layer: Layer) -> float:
        if isinstance(layer, ConvLayer):
            return self.config.conv_utilization
        return self.config.fc_utilization

    def _run_compute_layer(self, layer: Layer, batch_size: int) -> LayerResult:
        cfg = self.config
        weight_bits = self.serial_weight_bits(layer)
        workload = layer_gemm_workload(
            layer,
            batch_size,
            input_bits=cfg.input_bits,
            weight_bits=weight_bits,
            output_bits=cfg.input_bits,
        )
        macs = workload.macs

        # Bit-serial throughput: each SIP needs `weight_bits` cycles per MAC.
        peak_macs_per_cycle = cfg.total_sips / weight_bits
        compute_cycles = ceil(macs / (peak_macs_per_cycle * self._utilization(layer)))

        tiling = dram_traffic_for_workload(
            workload,
            ibuf_kb=cfg.edram_kb * 0.4,
            wbuf_kb=cfg.edram_kb * 0.4,
            obuf_kb=cfg.edram_kb * 0.2,
        )
        dram_read_bits = (
            tiling.dram_weight_bits + tiling.dram_input_bits + tiling.dram_output_read_bits
        )
        dram_write_bits = tiling.dram_output_write_bits
        memory_cycles = ceil(
            (dram_read_bits + dram_write_bits) / cfg.dram_bandwidth_bits_per_cycle
        )

        # On-chip traffic: inputs at the fixed 16-bit width once per MAC
        # group, weights re-streamed serially (one bit per cycle per SIP).
        ibuf_bits = int(macs * cfg.input_bits / 16)  # shared across a 16-SIP row group
        wbuf_bits = int(macs * weight_bits)
        obuf_bits = int(workload.m * workload.r * 32 * max(1, tiling.n_tiles))
        traffic = MemoryTraffic(
            dram_read_bits=int(dram_read_bits),
            dram_write_bits=int(dram_write_bits),
            ibuf_read_bits=ibuf_bits,
            wbuf_read_bits=wbuf_bits,
            obuf_write_bits=obuf_bits,
        )

        scale = cfg.technology.energy_scale
        energy = EnergyBreakdown(
            compute=macs * self._compute_energy.stripes_mac_energy_pj(weight_bits) * 1e-12,
            buffers=self._buffer.energy_for_bits_j(ibuf_bits + wbuf_bits + obuf_bits) * scale,
            register_file=0.0,
            dram=self._dram.energy_for_bits_j(dram_read_bits + dram_write_bits),
        )
        return LayerResult(
            name=layer.name,
            macs=macs,
            input_bits=cfg.input_bits,
            weight_bits=weight_bits,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            traffic=traffic,
            energy=energy,
            utilization=self._utilization(layer),
        )

    def _run_auxiliary_layer(self, layer: Layer, batch_size: int) -> LayerResult:
        cfg = self.config
        moved_bits = (
            (layer.input_elements() + layer.output_elements()) * batch_size * cfg.input_bits
        )
        memory_cycles = ceil(moved_bits / cfg.dram_bandwidth_bits_per_cycle)
        traffic = MemoryTraffic(
            dram_read_bits=layer.input_elements() * batch_size * cfg.input_bits,
            dram_write_bits=layer.output_elements() * batch_size * cfg.input_bits,
        )
        energy = EnergyBreakdown(dram=self._dram.energy_for_bits_j(moved_bits))
        return LayerResult(
            name=layer.name,
            macs=0,
            input_bits=cfg.input_bits,
            weight_bits=cfg.input_bits,
            compute_cycles=0,
            memory_cycles=memory_cycles,
            traffic=traffic,
            energy=energy,
            utilization=0.0,
        )

    # ------------------------------------------------------------------ #
    # Network execution
    # ------------------------------------------------------------------ #
    def evaluate(self, network: Network, batch_size: int | None = None) -> NetworkResult:
        batch = self.config.batch_size if batch_size is None else batch_size
        layers = []
        for layer in network:
            if layer.has_gemm():
                layers.append(self._run_compute_layer(layer, batch))
            else:
                layers.append(self._run_auxiliary_layer(layer, batch))
        return compose_network_result(
            network_name=network.name,
            platform=self.name,
            batch_size=batch,
            frequency_mhz=self.config.frequency_mhz,
            layers=layers,
        )

    def describe(self) -> str:
        cfg = self.config
        return (
            f"Stripes: {cfg.tiles}x{cfg.sips_per_tile} SIPs at {cfg.frequency_mhz:.0f} MHz, "
            f"{cfg.input_bits}-bit inputs x serial weights, {cfg.technology.name}"
        )
