"""Mutation operators over the width / depth / bit-width axes of a network.

Candidate generators for the NAS search loop (:mod:`repro.nas.search`).
Every operator takes a :class:`~repro.dnn.network.Network` and a seeded
``random.Random`` and returns a *new* network (inputs are never mutated), or
``None`` when the operator does not apply to the layer it drew (the caller
retries).  The axes mirror the knobs a hardware-aware search actually
explores on Bit Fusion:

* **bits** — re-quantize one compute layer to a different
  ``(input_bits, weight_bits)`` pair.  This is the axis the accelerator
  exists for: the fusion configuration, and hence cycles and energy, follow
  the operand widths (paper Figure 1 / Section III).
* **width** — scale one compute layer's output dimension (conv channels, FC
  features, recurrent hidden size) and patch the next compute layer's input
  dimension — plus any pooling/activation layers in between — so the chain
  stays shape-consistent.
* **depth** — duplicate a compute layer (the copy's input geometry is the
  original's output geometry, so it slots in consistently) or remove one.
* **kernel** — resize one convolution's kernel within 3↔5↔7, patching its
  padding by ``(new - old) // 2`` so the output spatial dims are exactly
  preserved — nothing downstream needs re-shaping.

Candidate networks are named by the *content* of their layer list
(``base/nas-<digest>``): two mutation paths that land on the same
architecture produce fingerprint-identical networks, so the search archive
and the estimator's in-batch dedupe collapse them — and the estimator's
layer-level cache dedupes everything else, because layer fingerprints are
name-free.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Sequence

from repro.dnn.layers import (
    ActivationLayer,
    ConvLayer,
    FCLayer,
    Layer,
    LSTMLayer,
    PoolLayer,
    RNNLayer,
    layer_to_dict,
)
from repro.dnn.network import Network
from repro.fingerprint import fingerprint_payload

__all__ = [
    "MUTATION_AXES",
    "mutate",
    "mutate_bits",
    "mutate_depth",
    "mutate_kernel",
    "mutate_width",
]

#: Bit-width choices for the bits axis.  BitBricks are 2-bit, so fused
#: execution covers 2/4/8/16; the paper's networks live in this set.
_BIT_CHOICES = (2, 4, 8, 16)

#: Width scale factors; chosen so channel/feature counts stay integral for
#: the power-of-two-heavy shapes the zoo uses.
_WIDTH_FACTORS = (0.5, 0.75, 1.5, 2.0)

#: Kernel sizes the kernel axis moves between.  Odd sizes only: the padding
#: patch ``(new - old) // 2`` is exact for odd↔odd transitions, which is
#: what keeps the output spatial dims bit-identical.
_KERNEL_CHOICES = (3, 5, 7)


def _base_name(name: str) -> str:
    """Strip a previous candidate suffix so names do not nest."""
    return name.split("/nas-", 1)[0]


def candidate_name(base: str, layers: Sequence[Layer]) -> str:
    """Deterministic content-derived candidate name.

    Derived from the layer list alone, so any two candidates with identical
    architectures share a name — and therefore a network fingerprint and a
    program-cache entry — no matter which mutation path produced them.
    """
    digest = fingerprint_payload({"layers": [layer_to_dict(layer) for layer in layers]})
    return f"{_base_name(base)}/nas-{digest[:12]}"


def _build(base: Network, layers: Sequence[Layer]) -> Network:
    return Network(candidate_name(base.name, layers), layers)


def _compute_indices(layers: Sequence[Layer]) -> list[int]:
    return [index for index, layer in enumerate(layers) if layer.has_gemm()]


def mutate_bits(network: Network, rng: random.Random) -> Network | None:
    """Re-quantize one compute layer to a different operand-bitwidth pair."""
    layers = list(network)
    compute = _compute_indices(layers)
    if not compute:
        return None
    index = rng.choice(compute)
    layer = layers[index]
    choices = [
        (input_bits, weight_bits)
        for input_bits in _BIT_CHOICES
        for weight_bits in _BIT_CHOICES
        if (input_bits, weight_bits) != (layer.input_bits, layer.weight_bits)
    ]
    input_bits, weight_bits = rng.choice(choices)
    layers[index] = replace(layer, input_bits=input_bits, weight_bits=weight_bits)
    return _build(network, layers)


def _scaled(value: int, factor: float) -> int:
    return max(1, int(round(value * factor)))


def _patch_interstitials(
    layers: list[Layer], start: int, stop: int, old_channels: int, new_channels: int
) -> None:
    """Rescale pool/activation layers between two mutated compute layers."""
    for index in range(start + 1, stop):
        layer = layers[index]
        if isinstance(layer, PoolLayer) and layer.channels == old_channels:
            layers[index] = replace(layer, channels=new_channels)
        elif isinstance(layer, ActivationLayer) and layer.elements % old_channels == 0:
            layers[index] = replace(
                layer, elements=layer.elements // old_channels * new_channels
            )


def mutate_width(network: Network, rng: random.Random) -> Network | None:
    """Scale one compute layer's output dimension; patch the next layer's input.

    Applies to conv→conv (channels), FC→FC / FC-last (features) and
    recurrent layers (hidden size, when not feeding another compute layer);
    grouped convolutions are skipped (channel scaling would break the group
    divisibility constraint).  Returns ``None`` when the drawn layer has no
    consistently-patchable successor.
    """
    layers = list(network)
    compute = _compute_indices(layers)
    if not compute:
        return None
    index = rng.choice(compute)
    position = compute.index(index)
    successor = compute[position + 1] if position + 1 < len(compute) else None
    layer = layers[index]
    factor = rng.choice(_WIDTH_FACTORS)

    if isinstance(layer, ConvLayer):
        if layer.groups != 1:
            return None
        next_layer = layers[successor] if successor is not None else None
        if next_layer is not None and not (
            isinstance(next_layer, ConvLayer) and next_layer.groups == 1
        ):
            return None  # conv feeding FC/recurrent: input patch is non-local
        new_channels = _scaled(layer.out_channels, factor)
        if new_channels == layer.out_channels:
            return None
        layers[index] = replace(layer, out_channels=new_channels)
        if successor is not None:
            _patch_interstitials(
                layers, index, successor, layer.out_channels, new_channels
            )
            layers[successor] = replace(next_layer, in_channels=new_channels)
        else:
            _patch_interstitials(
                layers, index, len(layers), layer.out_channels, new_channels
            )
        return _build(network, layers)

    if isinstance(layer, FCLayer):
        next_layer = layers[successor] if successor is not None else None
        if next_layer is not None and not isinstance(next_layer, FCLayer):
            return None
        new_features = _scaled(layer.out_features, factor)
        if new_features == layer.out_features:
            return None
        layers[index] = replace(layer, out_features=new_features)
        if next_layer is not None:
            layers[successor] = replace(next_layer, in_features=new_features)
        return _build(network, layers)

    if isinstance(layer, (LSTMLayer, RNNLayer)):
        if successor is not None:
            return None  # recurrent stacks: hidden-size chains are non-local
        new_hidden = _scaled(layer.hidden_size, factor)
        if new_hidden == layer.hidden_size:
            return None
        layers[index] = replace(layer, hidden_size=new_hidden)
        return _build(network, layers)

    return None


def _duplicate_layer(layer: Layer, name: str) -> Layer | None:
    """A copy of ``layer`` whose input geometry is ``layer``'s output geometry."""
    if isinstance(layer, ConvLayer):
        kernel = layer.kernel if layer.kernel <= min(layer.out_height, layer.out_width) else 1
        return ConvLayer(
            name=name,
            input_bits=layer.input_bits,
            weight_bits=layer.weight_bits,
            output_bits=layer.output_bits,
            in_channels=layer.out_channels,
            out_channels=layer.out_channels,
            in_height=layer.out_height,
            in_width=layer.out_width,
            kernel=kernel,
            stride=1,
            padding=kernel // 2,
            groups=1,
        )
    if isinstance(layer, FCLayer):
        return replace(layer, name=name, in_features=layer.out_features)
    if isinstance(layer, (LSTMLayer, RNNLayer)):
        return replace(layer, name=name, input_size=layer.hidden_size)
    return None


def _unique_name(base: str, taken: set[str]) -> str:
    counter = 1
    name = f"{base}~dup"
    while name in taken:
        counter += 1
        name = f"{base}~dup{counter}"
    return name


def mutate_depth(network: Network, rng: random.Random) -> Network | None:
    """Duplicate one compute layer in place, or remove one.

    Removal needs at least two compute layers (a network must keep a GEMM);
    a duplicated layer is inserted directly after its original with input
    geometry equal to the original's output geometry.
    """
    layers = list(network)
    compute = _compute_indices(layers)
    if not compute:
        return None
    if len(compute) >= 2 and rng.random() < 0.5:
        del layers[rng.choice(compute)]
        return _build(network, layers)
    index = rng.choice(compute)
    taken = {layer.name for layer in layers}
    duplicate = _duplicate_layer(layers[index], _unique_name(layers[index].name, taken))
    if duplicate is None:
        return None
    layers.insert(index + 1, duplicate)
    return _build(network, layers)


def mutate_kernel(network: Network, rng: random.Random) -> Network | None:
    """Resize one convolution's kernel within 3↔5↔7, preserving output dims.

    The padding is patched by ``(new_kernel - kernel) // 2`` — exact for
    odd↔odd kernel transitions — so ``out = (in + 2p - k) // s + 1`` is
    unchanged and no downstream layer needs re-shaping.  Returns ``None``
    when the drawn layer is not a convolution, the patched padding would go
    negative, or the new kernel would not fit the padded input.
    """
    layers = list(network)
    conv = [
        index for index, layer in enumerate(layers) if isinstance(layer, ConvLayer)
    ]
    if not conv:
        return None
    index = rng.choice(conv)
    layer = layers[index]
    choices = [size for size in _KERNEL_CHOICES if size != layer.kernel]
    if not choices:
        return None
    new_kernel = rng.choice(choices)
    new_padding = layer.padding + (new_kernel - layer.kernel) // 2
    if new_padding < 0:
        return None
    if new_kernel > layer.in_height + 2 * new_padding:
        return None
    if new_kernel > layer.in_width + 2 * new_padding:
        return None
    layers[index] = replace(layer, kernel=new_kernel, padding=new_padding)
    return _build(network, layers)


MUTATION_AXES: dict[str, Callable[[Network, random.Random], Network | None]] = {
    "bits": mutate_bits,
    "depth": mutate_depth,
    "kernel": mutate_kernel,
    "width": mutate_width,
}


def mutate(
    network: Network,
    rng: random.Random,
    axes: Sequence[str] = ("width", "depth", "bits"),
    attempts: int = 8,
) -> Network:
    """One random mutation of ``network`` along the enabled axes.

    Draws an axis and applies its operator, retrying (fresh axis, fresh
    layer) when the operator does not apply; after ``attempts`` failures the
    input network is returned unchanged (the search's fingerprint dedupe
    absorbs it).  Unknown axis names raise.
    """
    unknown = [axis for axis in axes if axis not in MUTATION_AXES]
    if unknown:
        raise ValueError(f"unknown mutation axes {unknown}; available: {sorted(MUTATION_AXES)}")
    if not axes:
        raise ValueError("at least one mutation axis is required")
    for _ in range(attempts):
        operator = MUTATION_AXES[rng.choice(list(axes))]
        candidate = operator(network, rng)
        if candidate is not None:
            return candidate
    return network
