"""NAS-style candidate search over the cache-composition estimator.

Random plus evolutionary mutation over the width / depth / bit-width axes
of a zoo base network (:mod:`repro.nas.mutations`), priced in
fingerprint-deduped batches through :class:`~repro.nas.estimator.Estimator`
and reduced to an incremental latency/energy/area Pareto frontier with
:class:`~repro.dse.pareto.ParetoArchive` (one O(n log n)
:func:`~repro.dse.pareto.pareto_indices` pass per generation).

The search is deterministic: one seeded ``random.Random`` drives every
mutation draw, candidates are identified by network fingerprint, and each
fingerprint is priced at most once across all generations (the archive
remembers, the estimator's caches make re-pricing cheap anyway).

Specs are JSON, mirroring the sweep spec style::

    {
      "name": "resnet18-widths",
      "base_network": "ResNet-18",
      "axes": ["width", "depth", "bits"],
      "population": 16,
      "generations": 4,
      "seed": 7,
      "objectives": ["latency", "energy"]
    }

``area`` as an objective is the accelerator's area under the (fixed) search
configuration — constant across candidates of one search, so it never
decides domination within a search, but it keeps frontier vectors
comparable across searches run under different configurations.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.network import Network
from repro.dse.pareto import ParetoArchive
from repro.energy.components import accelerator_area_mm2
from repro.nas.estimator import Estimator
from repro.nas.mutations import MUTATION_AXES, mutate
from repro.session.cache import ResultCache
from repro.session.checkpoint import SweepCheckpoint
from repro.sim.results import NetworkResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.backends import ExecutionBackend

__all__ = [
    "Candidate",
    "SearchResult",
    "SearchSpec",
    "format_search_report",
    "run_search",
]

#: Objective extractors over a priced candidate.  All minimized; ``area``
#: depends only on the search configuration (see module docstring).
_OBJECTIVE_EXTRACTORS: dict[str, Callable[[NetworkResult, BitFusionConfig], float]] = {
    "latency": lambda result, config: result.latency_per_inference_s * 1e3,
    "energy": lambda result, config: result.energy_per_inference_j * 1e3,
    "area": lambda result, config: accelerator_area_mm2(config),
}

#: Display units per objective, for report tables.
OBJECTIVE_UNITS = {"latency": "ms/inf", "energy": "mJ/inf", "area": "mm2"}


@dataclass(frozen=True)
class SearchSpec:
    """A declarative NAS search: base network, mutation axes, budget."""

    base_network: str
    name: str = "nas search"
    axes: tuple[str, ...] = ("width", "depth", "bits")
    population: int = 16
    generations: int = 4
    seed: int = 0
    objectives: tuple[str, ...] = ("latency", "energy", "area")
    batch_size: int | None = None

    def __post_init__(self) -> None:
        # Resolve aliases eagerly so a bad base network fails before any
        # compilation, and the spec describes itself canonically.
        object.__setattr__(
            self, "base_network", models.canonical_name(self.base_network)
        )
        if not self.axes:
            raise ValueError("a nas spec needs at least one mutation axis")
        for axis in self.axes:
            if axis not in MUTATION_AXES:
                raise ValueError(
                    f"unknown mutation axis {axis!r}; expected one of {sorted(MUTATION_AXES)}"
                )
        if not self.objectives:
            raise ValueError("a nas spec needs at least one objective")
        for objective in self.objectives:
            if objective not in _OBJECTIVE_EXTRACTORS:
                raise ValueError(
                    f"unknown objective {objective!r}; "
                    f"expected one of {sorted(_OBJECTIVE_EXTRACTORS)}"
                )
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if self.batch_size is not None and self.batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {self.batch_size}")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchSpec":
        """Build a spec from a JSON-shaped dictionary.

        Only ``base_network`` is required; every other key has the dataclass
        default.  Unknown keys raise, so typos fail before any simulation.
        """
        known_keys = {
            "name",
            "base_network",
            "axes",
            "population",
            "generations",
            "seed",
            "objectives",
            "batch_size",
        }
        unknown = set(payload) - known_keys
        if unknown:
            raise ValueError(
                f"unknown nas spec key(s) {sorted(unknown)}; expected {sorted(known_keys)}"
            )
        if "base_network" not in payload:
            raise ValueError("a nas spec needs a 'base_network'")
        kwargs: dict[str, Any] = {"base_network": payload["base_network"]}
        for key in ("name", "population", "generations", "seed", "batch_size"):
            if key in payload:
                kwargs[key] = payload[key]
        for key in ("axes", "objectives"):
            if key in payload:
                value = payload[key]
                if isinstance(value, (str, bytes)) or not isinstance(
                    value, (list, tuple)
                ):
                    raise ValueError(f"nas spec {key!r} must be a list")
                kwargs[key] = tuple(value)
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str | Path) -> "SearchSpec":
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, Mapping):
            raise ValueError(f"nas spec {path} must contain a JSON object")
        return cls.from_dict(payload)

    def describe(self) -> str:
        return (
            f"{self.name}: base {self.base_network}, axes {'/'.join(self.axes)}, "
            f"population {self.population} x {self.generations} generations, "
            f"seed {self.seed}, objectives {'/'.join(self.objectives)}"
        )


@dataclass(frozen=True)
class Candidate:
    """One priced architecture: the network, its cost, and its frontier vector."""

    network: Network
    fingerprint: str
    generation: int
    result: NetworkResult
    objectives: tuple[float, ...]


@dataclass
class SearchResult:
    """Everything a search produced, plus how fast it produced it."""

    spec: SearchSpec
    config: BitFusionConfig
    candidates: list[Candidate] = field(default_factory=list)
    frontier: list[Candidate] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def candidates_per_second(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.candidates) / self.elapsed_seconds


def _propose(
    base: Network,
    parents: Sequence[Network],
    spec: SearchSpec,
    rng: random.Random,
) -> list[Network]:
    """One generation's proposals: mutate frontier parents, refill from base.

    Half the population (rounded up) mutates the current frontier — the
    evolutionary arm; the rest mutates the base network directly — the
    random-search arm that keeps exploring after the frontier narrows.
    """
    proposals: list[Network] = []
    evolved = (spec.population + 1) // 2 if parents else 0
    for index in range(spec.population):
        source = parents[index % len(parents)] if index < evolved else base
        proposals.append(mutate(source, rng, axes=spec.axes))
    return proposals


def run_search(
    spec: SearchSpec,
    config: BitFusionConfig | None = None,
    cache: ResultCache | None = None,
    estimator: Estimator | None = None,
    checkpoint: SweepCheckpoint | None = None,
    backend: "ExecutionBackend | None" = None,
) -> SearchResult:
    """Run the search described by ``spec`` and return its frontier.

    Pass an ``estimator`` to continue a warm search (its cache and stats
    carry over); otherwise one is built over ``config`` (default: the
    paper's Eyeriss-matched configuration) and ``cache`` (default: fresh).
    Every candidate — including the base network, priced in generation 0 —
    is evaluated through :meth:`Estimator.estimate_many`, so a fingerprint
    seen in any earlier generation costs nothing to propose again.

    A ``checkpoint`` journal (the sweep format) records each fresh
    candidate as planned before its pricing batch and completed right
    after, so an interrupted search leaves a durable record of exactly
    which fingerprints were priced (their layer artifacts are in the
    cache — a rerun against the same cache directory re-prices them by
    composition, not simulation).

    ``backend`` routes the estimator's batched simulation stage through an
    :class:`~repro.session.backends.ExecutionBackend` (e.g. a
    ``RemoteBackend`` sharding candidate blocks across worker daemons);
    mutually exclusive with passing a pre-built ``estimator``.
    """
    if estimator is None:
        estimator = Estimator(
            config, cache, batch_size=spec.batch_size, backend=backend
        )
    elif config is not None or cache is not None or backend is not None:
        raise ValueError(
            "pass either an estimator or config/cache/backend, not both"
        )
    extractors = [_OBJECTIVE_EXTRACTORS[name] for name in spec.objectives]
    rng = random.Random(spec.seed)
    base = models.load(spec.base_network)

    started = time.perf_counter()
    seen: dict[str, Candidate] = {}
    archive: ParetoArchive[Candidate] = ParetoArchive()
    population: list[Network] = [base] + _propose(base, [], spec, rng)[: spec.population - 1]
    for generation in range(spec.generations):
        fresh: dict[str, Network] = {}
        for network in population:
            fingerprint = network.fingerprint()
            if fingerprint not in seen and fingerprint not in fresh:
                fresh[fingerprint] = network
        if fresh:
            if checkpoint is not None:
                for fingerprint, network in fresh.items():
                    checkpoint.record_planned(fingerprint, network.name)
            results = estimator.estimate_many(list(fresh.values()))
            batch: list[tuple[Candidate, tuple[float, ...]]] = []
            for (fingerprint, network), result in zip(fresh.items(), results):
                vector = tuple(
                    extract(result, estimator.config) for extract in extractors
                )
                candidate = Candidate(
                    network=network,
                    fingerprint=fingerprint,
                    generation=generation,
                    result=result,
                    objectives=vector,
                )
                seen[fingerprint] = candidate
                batch.append((candidate, vector))
                if checkpoint is not None:
                    checkpoint.record_completed(fingerprint)
            archive.extend(batch)
        if generation + 1 < spec.generations:
            parents = [candidate.network for candidate in archive.items]
            population = _propose(base, parents, spec, rng)
    elapsed = time.perf_counter() - started

    return SearchResult(
        spec=spec,
        config=estimator.config,
        candidates=list(seen.values()),
        frontier=list(archive.items),
        elapsed_seconds=elapsed,
    )


def format_search_report(result: SearchResult) -> str:
    """Render a search result: spec line, frontier table, throughput."""
    spec = result.spec
    lines = [spec.describe(), ""]
    headers = ["candidate", "gen", "layers"] + [
        f"{name} ({OBJECTIVE_UNITS[name]})" for name in spec.objectives
    ]
    rows = []
    frontier = sorted(result.frontier, key=lambda candidate: candidate.objectives)
    for candidate in frontier:
        rows.append(
            [
                candidate.network.name,
                str(candidate.generation),
                str(len(candidate.network)),
            ]
            + [f"{value:.4f}" for value in candidate.objectives]
        )
    widths = [
        max(len(header), *(len(row[column]) for row in rows)) if rows else len(header)
        for column, header in enumerate(headers)
    ]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    lines.append("")
    lines.append(
        f"frontier: {len(result.frontier)} of {len(result.candidates)} unique candidates"
    )
    lines.append(f"search time: {result.elapsed_seconds:.2f} s")
    return "\n".join(lines)
