"""Cache-composition surrogate estimator: price networks without simulating.

The content-addressed layer cache already holds exactly what a layer-based
NAS cost model needs: per-layer :class:`~repro.sim.results.LayerResult`\\ s
keyed by *name-free* layer-content fingerprints plus the simulation-affecting
configuration.  :class:`Estimator` turns that store into a surrogate
latency/energy estimator for arbitrary candidate
:class:`~repro.dnn.network.Network`\\ s — no zoo registration, no
:class:`~repro.session.workload.Workload`:

1. **compile through the shared program cache** — the candidate's program is
   keyed by :func:`~repro.session.engine.program_content_key`, the exact
   payload session runs use, so a zoo network priced here reuses the program
   a report compiled (and vice versa); fresh compilations go through the
   session's tiling memo (:func:`~repro.session.engine.make_plan_resolver`);
2. **resolve every block through both cache levels**
   (:func:`~repro.session.engine.lookup_block`) — blocks whose content the
   cache has seen, under *any* network or layer name, compose for free;
3. **batch only the genuinely unseen layers** through the existing batched
   executor (:func:`~repro.session.engine.simulate_planned_blocks`) and
   store their results back under both cache levels
   (:func:`~repro.session.engine.store_layer_record`), so each novel layer
   is simulated exactly once across a whole search;
4. **compose** via :func:`~repro.sim.results.compose_network_result` — the
   same pure composition the simulator and the session use.

**Exactness guarantee**: the estimate is not an approximation.  Composition
is pure and cached layer records are byte-identical to fresh simulations,
so ``estimate(network)`` returns a result byte-identical to
``BitFusionAccelerator(config).evaluate(network)`` — on a fully-cached
network without running any simulation at all.  ``tests/test_nas.py``
property-tests this cold, warm and partially warm.

``estimate_many`` deduplicates candidates by network fingerprint and unseen
blocks by content within the batch (the ``claimed``-set protocol
:func:`~repro.session.engine.plan_workload` uses), so an evolutionary
population full of near-clones costs one simulation per genuinely novel
layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import BitFusionConfig
from repro.dnn.network import Network
from repro.isa.compiler import FusionCompiler
from repro.isa.program import Program
from repro.session.cache import CacheStats, ResultCache
from repro.session.engine import (
    block_cache_key,
    layer_cache_key,
    lookup_block,
    make_plan_resolver,
    prefetch_block_artifacts,
    program_content_key,
    simulate_planned_blocks,
    store_layer_record,
)
from repro.sim.results import LayerResult, NetworkResult, compose_network_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.backends import ExecutionBackend

__all__ = ["Estimator", "EstimatorStats"]


@dataclass
class EstimatorStats:
    """What the estimator did, in layers and candidates.

    ``networks`` counts candidates requested, ``networks_deduped`` the
    subset that were in-batch duplicates of another candidate (same network
    fingerprint — priced once).  Per block of every unique candidate:
    ``layers_composed`` were served straight from the cache (block- or
    layer-level), ``layers_simulated`` were genuinely novel and simulated
    (exactly once each), and ``deduped`` were deferred to an identical
    in-flight block of the same batch.  ``programs_compiled`` /
    ``programs_reused`` track the compile stage the same way.
    """

    networks: int = 0
    networks_deduped: int = 0
    layers_composed: int = 0
    layers_simulated: int = 0
    deduped: int = 0
    programs_compiled: int = 0
    programs_reused: int = 0
    estimate_seconds: float = 0.0
    sim_seconds: float = 0.0

    @property
    def layer_lookups(self) -> int:
        return self.layers_composed + self.layers_simulated + self.deduped

    @property
    def hit_rate(self) -> float:
        """Fraction of layer lookups served without fresh simulation."""
        lookups = self.layer_lookups
        return (self.layers_composed + self.deduped) / lookups if lookups else 0.0

    def summary(self) -> str:
        lines = [
            f"estimator: {self.networks} candidates priced "
            f"({self.networks_deduped} in-batch duplicates), "
            f"layer hit rate {self.hit_rate:.0%}",
            f"layers: {self.layers_composed} composed from cache, "
            f"{self.layers_simulated} simulated fresh, "
            f"{self.deduped} deduped in flight",
            f"programs: {self.programs_reused} reused, {self.programs_compiled} compiled",
        ]
        return "\n".join(lines)


@dataclass
class _CandidatePlan:
    """One candidate's cache-resolution plan (duck-types
    :class:`~repro.session.engine.PlanLike` for the batched executor)."""

    network: Network
    fingerprint: str
    program: Program
    config: BitFusionConfig
    cached_layers: dict[int, LayerResult] = field(default_factory=dict)
    simulate_indices: tuple[int, ...] = ()
    deferred_indices: tuple[int, ...] = ()


class Estimator:
    """Price candidate networks by cache lookup + composition.

    Parameters
    ----------
    config:
        The Bit Fusion configuration candidates are priced under; defaults
        to the paper's Eyeriss-matched 45 nm configuration.
    cache:
        The artifact cache consulted and grown.  Pass the cache of a
        previous session run (or a persistent ``ResultCache(cache_dir)``)
        to start warm; defaults to a fresh memory-only cache.
    batch_size:
        Inference batch size; defaults to ``config.batch_size`` — the same
        default ``BitFusionAccelerator.evaluate`` applies, which the
        exactness guarantee relies on.
    enable_loop_ordering, enable_layer_fusion:
        Compiler flags, part of the program cache key.
    backend:
        Optional :class:`~repro.session.backends.ExecutionBackend` whose
        ``simulate_plans`` runs the batched simulation stage — a
        ``RemoteBackend`` shards candidate blocks across worker daemons.
        Defaults to inline batched simulation.

    ``stats`` (:class:`EstimatorStats`) counts candidates and layers;
    ``cache_stats`` (:class:`~repro.session.cache.CacheStats`) carries the
    per-stage hit/miss traffic in the same shape session footers report.
    """

    def __init__(
        self,
        config: BitFusionConfig | None = None,
        cache: ResultCache | None = None,
        *,
        batch_size: int | None = None,
        enable_loop_ordering: bool = True,
        enable_layer_fusion: bool = True,
        backend: "ExecutionBackend | None" = None,
    ) -> None:
        self.config = config if config is not None else BitFusionConfig.eyeriss_matched()
        self.batch_size = self.config.batch_size if batch_size is None else batch_size
        if self.batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {self.batch_size}")
        self.cache = cache if cache is not None else ResultCache()
        self.enable_loop_ordering = enable_loop_ordering
        self.enable_layer_fusion = enable_layer_fusion
        self.backend = backend
        self.stats = EstimatorStats()
        self.cache_stats = CacheStats()
        self._resolver = make_plan_resolver(self.config, self.cache, self.cache_stats)
        # In-flight block/layer claims: keys some plan has promised to
        # simulate and store but has not yet composed.  Later plans defer to
        # the claimant instead of re-simulating.  Claims are released in
        # ``estimate_many``'s ``finally`` — on success they are redundant
        # (the records are in the cache), and on a raising batch releasing
        # them is essential: a leaked claim would make every later
        # ``estimate_many`` defer to a claimant that never stored anything
        # and die at compose time.
        self._in_flight: set[str] = set()

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #
    def estimate(self, network: Network) -> NetworkResult:
        """Price one candidate network (see :meth:`estimate_many`)."""
        return self.estimate_many([network])[0]

    def estimate_many(self, networks: list[Network]) -> list[NetworkResult]:
        """Price a batch of candidates, deduped and batch-simulated.

        Candidates are deduplicated by network fingerprint; the unique ones
        are planned against the cache, their collectively-unseen blocks
        simulate in one batched pass, and every result composes from cached
        plus fresh records.  Returns one result per input, in input order
        (duplicates get the shared result object).
        """
        started = time.perf_counter()
        requested: list[str] = []
        unique: dict[str, Network] = {}
        for network in networks:
            fingerprint = network.fingerprint()
            requested.append(fingerprint)
            self.stats.networks += 1
            if fingerprint in unique:
                self.stats.networks_deduped += 1
            else:
                unique[fingerprint] = network
        batch_claims: set[str] = set()
        try:
            plans = [
                self._plan(network, fingerprint, batch_claims)
                for fingerprint, network in unique.items()
            ]
            sim_started = time.perf_counter()
            if self.backend is not None:
                remote = self.backend.simulate_plans(plans)
            else:
                remote = simulate_planned_blocks(plans)
            sim_seconds = time.perf_counter() - sim_started
            self.stats.sim_seconds += sim_seconds
            self.cache_stats.sim_seconds += sim_seconds
            results = {
                plan.fingerprint: self._compose(plan, remote_layers)
                for plan, remote_layers in zip(plans, remote)
            }
        finally:
            # Release this batch's claims whether or not it survived: a
            # raising simulation must not leave dangling claims that later
            # batches would defer to (and then fail composing against).
            self._in_flight -= batch_claims
        self.cache.flush()
        self.stats.estimate_seconds += time.perf_counter() - started
        return [results[fingerprint] for fingerprint in requested]

    # ------------------------------------------------------------------ #
    # Stages
    # ------------------------------------------------------------------ #
    def _obtain_program(self, network: Network, fingerprint: str) -> Program:
        key = program_content_key(
            fingerprint,
            self.batch_size,
            self.config,
            self.enable_loop_ordering,
            self.enable_layer_fusion,
        )
        value, source = self.cache.get_with_source(key)
        if value is not None:
            self.cache_stats.programs.record_hit(source)
            self.stats.programs_reused += 1
            return value
        self.cache_stats.programs.record_miss()
        self.stats.programs_compiled += 1
        compile_started = time.perf_counter()
        compiler = FusionCompiler(
            self.config,
            enable_loop_ordering=self.enable_loop_ordering,
            enable_layer_fusion=self.enable_layer_fusion,
            plan_resolver=self._resolver,
        )
        program = compiler.compile(network, batch_size=self.batch_size)
        self.cache_stats.compile_seconds += time.perf_counter() - compile_started
        self.cache.put(key, program, {"artifact": "program", "network": network.name})
        return program

    def _plan(self, network: Network, fingerprint: str, claimed: set[str]) -> _CandidatePlan:
        program = self._obtain_program(network, fingerprint)
        prefetch_block_artifacts(program, self.config, self.cache)
        cached: dict[int, LayerResult] = {}
        simulate: list[int] = []
        deferred: list[int] = []
        for index, compiled in enumerate(program):
            value, level, source = lookup_block(compiled, self.config, self.cache)
            if value is not None:
                (self.cache_stats.blocks if level == "block" else self.cache_stats.layers).record_hit(source)
                self.stats.layers_composed += 1
                cached[index] = value
                continue
            block_key = block_cache_key(compiled.fingerprint(), self.config)
            layer_key = layer_cache_key(compiled, self.config)
            # Same in-batch claim protocol as plan_workload: identical layer
            # content already scheduled (claimed in flight) is deferred to
            # compose time, never simulated twice.
            if block_key in self._in_flight or layer_key in self._in_flight:
                deferred.append(index)
                self.stats.deduped += 1
                continue
            self._in_flight.add(block_key)
            self._in_flight.add(layer_key)
            claimed.add(block_key)
            claimed.add(layer_key)
            self.cache_stats.blocks.record_miss()
            self.cache_stats.layers.record_miss()
            self.stats.layers_simulated += 1
            simulate.append(index)
        return _CandidatePlan(
            network=network,
            fingerprint=fingerprint,
            program=program,
            config=self.config,
            cached_layers=cached,
            simulate_indices=tuple(simulate),
            deferred_indices=tuple(deferred),
        )

    def _compose(
        self, plan: _CandidatePlan, remote_layers: dict[int, LayerResult]
    ) -> NetworkResult:
        # Group-commit the candidate's store-backs: every freshly simulated
        # layer of this plan lands in one segment append on pack caches.
        with self.cache.batch():
            layers = self._compose_layers(plan, remote_layers)
        return compose_network_result(
            network_name=plan.program.network_name,
            platform=self.config.name,
            batch_size=self.batch_size,
            frequency_mhz=self.config.frequency_mhz,
            layers=layers,
        )

    def _compose_layers(
        self, plan: _CandidatePlan, remote_layers: dict[int, LayerResult]
    ) -> list[LayerResult]:
        layers: list[LayerResult] = []
        for index, compiled in enumerate(plan.program):
            if index in plan.cached_layers:
                layers.append(plan.cached_layers[index])
                continue
            if index in remote_layers:
                layer = remote_layers[index]
                store_layer_record(
                    self.cache,
                    self.config,
                    compiled,
                    layer,
                    {"network": plan.network.name, "estimator": "nas"},
                )
                layers.append(layer)
                continue
            # Deferred: the claiming plan (earlier in this batch, or an
            # earlier block of this very program) has stored the record.
            value, level, source = lookup_block(compiled, self.config, self.cache)
            if value is None:  # pragma: no cover — claim protocol guarantees it
                raise RuntimeError(
                    f"deferred block {compiled.name!r} of {plan.network.name!r} "
                    "missing at compose time"
                )
            (self.cache_stats.blocks if level == "block" else self.cache_stats.layers).record_hit(source)
            layers.append(value)
        return layers
