"""NAS over the artifact cache: surrogate estimator plus candidate search.

:class:`Estimator` prices arbitrary candidate networks by cache lookup and
pure composition — simulating only never-before-seen layers, exactly once
each — and :func:`run_search` runs random + evolutionary mutation over zoo
networks through it, streaming an incremental Pareto frontier.  See
``docs/nas.md``.
"""

from repro.nas.estimator import Estimator, EstimatorStats
from repro.nas.mutations import MUTATION_AXES, mutate
from repro.nas.search import (
    Candidate,
    SearchResult,
    SearchSpec,
    format_search_report,
    run_search,
)

__all__ = [
    "Candidate",
    "Estimator",
    "EstimatorStats",
    "MUTATION_AXES",
    "SearchResult",
    "SearchSpec",
    "format_search_report",
    "mutate",
    "run_search",
]
