"""Energy and area models for the Bit Fusion reproduction.

The paper derives its energy numbers from three sources: synthesis of the
Verilog implementation at 45 nm (compute logic), CACTI-P (on-chip SRAM) and
standard DRAM access-energy figures, with technology scaling applied when
comparing against 16 nm GPUs.  This package re-creates that methodology as
analytical models:

* :mod:`repro.energy.components` — per-operation compute-energy constants
  (anchored on the synthesis results the paper publishes in Figure 10) and
  the area constants used to size the accelerator.
* :mod:`repro.energy.cacti`      — a CACTI-P-inspired SRAM access-energy
  model parameterized by capacity and access width.
* :mod:`repro.energy.dram`       — off-chip DRAM access energy.
* :mod:`repro.energy.breakdown`  — the per-component energy breakdown
  (compute / buffers / register file / DRAM) used across all accelerator
  models (Figure 14).
"""

from repro.energy.breakdown import EnergyBreakdown
from repro.energy.cacti import SramEnergyModel, sram_access_energy_pj, sram_area_mm2
from repro.energy.components import (
    ComputeEnergyModel,
    FUSION_UNIT_AREA_UM2,
    TEMPORAL_UNIT_AREA_UM2,
    FUSION_UNIT_POWER_NW,
    TEMPORAL_UNIT_POWER_NW,
    accelerator_area_mm2,
    fusion_unit_area_breakdown,
    temporal_unit_area_breakdown,
)
from repro.energy.dram import DramEnergyModel

__all__ = [
    "EnergyBreakdown",
    "SramEnergyModel",
    "sram_access_energy_pj",
    "sram_area_mm2",
    "accelerator_area_mm2",
    "ComputeEnergyModel",
    "DramEnergyModel",
    "FUSION_UNIT_AREA_UM2",
    "TEMPORAL_UNIT_AREA_UM2",
    "FUSION_UNIT_POWER_NW",
    "TEMPORAL_UNIT_POWER_NW",
    "fusion_unit_area_breakdown",
    "temporal_unit_area_breakdown",
]
