"""CACTI-P-inspired SRAM access-energy and area model.

The paper models on-chip buffer energy with CACTI-P [48].  The external
CACTI binary is not available offline, so this module provides an analytical
stand-in with the property that matters for the reproduction: access energy
grows with array capacity (roughly with the square root, dominated by
bit-line/word-line length) and linearly with the number of bits moved per
access.  The coefficients are anchored so that

* a tiny per-Fusion-Unit weight buffer (~128 B) costs register-file-like
  energy per bit,
* a tens-of-kilobytes shared input/output buffer costs a few picojoules per
  32-bit access,
* a megabyte-class array (the Stripes eDRAM stand-in) costs tens of
  picojoules per access,

which reproduces the relative buffer-versus-DRAM-versus-compute shares of
Figure 14.  All energies are at the 45 nm reference node; technology scaling
is applied by the caller via :class:`~repro.core.config.TechnologyNode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config imports nothing here)
    from repro.core.config import TechnologyNode

__all__ = ["SramEnergyModel", "sram_access_energy_pj", "sram_area_mm2"]

#: Fixed per-access decoder/sense overhead, pJ per bit moved (45 nm).
_BASE_PJ_PER_BIT = 0.010

#: Capacity-dependent term, pJ per bit per sqrt(KB) (45 nm).
_CAPACITY_PJ_PER_BIT_PER_SQRT_KB = 0.012

#: Leakage-free SRAM area density at 45 nm, mm^2 per KB (6T cells + periphery).
_AREA_MM2_PER_KB = 0.0045


def sram_access_energy_pj(capacity_kb: float, bits_per_access: int) -> float:
    """Energy of one access to an SRAM of ``capacity_kb`` moving ``bits_per_access``.

    Returns picojoules at the 45 nm reference node.
    """
    if capacity_kb <= 0:
        raise ValueError(f"SRAM capacity must be positive, got {capacity_kb}")
    if bits_per_access <= 0:
        raise ValueError(f"bits per access must be positive, got {bits_per_access}")
    per_bit = _BASE_PJ_PER_BIT + _CAPACITY_PJ_PER_BIT_PER_SQRT_KB * sqrt(capacity_kb)
    return per_bit * bits_per_access


def sram_area_mm2(
    capacity_kb: float, technology: "TechnologyNode | None" = None
) -> float:
    """Silicon area of an SRAM array, in mm².

    Reported at the 45 nm reference node by default; passing a
    :class:`~repro.core.config.TechnologyNode` scales the array by its
    :attr:`~repro.core.config.TechnologyNode.area_scale` (the node-scaling
    hook the design-space area objective uses).
    """
    if capacity_kb <= 0:
        raise ValueError(f"SRAM capacity must be positive, got {capacity_kb}")
    area = _AREA_MM2_PER_KB * capacity_kb
    if technology is not None:
        area *= technology.area_scale
    return area


@dataclass(frozen=True)
class SramEnergyModel:
    """Access-energy model bound to one physical SRAM array.

    Parameters
    ----------
    capacity_kb:
        Capacity of the array (one bank).
    access_bits:
        Width of one data-array access (32 bits for the Bit Fusion buffers,
        Section II-B).
    """

    capacity_kb: float
    access_bits: int = 32

    def __post_init__(self) -> None:
        if self.capacity_kb <= 0:
            raise ValueError(f"capacity_kb must be positive, got {self.capacity_kb}")
        if self.access_bits <= 0:
            raise ValueError(f"access_bits must be positive, got {self.access_bits}")

    @property
    def energy_per_access_pj(self) -> float:
        """Energy of one data-array access in picojoules (45 nm)."""
        return sram_access_energy_pj(self.capacity_kb, self.access_bits)

    @property
    def energy_per_bit_pj(self) -> float:
        """Energy per bit moved, in picojoules (45 nm)."""
        return self.energy_per_access_pj / self.access_bits

    def energy_for_accesses_j(self, accesses: int | float) -> float:
        """Total energy in joules for a number of accesses."""
        if accesses < 0:
            raise ValueError(f"access count must be non-negative, got {accesses}")
        return accesses * self.energy_per_access_pj * 1e-12

    def energy_for_bits_j(self, bits: int | float) -> float:
        """Total energy in joules for moving a number of bits."""
        if bits < 0:
            raise ValueError(f"bit count must be non-negative, got {bits}")
        return bits * self.energy_per_bit_pj * 1e-12

    @property
    def area_mm2(self) -> float:
        """Array area in mm² at 45 nm."""
        return sram_area_mm2(self.capacity_kb)
