"""Off-chip DRAM access-energy model.

Both the paper and the accelerator literature it builds on (Eyeriss, EIE,
Tetris) agree that DRAM accesses dominate accelerator energy once on-chip
reuse is exploited; the absolute per-bit energy they assume is in the
15-25 pJ/bit range for DDR3/LPDDR-class interfaces at 45 nm-era systems.
This module uses 20 pJ/bit as the 45 nm reference value and exposes it as a
model object so experiments can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramEnergyModel", "DRAM_PJ_PER_BIT_45NM"]

#: Reference DRAM access energy at the 45 nm system node, pJ per bit.
DRAM_PJ_PER_BIT_45NM = 20.0


@dataclass(frozen=True)
class DramEnergyModel:
    """Energy model for off-chip memory traffic.

    Parameters
    ----------
    pj_per_bit:
        Access energy per bit transferred.  The default is the 45 nm
        reference value; callers apply technology scaling for other nodes
        (only the interface/IO portion scales, which the simple model folds
        into the same factor).
    """

    pj_per_bit: float = DRAM_PJ_PER_BIT_45NM

    def __post_init__(self) -> None:
        if self.pj_per_bit <= 0:
            raise ValueError(f"pj_per_bit must be positive, got {self.pj_per_bit}")

    def energy_for_bits_j(self, bits: int | float) -> float:
        """Total DRAM energy in joules for ``bits`` of traffic."""
        if bits < 0:
            raise ValueError(f"bit count must be non-negative, got {bits}")
        return bits * self.pj_per_bit * 1e-12

    def energy_for_bytes_j(self, num_bytes: int | float) -> float:
        """Total DRAM energy in joules for ``num_bytes`` of traffic."""
        return self.energy_for_bits_j(num_bytes * 8)
