"""Per-component energy breakdown (compute / buffers / register file / DRAM).

Figure 14 of the paper breaks the energy of Bit Fusion and Eyeriss into four
components; every accelerator model in this reproduction reports the same
four so the breakdown experiment and the energy-comparison experiments can
treat them uniformly.  All values are in joules.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyBreakdown"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy in joules split by hardware component.

    Attributes
    ----------
    compute:
        Arithmetic (BitBricks / PE datapaths / SIPs / CUDA cores).
    buffers:
        On-chip SRAM scratchpads (IBUF, OBUF, WBUF or their equivalents).
    register_file:
        Per-PE register files (zero for Bit Fusion, whose systolic
        organization has none).
    dram:
        Off-chip memory accesses.
    """

    compute: float = 0.0
    buffers: float = 0.0
    register_file: float = 0.0
    dram: float = 0.0

    def __post_init__(self) -> None:
        for label, value in self.as_dict().items():
            if value < 0:
                raise ValueError(f"{label} energy must be non-negative, got {value}")

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.compute + self.buffers + self.register_file + self.dram

    def as_dict(self) -> dict[str, float]:
        """The four components as a plain dictionary (in joules)."""
        return {
            "compute": self.compute,
            "buffers": self.buffers,
            "register_file": self.register_file,
            "dram": self.dram,
        }

    def fractions(self) -> dict[str, float]:
        """Each component's share of the total (all zero for an empty breakdown)."""
        total = self.total
        if total == 0.0:
            return {key: 0.0 for key in self.as_dict()}
        return {key: value / total for key, value in self.as_dict().items()}

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            compute=self.compute + other.compute,
            buffers=self.buffers + other.buffers,
            register_file=self.register_file + other.register_file,
            dram=self.dram + other.dram,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Breakdown with every component multiplied by ``factor``.

        Used for technology scaling and for converting per-batch energy to
        per-inference energy.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return EnergyBreakdown(
            compute=self.compute * factor,
            buffers=self.buffers * factor,
            register_file=self.register_file * factor,
            dram=self.dram * factor,
        )

    @staticmethod
    def zero() -> "EnergyBreakdown":
        return EnergyBreakdown()

    @staticmethod
    def sum(breakdowns: list["EnergyBreakdown"]) -> "EnergyBreakdown":
        total = EnergyBreakdown()
        for breakdown in breakdowns:
            total = total + breakdown
        return total
