"""Compute-energy and area constants (synthesis-anchored, Figure 10 / Table III).

The paper implements the Fusion Unit in Verilog and synthesizes it with a
commercial 45 nm standard-cell library; Figure 10 publishes the resulting
area and power split between the BitBricks, the shift-add tree and the
accumulation register, for both the hybrid spatio-temporal Fusion Unit and a
purely temporal reference design.  Those published numbers are reproduced
here verbatim as constants (the proprietary synthesis flow is the one piece
of the methodology this reproduction cannot re-run) and everything derived
from them — compute energy per multiply-accumulate at each fusion
configuration, Fusion Units per mm², Eyeriss per-PE energy — is computed by
:class:`ComputeEnergyModel`.

Anchoring: a full 16-BitBrick Fusion Unit retiring one 8-bit × 8-bit
multiply-accumulate per cycle is assigned ``FUSION_UNIT_MAC_8x8_PJ``;
narrower configurations consume energy in proportion to the BitBricks a
Fused-PE activates per multiply (the shift-add tree and register are shared
and accounted in the same per-brick figure), which is exactly the quadratic
compute-energy saving the paper's first insight describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import BitFusionConfig, TechnologyNode
from repro.core.fusion_unit import BITBRICKS_PER_FUSION_UNIT, FusionConfig

__all__ = [
    "FUSION_UNIT_AREA_UM2",
    "TEMPORAL_UNIT_AREA_UM2",
    "FUSION_UNIT_POWER_NW",
    "TEMPORAL_UNIT_POWER_NW",
    "FUSION_UNIT_MAC_8x8_PJ",
    "EYERISS_MAC_16BIT_PJ",
    "EYERISS_RF_ACCESS_PJ_PER_BIT",
    "STRIPES_SERIAL_BIT_OP_PJ",
    "fusion_unit_area_breakdown",
    "temporal_unit_area_breakdown",
    "fusion_unit_power_breakdown",
    "temporal_unit_power_breakdown",
    "ComputeEnergyModel",
    "accelerator_area_mm2",
]

# --------------------------------------------------------------------------- #
# Synthesis constants published in Figure 10 (45 nm, 16 BitBricks per unit).
# --------------------------------------------------------------------------- #

#: Area of the hybrid (spatial fusion + temporal 16-bit) Fusion Unit, µm².
FUSION_UNIT_AREA_UM2 = 1394.0

#: Area of the purely temporal reference design with 16 2-bit multipliers, µm².
TEMPORAL_UNIT_AREA_UM2 = 4905.0

#: Switching power of the hybrid Fusion Unit as reported in Figure 10, nW/MHz-class units.
FUSION_UNIT_POWER_NW = 538.0

#: Switching power of the temporal reference design, same units as above.
TEMPORAL_UNIT_POWER_NW = 1712.0

_FUSION_UNIT_AREA_SPLIT_UM2 = {"bitbricks": 369.0, "shift_add": 934.0, "register": 91.0}
_TEMPORAL_UNIT_AREA_SPLIT_UM2 = {"bitbricks": 463.0, "shift_add": 2989.0, "register": 1454.0}
_FUSION_UNIT_POWER_SPLIT_NW = {"bitbricks": 46.0, "shift_add": 424.0, "register": 69.0}
_TEMPORAL_UNIT_POWER_SPLIT_NW = {"bitbricks": 60.0, "shift_add": 550.0, "register": 1103.0}


def fusion_unit_area_breakdown() -> dict[str, float]:
    """Figure 10 area split of the hybrid Fusion Unit (µm², 45 nm)."""
    return dict(_FUSION_UNIT_AREA_SPLIT_UM2)


def temporal_unit_area_breakdown() -> dict[str, float]:
    """Figure 10 area split of the temporal reference design (µm², 45 nm)."""
    return dict(_TEMPORAL_UNIT_AREA_SPLIT_UM2)


def fusion_unit_power_breakdown() -> dict[str, float]:
    """Figure 10 power split of the hybrid Fusion Unit (nW, 45 nm)."""
    return dict(_FUSION_UNIT_POWER_SPLIT_NW)


def temporal_unit_power_breakdown() -> dict[str, float]:
    """Figure 10 power split of the temporal reference design (nW, 45 nm)."""
    return dict(_TEMPORAL_UNIT_POWER_SPLIT_NW)


# --------------------------------------------------------------------------- #
# Per-operation energy anchors (45 nm).
# --------------------------------------------------------------------------- #

#: Energy of one 8-bit x 8-bit multiply-accumulate on a fully-fused Fusion
#: Unit (all 16 BitBricks plus the shift-add tree and accumulator), pJ.
FUSION_UNIT_MAC_8x8_PJ = 0.36

#: Energy of one 16-bit multiply-accumulate in an Eyeriss PE datapath, pJ.
EYERISS_MAC_16BIT_PJ = 1.2

#: Eyeriss per-PE register-file access energy, pJ per bit (512 B scratch RF).
EYERISS_RF_ACCESS_PJ_PER_BIT = 0.065

#: Energy of one bit-serial AND-accumulate step in a Stripes SIP, pJ.  One
#: 16-bit-input x w-bit-weight multiply-accumulate costs w of these.
STRIPES_SERIAL_BIT_OP_PJ = 0.11


@dataclass(frozen=True)
class ComputeEnergyModel:
    """Per-operation compute energy, with technology scaling applied.

    Parameters
    ----------
    technology:
        Process node; dynamic energy scales with
        :attr:`~repro.core.config.TechnologyNode.energy_scale` relative to
        the 45 nm synthesis reference.
    """

    technology: TechnologyNode

    @property
    def _scale(self) -> float:
        return self.technology.energy_scale

    # -- Bit Fusion ------------------------------------------------------- #
    def fusion_mac_energy_pj(self, config: FusionConfig) -> float:
        """Energy of one multiply-accumulate at the given fusion configuration.

        The energy is proportional to the BitBricks a Fused-PE activates per
        retired multiply-accumulate, including the temporal passes a 16-bit
        operand requires.
        """
        bricks_per_mac = config.bricks_per_fpe * config.temporal_passes
        fraction = bricks_per_mac / BITBRICKS_PER_FUSION_UNIT
        return FUSION_UNIT_MAC_8x8_PJ * fraction * self._scale

    def fusion_energy_for_macs_j(self, config: FusionConfig, macs: int | float) -> float:
        """Total Bit Fusion compute energy in joules for ``macs`` multiply-adds."""
        if macs < 0:
            raise ValueError(f"mac count must be non-negative, got {macs}")
        return macs * self.fusion_mac_energy_pj(config) * 1e-12

    # -- Eyeriss ---------------------------------------------------------- #
    def eyeriss_mac_energy_pj(self) -> float:
        """Energy of one 16-bit multiply-accumulate in an Eyeriss PE."""
        return EYERISS_MAC_16BIT_PJ * self._scale

    def eyeriss_rf_energy_per_mac_pj(self, accesses_per_mac: float = 4.0) -> float:
        """Register-file energy charged per multiply-accumulate in Eyeriss.

        The row-stationary dataflow reads the input, filter and partial sum
        from the per-PE register file and writes the partial sum back —
        roughly four 16-bit accesses per multiply-accumulate.
        """
        if accesses_per_mac < 0:
            raise ValueError(
                f"accesses_per_mac must be non-negative, got {accesses_per_mac}"
            )
        return accesses_per_mac * 16 * EYERISS_RF_ACCESS_PJ_PER_BIT * self._scale

    # -- Stripes ---------------------------------------------------------- #
    def stripes_mac_energy_pj(self, weight_bits: int) -> float:
        """Energy of one 16-bit-input multiply-accumulate at ``weight_bits`` serial bits."""
        if weight_bits <= 0:
            raise ValueError(f"weight_bits must be positive, got {weight_bits}")
        return STRIPES_SERIAL_BIT_OP_PJ * weight_bits * self._scale

    # -- Area ------------------------------------------------------------- #
    def fusion_unit_area_mm2(self) -> float:
        """Area of one Fusion Unit at the model's technology node, mm²."""
        return FUSION_UNIT_AREA_UM2 * 1e-6 * self.technology.area_scale

    def fusion_units_per_mm2(self) -> float:
        """Fusion Units that fit in 1 mm² of compute area at this node."""
        return 1.0 / self.fusion_unit_area_mm2()


def accelerator_area_mm2(config: "BitFusionConfig") -> float:
    """Silicon area of a configured Bit Fusion instance, in mm².

    Compute area (Fusion Units at the synthesis-anchored Figure 10 figure)
    plus on-chip SRAM (the CACTI-inspired density model), both scaled to the
    configuration's technology node.  This is the area objective the
    design-space Pareto frontier trades against performance and energy;
    interconnect and pad overheads are outside the model, so treat the
    number as a comparison metric rather than a floorplan.
    """
    from repro.energy.cacti import sram_area_mm2

    compute = config.fusion_units * ComputeEnergyModel(config.technology).fusion_unit_area_mm2()
    sram = sram_area_mm2(config.total_sram_kb, config.technology)
    return compute + sram
