"""Tests for loop tiling and the off-chip traffic model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import BitFusionConfig
from repro.isa.instructions import LoopOrder
from repro.isa.tiling import GemmWorkload, plan_tiling, tile_candidates


class TestGemmWorkload:
    def test_footprints(self):
        workload = GemmWorkload(m=10, n=20, r=30, input_bits=4, weight_bits=2, output_bits=8)
        assert workload.macs == 6000
        assert workload.weight_footprint_bits == 10 * 20 * 2
        assert workload.input_footprint_bits == 20 * 30 * 4
        assert workload.output_footprint_bits == 10 * 30 * 8

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            GemmWorkload(m=0, n=1, r=1, input_bits=4, weight_bits=4, output_bits=4)
        with pytest.raises(ValueError):
            GemmWorkload(m=1, n=1, r=1, input_bits=3, weight_bits=4, output_bits=4)


class TestTileCandidates:
    def test_includes_extent_and_powers_of_two(self):
        candidates = tile_candidates(100)
        assert 100 in candidates
        assert 64 in candidates
        assert candidates == sorted(candidates, reverse=True)

    def test_small_extent(self):
        assert tile_candidates(1) == [1]

    def test_rejects_non_positive_extent(self):
        with pytest.raises(ValueError):
            tile_candidates(0)


class TestPlanTiling:
    def test_small_gemm_fits_on_chip(self, default_config):
        workload = GemmWorkload(m=64, n=64, r=16, input_bits=8, weight_bits=8, output_bits=8)
        plan = plan_tiling(workload, default_config)
        assert plan.fits_on_chip
        assert plan.dram_weight_bits == workload.weight_footprint_bits
        assert plan.dram_input_bits == workload.input_footprint_bits
        assert plan.dram_output_write_bits == workload.output_footprint_bits
        assert plan.dram_output_read_bits == 0

    def test_tile_counts_cover_workload(self, default_config):
        workload = GemmWorkload(
            m=4096, n=9216, r=64, input_bits=4, weight_bits=1, output_bits=4
        )
        plan = plan_tiling(workload, default_config)
        assert plan.m_tiles * plan.tile_m >= workload.m
        assert plan.n_tiles * plan.tile_n >= workload.n
        assert plan.r_tiles * plan.tile_r >= workload.r
        assert plan.tile_count == plan.m_tiles * plan.n_tiles * plan.r_tiles

    def test_tiles_respect_buffer_capacities(self, default_config):
        workload = GemmWorkload(
            m=8192, n=8192, r=256, input_bits=8, weight_bits=8, output_bits=8
        )
        plan = plan_tiling(workload, default_config)
        assert plan.tile_m * plan.tile_n * 8 <= default_config.wbuf_kb * 1024 * 8
        assert plan.tile_n * plan.tile_r * 8 <= default_config.ibuf_kb * 1024 * 8
        assert plan.tile_m * plan.tile_r * 32 <= default_config.obuf_kb * 1024 * 8

    def test_weight_stationary_fetches_weights_once(self, default_config):
        workload = GemmWorkload(
            m=512, n=4608, r=16384, input_bits=2, weight_bits=2, output_bits=2
        )
        plan = plan_tiling(workload, default_config, LoopOrder.WEIGHT_STATIONARY)
        assert plan.dram_weight_bits == workload.weight_footprint_bits

    def test_input_stationary_fetches_inputs_once(self, default_config):
        workload = GemmWorkload(
            m=512, n=4608, r=16384, input_bits=2, weight_bits=2, output_bits=2
        )
        plan = plan_tiling(workload, default_config, LoopOrder.INPUT_STATIONARY)
        assert plan.dram_input_bits == workload.input_footprint_bits

    def test_output_stationary_never_spills_partials(self, default_config):
        workload = GemmWorkload(
            m=10000, n=1280, r=16, input_bits=4, weight_bits=4, output_bits=8
        )
        plan = plan_tiling(workload, default_config, LoopOrder.OUTPUT_STATIONARY)
        assert plan.dram_output_read_bits == 0
        assert plan.dram_output_write_bits == workload.output_footprint_bits

    def test_lower_weight_bitwidth_reduces_weight_traffic(self, default_config):
        high = GemmWorkload(m=1024, n=4096, r=256, input_bits=8, weight_bits=8, output_bits=8)
        low = GemmWorkload(m=1024, n=4096, r=256, input_bits=8, weight_bits=2, output_bits=8)
        plan_high = plan_tiling(high, default_config)
        plan_low = plan_tiling(low, default_config)
        assert plan_low.dram_weight_bits < plan_high.dram_weight_bits

    def test_with_output_store_bits_override(self, default_config):
        workload = GemmWorkload(m=16, n=16, r=16, input_bits=4, weight_bits=4, output_bits=4)
        plan = plan_tiling(workload, default_config)
        fused = plan.with_output_store_bits(128)
        assert fused.dram_output_write_bits == 128
        assert fused.dram_weight_bits == plan.dram_weight_bits
        with pytest.raises(ValueError):
            plan.with_output_store_bits(-1)

    def test_tile_r_bounded_by_sixteen_bit_loop_field(self, default_config):
        workload = GemmWorkload(
            m=1, n=1, r=10_000_000, input_bits=1, weight_bits=1, output_bits=1
        )
        plan = plan_tiling(workload, default_config)
        assert plan.tile_r <= (1 << 16) - 1

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=4096),
        n=st.integers(min_value=1, max_value=8192),
        r=st.integers(min_value=1, max_value=4096),
        bits=st.sampled_from((1, 2, 4, 8, 16)),
        order=st.sampled_from(list(LoopOrder)),
    )
    def test_traffic_at_least_compulsory_property(self, m, n, r, bits, order):
        """Property: DRAM traffic can never drop below one fetch of each tensor."""
        config = BitFusionConfig.eyeriss_matched()
        workload = GemmWorkload(m=m, n=n, r=r, input_bits=bits, weight_bits=bits, output_bits=bits)
        plan = plan_tiling(workload, config, order)
        assert plan.dram_weight_bits >= workload.weight_footprint_bits
        assert plan.dram_input_bits >= workload.input_footprint_bits
        assert plan.dram_output_write_bits >= workload.output_footprint_bits
