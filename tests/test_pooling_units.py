"""Tests for the per-column pooling and activation units (Figure 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pooling import ActivationUnit, PoolingUnit
from repro.dnn.functional import max_pool2d, relu


class TestPoolingUnit:
    def test_max_pooling_matches_reference(self, rng):
        unit = PoolingUnit(kernel=2)
        feature_map = rng.integers(-8, 8, size=(4, 6, 6))
        np.testing.assert_array_equal(unit.apply(feature_map), max_pool2d(feature_map, 2, 2))

    def test_average_pooling_mode(self):
        unit = PoolingUnit(kernel=2, mode="avg")
        feature_map = np.array([[[4, 8], [0, 4]]])
        assert unit.apply(feature_map)[0, 0, 0] == 4

    def test_explicit_stride(self, rng):
        unit = PoolingUnit(kernel=3, stride=3)
        feature_map = rng.integers(0, 4, size=(2, 9, 9))
        assert unit.apply(feature_map).shape == (2, 3, 3)
        assert unit.effective_stride == 3

    def test_comparisons_per_output(self):
        assert PoolingUnit(kernel=2).comparisons_per_output() == 3
        assert PoolingUnit(kernel=3).comparisons_per_output() == 8

    def test_output_elements(self):
        unit = PoolingUnit(kernel=2)
        assert unit.output_elements(channels=8, height=8, width=8) == 8 * 16

    def test_output_elements_validation(self):
        unit = PoolingUnit(kernel=4)
        with pytest.raises(ValueError):
            unit.output_elements(channels=1, height=2, width=2)
        with pytest.raises(ValueError):
            unit.output_elements(channels=0, height=8, width=8)

    def test_cycles_scale_with_work_and_columns(self):
        unit = PoolingUnit(kernel=2)
        narrow = unit.cycles_for(channels=64, height=32, width=32, columns=4)
        wide = unit.cycles_for(channels=64, height=32, width=32, columns=16)
        assert narrow == 4 * wide
        with pytest.raises(ValueError):
            unit.cycles_for(channels=64, height=32, width=32, columns=0)

    def test_fused_pooling_hides_under_compute(self):
        """The pooling units keep up with the array: far fewer cycles than the GEMM."""
        unit = PoolingUnit(kernel=2)
        pooling_cycles = unit.cycles_for(channels=128, height=32, width=32, columns=16)
        # The preceding 3x3x128->128 convolution at 2-bit takes ~hundreds of
        # thousands of cycles on the 32x16 array; pooling takes a few thousand.
        assert pooling_cycles < 50_000

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolingUnit(kernel=0)
        with pytest.raises(ValueError):
            PoolingUnit(kernel=2, stride=0)
        with pytest.raises(ValueError):
            PoolingUnit(kernel=2, mode="median")


class TestActivationUnit:
    def test_relu_matches_reference(self, rng):
        unit = ActivationUnit(function="relu", output_bits=16)
        values = rng.integers(-1000, 1000, size=50)
        np.testing.assert_array_equal(unit.apply(values), np.clip(relu(values), None, (1 << 15) - 1))

    def test_identity_function_only_requantizes(self):
        unit = ActivationUnit(function="identity", output_bits=4)
        np.testing.assert_array_equal(unit.apply(np.array([-100, -3, 3, 100])), [-8, -3, 3, 7])

    def test_requantization_saturates_to_output_bits(self):
        unit = ActivationUnit(function="relu", output_bits=2)
        out = unit.apply(np.array([-5, 0, 1, 99]))
        assert out.min() >= -2
        assert out.max() <= 1

    def test_scale_shift_applies_before_saturation(self):
        unit = ActivationUnit(function="identity", output_bits=8)
        np.testing.assert_array_equal(unit.apply(np.array([256, 512]), scale_shift=4), [16, 32])
        with pytest.raises(ValueError):
            unit.apply(np.array([1]), scale_shift=-1)

    def test_unsigned_requantization(self):
        unit = ActivationUnit(function="relu", output_bits=4, signed=False)
        out = unit.apply(np.array([-3, 20]))
        np.testing.assert_array_equal(out, [0, 15])

    def test_operations_count(self):
        unit = ActivationUnit()
        assert unit.operations_for(128) == 128
        with pytest.raises(ValueError):
            unit.operations_for(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationUnit(function="gelu")
        with pytest.raises(ValueError):
            ActivationUnit(output_bits=3)
