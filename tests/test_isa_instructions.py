"""Tests for the Fusion-ISA instruction dataclasses and field validation."""

from __future__ import annotations

import pytest

from repro.isa.instructions import (
    BlockEnd,
    Compute,
    ComputeFn,
    GenAddr,
    LdMem,
    Loop,
    Opcode,
    RdBuf,
    ScratchpadType,
    Setup,
    StMem,
    WrBuf,
)


class TestOpcodesAndMnemonics:
    def test_opcode_values_fit_five_bits(self):
        assert all(0 <= opcode < 32 for opcode in Opcode)

    def test_table1_instruction_set_is_complete(self):
        """Table I lists nine instruction kinds."""
        assert len(Opcode) == 9

    def test_mnemonics_use_hyphen_style(self):
        assert Setup(8, 8).mnemonic == "setup"
        assert BlockEnd().mnemonic == "block-end"
        assert LdMem(ScratchpadType.IBUF, 4).mnemonic == "ld-mem"
        assert StMem(ScratchpadType.OBUF, 4).mnemonic == "st-mem"
        assert RdBuf(ScratchpadType.WBUF).mnemonic == "rd-buf"
        assert WrBuf(ScratchpadType.OBUF).mnemonic == "wr-buf"
        assert GenAddr(ScratchpadType.IBUF, 0, 1).mnemonic == "gen-addr"
        assert Loop(0, 1).mnemonic == "loop"
        assert Compute().mnemonic == "compute"


class TestSetup:
    def test_valid_bitwidths(self):
        instruction = Setup(input_bits=4, weight_bits=1)
        assert instruction.opcode is Opcode.SETUP
        assert instruction.input_bits == 4

    @pytest.mark.parametrize("bits", [0, 3, 5, 32])
    def test_rejects_unsupported_bitwidths(self, bits):
        with pytest.raises(ValueError):
            Setup(input_bits=bits, weight_bits=8)
        with pytest.raises(ValueError):
            Setup(input_bits=8, weight_bits=bits)


class TestBlockEnd:
    def test_next_block_field(self):
        assert BlockEnd(next_block=100).next_block == 100

    def test_rejects_oversized_address(self):
        with pytest.raises(ValueError):
            BlockEnd(next_block=1 << 16)


class TestLoop:
    def test_fields(self):
        loop = Loop(loop_id=5, iterations=100, level=1)
        assert loop.opcode is Opcode.LOOP
        assert loop.iterations == 100

    def test_rejects_non_positive_iterations(self):
        with pytest.raises(ValueError):
            Loop(loop_id=0, iterations=0)

    def test_rejects_oversized_fields(self):
        with pytest.raises(ValueError):
            Loop(loop_id=64, iterations=1)
        with pytest.raises(ValueError):
            Loop(loop_id=0, iterations=1 << 16)
        with pytest.raises(ValueError):
            Loop(loop_id=0, iterations=1, level=4)


class TestGenAddr:
    def test_fields(self):
        instruction = GenAddr(scratchpad=ScratchpadType.WBUF, loop_id=3, stride=17)
        assert instruction.opcode is Opcode.GEN_ADDR
        assert instruction.scratchpad is ScratchpadType.WBUF

    def test_rejects_negative_stride(self):
        with pytest.raises(ValueError):
            GenAddr(ScratchpadType.IBUF, 0, -1)

    def test_rejects_oversized_stride(self):
        with pytest.raises(ValueError):
            GenAddr(ScratchpadType.IBUF, 0, 1 << 16)


class TestMemoryInstructions:
    @pytest.mark.parametrize("cls", [LdMem, StMem])
    def test_num_words_validation(self, cls):
        assert cls(ScratchpadType.OBUF, 1).num_words == 1
        with pytest.raises(ValueError):
            cls(ScratchpadType.OBUF, 0)
        with pytest.raises(ValueError):
            cls(ScratchpadType.OBUF, 1 << 16)

    def test_scratchpad_types(self):
        assert {ScratchpadType.IBUF, ScratchpadType.OBUF, ScratchpadType.WBUF} == set(
            ScratchpadType
        )


class TestCompute:
    def test_default_function_is_macc(self):
        assert Compute().fn is ComputeFn.MACC

    def test_supported_functions(self):
        assert {fn.value for fn in ComputeFn} == {"macc", "max", "add", "activation"}

    def test_instructions_are_hashable_and_frozen(self):
        instruction = Compute()
        with pytest.raises(AttributeError):
            instruction.fn = ComputeFn.MAX
        assert hash(Compute()) == hash(Compute())
