"""Backend-parity and chaos tests for the pluggable execution backends.

The guarantees under test:

* every backend — inline, process pool, remote TCP workers — produces
  byte-identical results (and identical per-stage cache statistics on
  partially-warm runs) for the same schedule,
* the wire codecs round-trip workloads, work units and work results
  bit-exactly (JSON float encoding is shortest-round-trip),
* a killed remote worker or a dropped connection mid-sweep costs at most
  one retried work unit — the survivors absorb the rest of the schedule —
  and with *no* surviving worker the session's retry path still completes
  the batch inline,
* two checkpoint writers sharing a cache directory never tear a JSONL
  line, and per-writer sibling journals merge on load, and
* the kernel-size NAS mutation operator is deterministic and preserves
  output spatial dimensions exactly.
"""

from __future__ import annotations

import json
import os
import random
import socket
import struct
import subprocess
import sys
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from faults import InjectedConnectionDrop, drop_connections
from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.dnn.layers import ConvLayer
from repro.dse import SweepSpec, run_sweep
from repro.nas.mutations import MUTATION_AXES, mutate, mutate_kernel
from repro.session import (
    EvaluationSession,
    InlineBackend,
    ProcessPoolBackend,
    Workload,
    execute_workload,
    make_backend,
)
from repro.session.cache import ResultCache, network_result_to_dict
from repro.session.checkpoint import SweepCheckpoint
from repro.session.engine import execute_work_unit, plan_workload
from repro.session.remote import (
    RemoteBackend,
    RemoteWorkerError,
    WorkerClient,
    WorkerServer,
    parse_worker_address,
    recv_message,
    send_message,
    work_result_from_dict,
    work_result_to_dict,
    work_unit_from_dict,
    work_unit_to_dict,
    workload_from_dict,
    workload_to_dict,
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")

_BATCH = [
    Workload.bitfusion("LeNet-5", batch_size=4),
    Workload.bitfusion("LSTM", batch_size=4),
    Workload.bitfusion("LeNet-5", batch_size=2),
    Workload.bitfusion("LSTM", batch_size=2),
]


def _dicts(results):
    return [network_result_to_dict(result) for result in results]


@contextmanager
def worker_servers(count=2, caches=None, fail_after=None):
    """``count`` in-thread worker daemons on ephemeral localhost ports."""
    servers = [
        WorkerServer(cache=None if caches is None else caches[index])
        for index in range(count)
    ]
    threads = [
        threading.Thread(target=server.serve_forever, daemon=True)
        for server in servers
    ]
    for thread in threads:
        thread.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=5)


@contextmanager
def remote_session(addresses, **session_kwargs):
    backend = RemoteBackend(addresses, timeout=30.0)
    session = EvaluationSession(backend=backend, **session_kwargs)
    try:
        yield session
    finally:
        session.close()


class TestWireCodecs:
    @pytest.mark.parametrize(
        "workload",
        [
            Workload.bitfusion("LeNet-5", batch_size=4),
            Workload.bitfusion(
                "AlexNet",
                batch_size=2,
                config=BitFusionConfig.eyeriss_matched(batch_size=2).with_frequency(
                    250.0
                ),
                enable_layer_fusion=False,
            ),
            Workload.eyeriss("LeNet-5"),
            Workload.stripes("LeNet-5"),
        ],
    )
    def test_workload_round_trips_fingerprint_exact(self, workload):
        over_the_wire = json.loads(json.dumps(workload_to_dict(workload)))
        rebuilt = workload_from_dict(over_the_wire)
        assert rebuilt.fingerprint() == workload.fingerprint()
        assert rebuilt == workload

    def test_work_unit_and_result_round_trip_byte_exact(self):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession() as session:
            plan = plan_workload(workload, session.cache, session.stats, set())
        unit = plan.work_unit()
        rebuilt = work_unit_from_dict(json.loads(json.dumps(work_unit_to_dict(unit))))
        assert rebuilt.simulate_indices == unit.simulate_indices
        assert rebuilt.workload == unit.workload
        reply = execute_work_unit(rebuilt)
        assert reply.error is None
        wire = json.loads(json.dumps(work_result_to_dict(reply)))
        assert work_result_to_dict(work_result_from_dict(wire)) == work_result_to_dict(
            reply
        )

    def test_framing_round_trips_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {"op": "run", "payload": [1.5, "x", {"nested": None}]}
            send_message(left, message)
            assert recv_message(right) == message
            left.close()
            assert recv_message(right) is None  # clean EOF
        finally:
            right.close()

    def test_oversized_length_prefix_is_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 1 << 30))
            with pytest.raises(RemoteWorkerError):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_worker_address(self):
        assert parse_worker_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        with pytest.raises(ValueError):
            parse_worker_address("no-port")
        with pytest.raises(ValueError):
            parse_worker_address("host:not-a-port")


class TestBackendFactory:
    def test_default_selection_follows_jobs(self):
        assert isinstance(make_backend(), InlineBackend)
        pool = make_backend(jobs=3)
        assert isinstance(pool, ProcessPoolBackend) and pool.jobs == 3
        pool.close()

    def test_explicit_pool_gets_real_parallelism(self):
        pool = make_backend("pool")
        assert pool.jobs == 2
        pool.close()

    def test_inline_rejects_jobs(self):
        with pytest.raises(ValueError):
            make_backend("inline", jobs=2)

    def test_remote_requires_workers(self):
        with pytest.raises(ValueError):
            make_backend("remote")
        with pytest.raises(ValueError):
            make_backend("bogus")
        backend = make_backend("remote", workers=["127.0.0.1:1"])
        assert isinstance(backend, RemoteBackend)
        backend.close()


class TestRemoteParity:
    def test_remote_run_many_matches_serial_byte_identical(self):
        serial = [execute_workload(workload) for workload in _BATCH]
        with worker_servers(count=2) as servers:
            addresses = [server.address for server in servers]
            with remote_session(addresses) as session:
                results = session.run_many(_BATCH)
            assert _dicts(results) == _dicts(serial)
            assert session.stats.workers.backend == "remote"
            assert session.stats.workers.units == len(_BATCH)
            # Every dispatched unit is attributed to a real worker address.
            per_worker = session.stats.workers.per_worker
            assert sum(per_worker.values()) == len(_BATCH)
            assert set(per_worker) <= set(addresses)
            assert "parallel workers [remote]" in session.stats.workers.summary()
            assert session.stats.workers.per_worker_summary().startswith(
                "per-worker units: "
            )

    def test_partially_warm_remote_matches_pool_statistics(self, tmp_path):
        seed = _BATCH[0]
        pool_dir, remote_dir = tmp_path / "pool", tmp_path / "remote"
        for directory in (pool_dir, remote_dir):
            with EvaluationSession(cache_dir=directory) as warmup:
                warmup.run(seed)

        with EvaluationSession(cache_dir=pool_dir, jobs=2) as pooled:
            pool_results = pooled.run_many(_BATCH)
        with worker_servers(count=2) as servers:
            with remote_session(
                [server.address for server in servers], cache_dir=remote_dir
            ) as remoted:
                remote_results = remoted.run_many(_BATCH)

        assert _dicts(remote_results) == _dicts(pool_results)
        # Identical per-stage cache statistics on the identically-warm runs:
        # the seeded workload composed from disk, everything else planned
        # and shipped exactly alike.
        for attribute in ("hits", "misses"):
            assert getattr(remoted.stats, attribute) == getattr(
                pooled.stats, attribute
            )
            for stage in ("programs", "blocks", "layers"):
                assert getattr(getattr(remoted.stats, stage), attribute) == getattr(
                    getattr(pooled.stats, stage), attribute
                )
        assert remoted.stats.workers.units == pooled.stats.workers.units
        assert (
            remoted.stats.workers.remote_blocks == pooled.stats.workers.remote_blocks
        )

    def test_remote_sweep_matches_inline_sweep_and_frontier(self):
        spec = SweepSpec.from_dict(
            {
                "name": "backend parity sweep",
                "networks": ["LeNet-5"],
                "batch_sizes": [4],
                "axes": {"technology": ["45nm", "16nm"], "bandwidth": [128, 256]},
            }
        )
        baseline = run_sweep(spec)
        with worker_servers(count=2) as servers:
            sharded = run_sweep(
                spec, backend=RemoteBackend([server.address for server in servers])
            )
        assert [point.as_row() for point in sharded] == [
            point.as_row() for point in baseline
        ]
        assert sharded.rows() == baseline.rows()
        assert sharded.pareto_rows() == baseline.pareto_rows()

    def test_worker_warms_its_own_shared_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        with worker_servers(count=1, caches=[cache]) as servers:
            with remote_session([servers[0].address]) as session:
                session.run(_BATCH[0])
        # The worker stored every simulated layer record; a fresh session
        # against that directory re-composes without simulating anything.
        with EvaluationSession(cache_dir=tmp_path) as warm:
            warm.run(_BATCH[0])
        assert warm.stats.blocks.misses == 0

    def test_ping_and_shutdown(self):
        with worker_servers(count=1) as servers:
            client = WorkerClient(servers[0].address, timeout=10.0)
            reply = client.ping()
            assert reply["op"] == "pong"
            client.shutdown()
            client.close()


class TestRemoteChaos:
    def test_connection_drop_redistributes_to_the_survivor(self):
        serial = [execute_workload(workload) for workload in _BATCH]
        with worker_servers(count=2) as servers:
            addresses = [server.address for server in servers]
            with remote_session(addresses) as session:
                with drop_connections([addresses[0]], times=1) as drops:
                    results = session.run_many(_BATCH)
            assert drops == {addresses[0]: 1}
            assert _dicts(results) == _dicts(serial)
            # The drop forfeited exactly the in-flight unit: one retry, no
            # quarantine, and only the survivor accumulated unit credit.
            assert session.stats.retries == 1
            assert set(session.stats.workers.per_worker) == {addresses[1]}

    def test_all_workers_dead_completes_through_the_retry_path(self):
        workloads = _BATCH[:2]
        serial = [execute_workload(workload) for workload in workloads]
        with worker_servers(count=1) as servers:
            with remote_session([servers[0].address]) as session:
                with drop_connections(times=999):
                    results = session.run_many(workloads)
        assert _dicts(results) == _dicts(serial)
        # The first drop killed the only client; its unit plus every unit
        # left unclaimed in the queue failed into the inline retry path.
        assert session.stats.retries == len(workloads)

    def test_injected_drop_is_a_connection_error(self):
        assert issubclass(InjectedConnectionDrop, ConnectionError)

    def test_killed_worker_process_costs_at_most_one_retry(self, tmp_path):
        """A real daemon SIGKILLed mid-unit: one retry, byte-identical output."""
        serial = [execute_workload(workload) for workload in _BATCH]
        procs, addresses = [], []
        try:
            # fail-after 0: the first worker dies the moment it receives its
            # first unit — deterministic regardless of how fast the healthy
            # worker drains the rest of the queue.
            for fail_after in (0, None):
                args = [
                    sys.executable,
                    "-m",
                    "repro.harness",
                    "worker",
                    "--bind",
                    "127.0.0.1:0",
                ]
                if fail_after is not None:
                    args += ["--fail-after", str(fail_after)]
                proc = subprocess.Popen(
                    args,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env={**os.environ, "PYTHONPATH": _SRC},
                )
                procs.append(proc)
                banner = proc.stdout.readline().strip()
                assert banner.startswith("worker listening on ")
                addresses.append(banner.rpartition(" ")[2])
            with remote_session(addresses, cache_dir=tmp_path) as session:
                results = session.run_many(_BATCH)
            assert _dicts(results) == _dicts(serial)
            # The --fail-after worker died holding its first unit: exactly
            # one workload took the retry path, none were quarantined, and
            # the healthy worker absorbed the rest of the schedule.
            assert session.stats.retries == 1
            assert set(session.stats.workers.per_worker) == {addresses[1]}
            assert procs[0].wait(timeout=30) == 1  # it really hard-exited
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=10)
                proc.stdout.close()


class TestCheckpointConcurrency:
    def test_writer_siblings_merge_on_load(self, tmp_path):
        path = tmp_path / "sweep-checkpoint.jsonl"
        alice = SweepCheckpoint(path, writer="alice")
        bob = SweepCheckpoint(path, writer="bob")
        alice.record_planned("fp-a", "workload a")
        alice.record_completed("fp-a")
        bob.record_planned("fp-b", "workload b")
        bob.record_quarantined("fp-b", "workload b", "boom")
        alice.close()
        bob.close()
        assert alice.write_path != bob.write_path != path
        assert not path.exists()

        merged = SweepCheckpoint(path)
        assert merged.completed == {"fp-a"}
        assert set(merged.planned) == {"fp-a", "fp-b"}
        assert [record.fingerprint for record in merged.quarantined] == ["fp-b"]

    def test_invalid_writer_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepCheckpoint(tmp_path / "sweep-checkpoint.jsonl", writer="a/b")

    def test_reset_unlinks_writer_siblings(self, tmp_path):
        path = tmp_path / "sweep-checkpoint.jsonl"
        sibling = SweepCheckpoint(path, writer="host1")
        sibling.record_planned("fp-x", "x")
        sibling.close()
        fresh = SweepCheckpoint(path)
        assert set(fresh.planned) == {"fp-x"}
        fresh.reset()
        assert not sibling.write_path.exists()
        assert SweepCheckpoint(path).planned == {}

    def test_concurrent_shared_journal_appends_never_tear_lines(self, tmp_path):
        path = tmp_path / "sweep-checkpoint.jsonl"
        writers, events_each = 4, 50

        def append(worker: int) -> None:
            journal = SweepCheckpoint(path)
            for index in range(events_each):
                journal.record_planned(
                    f"fp-{worker}-{index}", f"label-{worker}-{index}" * 8
                )
            journal.close()

        threads = [
            threading.Thread(target=append, args=(worker,))
            for worker in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")  # corruption would warn
            merged = SweepCheckpoint(path)
        assert merged.corrupt_lines == 0
        assert len(merged.planned) == writers * events_each


class TestKernelMutation:
    def test_kernel_mutation_preserves_output_dims(self):
        network = models.load("AlexNet")
        rng = random.Random(11)
        seen_changes = 0
        for _ in range(32):
            candidate = mutate_kernel(network, rng)
            if candidate is None:
                continue
            assert len(candidate) == len(network)
            for before, after in zip(network, candidate):
                if not isinstance(before, ConvLayer):
                    assert before == after
                    continue
                assert after.padding >= 0
                assert after.out_height == before.out_height
                assert after.out_width == before.out_width
                if after.kernel != before.kernel:
                    seen_changes += 1
                    assert after.kernel in (3, 5, 7)
                    assert after.padding - before.padding == (
                        after.kernel - before.kernel
                    ) // 2
        assert seen_changes > 0

    def test_kernel_mutation_is_deterministic(self):
        network = models.load("LeNet-5")
        first = mutate_kernel(network, random.Random(3))
        second = mutate_kernel(network, random.Random(3))
        assert first is not None and second is not None
        assert first.fingerprint() == second.fingerprint()

    def test_kernel_mutation_skips_conv_free_networks(self):
        network = models.load("LSTM")
        assert mutate_kernel(network, random.Random(0)) is None
        # mutate() with only the kernel axis then returns the input network.
        assert mutate(network, random.Random(0), axes=("kernel",)) is network

    def test_kernel_axis_is_registered(self):
        assert "kernel" in MUTATION_AXES
        candidate = mutate(
            models.load("AlexNet"), random.Random(1), axes=("kernel",)
        )
        assert "/nas-" in candidate.name
