"""Tests for the segmented pack-file artifact store and its cache wiring.

Covers the store format itself (record codec, torn-tail tolerance, index
sidecars, compaction), the :class:`~repro.session.cache.ResultCache`
integration (layout detection, group commits, ``get_many``/``prefetch``
source accounting, eviction durability), migration from the legacy
JSON-per-entry layout, cross-format byte-identity of whole session runs,
and the concurrent-writer model (per-process segments, readers merge at
open) — including a real multi-process stress test mirroring the
checkpoint journal's torn-line test.
"""

from __future__ import annotations

import json
import os
import struct
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.runner import cache_main, format_cache_info
from repro.session import (
    EvaluationSession,
    ResultCache,
    SegmentedStore,
    Workload,
    migrate_json_dir,
)
from repro.session.cache import ProgramStats, network_result_to_dict
from repro.session.store import encode_record, iter_records

_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _stats(tag: str) -> ProgramStats:
    return ProgramStats(
        network_name=f"net-{tag}",
        block_instruction_counts=(10, 20, 30),
        total_instructions=60,
        binary_bytes=240,
    )


def _entry(tag: str) -> dict:
    return {"kind": "program_stats", "workload": {"network": tag}, "payload": {"tag": tag}}


class TestRecordCodec:
    def test_round_trip_through_raw_bytes(self):
        blob = encode_record("k1", _entry("a")) + encode_record("k2", _entry("b"))
        records = list(iter_records(blob))
        assert [r["key"] for _, _, r in records] == ["k1", "k2"]
        assert records[0][2]["payload"] == {"tag": "a"}
        # Offsets/lengths address exactly the JSON body within the blob.
        offset, length, record = records[1]
        assert json.loads(blob[offset : offset + length].decode("utf-8")) == record

    def test_torn_tail_is_dropped_not_fatal(self):
        blob = encode_record("whole", _entry("w")) + encode_record("torn", _entry("t"))
        truncated = blob[:-7]  # writer killed mid-append
        records = list(iter_records(truncated))
        assert [r["key"] for _, _, r in records] == ["whole"]

    def test_garbage_length_prefix_stops_the_scan(self):
        blob = encode_record("whole", _entry("w")) + struct.pack(">I", 2**31) + b"xx"
        assert [r["key"] for _, _, r in iter_records(blob)] == ["whole"]


class TestSegmentedStore:
    def test_append_and_reload_through_sidecar(self, tmp_path):
        writer = SegmentedStore(tmp_path)
        sizes = writer.append([("k1", _entry("a")), ("k2", _entry("b"))])
        assert sizes and set(sizes) == {"k1", "k2"}
        writer.flush()
        reader = SegmentedStore(tmp_path)
        assert set(reader.keys()) == {"k1", "k2"}
        assert reader.get_record("k1")["payload"] == {"tag": "a"}
        assert reader.kind("k2") == "program_stats"

    def test_stale_sidecar_triggers_rescan(self, tmp_path):
        writer = SegmentedStore(tmp_path)
        writer.append([("k1", _entry("a"))])
        writer.flush()
        # Grow the segment after the sidecar flush: the sidecar's recorded
        # size no longer matches, so a reader must rescan, not trust it.
        writer.append([("k2", _entry("b"))])
        reader = SegmentedStore(tmp_path)
        assert set(reader.keys()) == {"k1", "k2"}

    def test_missing_sidecar_triggers_rescan_and_repair(self, tmp_path):
        writer = SegmentedStore(tmp_path)
        writer.append([("k1", _entry("a"))])
        writer.flush()
        for sidecar in tmp_path.glob("*.idx"):
            sidecar.unlink()
        reader = SegmentedStore(tmp_path)
        assert reader.get_record("k1") is not None
        # The rescan rewrote the sidecar so the next open skips the scan.
        assert list(tmp_path.glob("*.idx"))

    def test_two_writers_merge_at_open(self, tmp_path):
        a = SegmentedStore(tmp_path)
        b = SegmentedStore(tmp_path)
        a.append([("ka", _entry("a"))])
        b.append([("kb", _entry("b"))])
        a.flush()
        b.flush()
        # Each writer owns its own segment; neither saw the other's key,
        # but a fresh reader merges both.
        assert "kb" not in a and "ka" not in b
        reader = SegmentedStore(tmp_path)
        assert set(reader.keys()) == {"ka", "kb"}
        assert reader.segment_count == 2

    def test_compaction_rewrites_live_records_and_deletes_the_segment(self, tmp_path):
        writer = SegmentedStore(tmp_path)
        writer.append([(f"k{i}", _entry(str(i))) for i in range(4)])
        writer.flush()
        writer.close()
        evictor = SegmentedStore(tmp_path)
        for key in ("k0", "k1", "k2"):
            evictor.discard(key)
        assert evictor.compact() > 0  # dead >= live: the default threshold
        evictor.flush()
        assert evictor.get_record("k3")["payload"] == {"tag": "3"}
        reader = SegmentedStore(tmp_path)
        assert set(reader.keys()) == {"k3"}

    def test_compaction_skips_segments_grown_by_live_writers(self, tmp_path):
        writer = SegmentedStore(tmp_path)
        writer.append([("k0", _entry("0")), ("k1", _entry("1"))])
        writer.flush()
        evictor = SegmentedStore(tmp_path)
        evictor.discard("k0")
        # The original writer appends after the evictor scanned: its
        # segment grew, so even an aggressive compaction must leave it be.
        writer.append([("k2", _entry("2"))])
        assert evictor.compact(aggressive=True) == 0
        reader = SegmentedStore(tmp_path)
        assert set(reader.keys()) == {"k0", "k1", "k2"}


class TestCacheLayouts:
    def test_fresh_directory_defaults_to_pack(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("alpha", _stats("a"))
        cache.flush()
        assert cache.layout == "pack"
        entry_files = {p.name for p in tmp_path.glob("*.json")}
        assert entry_files == {"manifest.json"}  # no per-entry files
        assert list(tmp_path.glob("pack-*.seg"))

    def test_json_directory_is_detected_and_served_unchanged(self, tmp_path):
        writer = ResultCache(tmp_path, layout="json")
        writer.put("alpha", _stats("a"))
        writer.flush()
        reader = ResultCache(tmp_path)
        assert reader.layout == "json"
        assert reader.get("alpha") == _stats("a")

    def test_env_override_forces_layout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_LAYOUT", "json")
        cache = ResultCache(tmp_path)
        assert cache.layout == "json"
        cache.put("alpha", _stats("a"))
        cache.flush()
        assert (tmp_path / "alpha.json").exists()

    def test_unknown_layout_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, layout="sqlite")

    def test_pack_cache_reads_stray_json_entries(self, tmp_path):
        # Mixed directory (mid-migration, or a json-layout writer sharing
        # the dir): the pack cache serves legacy entries as a fallback.
        legacy = ResultCache(tmp_path, layout="json")
        legacy.put("old", _stats("o"))
        legacy.flush()
        mixed = ResultCache(tmp_path, layout="pack")
        mixed.put("new", _stats("n"))
        assert mixed.get("old") == _stats("o")
        assert mixed.get("new") == _stats("n")
        assert "old" in mixed and "new" in mixed

    def test_put_without_flush_is_visible_to_a_fresh_reader(self, tmp_path):
        # Durability parity with the json layout: a put is on disk before
        # any flush (the segment append is immediate; only the advisory
        # sidecar/manifest bookkeeping batches).
        writer = ResultCache(tmp_path)
        writer.put("alpha", _stats("a"))
        reader = ResultCache(tmp_path)
        assert reader.get("alpha") == _stats("a")

    def test_batched_puts_land_as_one_group_commit(self, tmp_path):
        cache = ResultCache(tmp_path)
        with cache.batch():
            for index in range(8):
                cache.put(f"key{index}", _stats(str(index)))
            # Queued but already visible through the owning cache...
            assert cache.get("key0") == _stats("0")
        cache.flush()
        # ...and on disk in a single segment once the scope closes.
        store = SegmentedStore(tmp_path)
        assert store.segment_count == 1
        assert len(store) == 8

    def test_get_many_and_prefetch_report_disk_sources_exactly_once(self, tmp_path):
        writer = ResultCache(tmp_path)
        writer.put("k1", _stats("1"))
        writer.put("k2", _stats("2"))
        writer.flush()
        reader = ResultCache(tmp_path)
        missing = reader.prefetch(["k1", "k2", "ghost"])
        assert missing == {"ghost"}
        # First access of a prefetched key still counts as a disk hit —
        # byte-identical statistics with the one-file-per-entry oracle.
        value, source = reader.get_with_source("k1")
        assert value == _stats("1") and source == "disk"
        value, source = reader.get_with_source("k1")
        assert source == "memory"
        assert reader.get_many(["k2", "ghost"]) == {"k2": _stats("2")}

    def test_pack_eviction_is_durable_for_fresh_readers(self, tmp_path):
        writer = ResultCache(tmp_path)
        for index in range(3):
            writer.put(f"key{index}", _stats(str(index)))
        writer.flush()
        writer.close()
        manifest = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        total = sum(entry["bytes"] for entry in manifest["entries"].values())
        evictor = ResultCache(tmp_path, max_bytes=total)
        evictor.put("key3", _stats("3"))  # over budget: key0 evicted
        # Without any flush from the evictor, a brand-new reader must not
        # resurrect the evicted record from the old segment.
        reader = ResultCache(tmp_path)
        assert reader.get("key0") is None
        assert reader.get("key3") == _stats("3")

    def test_corrupt_record_kind_is_a_miss_not_a_crash(self, tmp_path):
        store = SegmentedStore(tmp_path)
        store.append([("weird", {"kind": "no_such_kind", "payload": {}})])
        store.flush()
        cache = ResultCache(tmp_path)
        assert cache.get("weird") is None


class TestManifestRebuildScaling:
    def test_json_rebuild_reads_kind_from_a_bounded_prefix(self, tmp_path):
        # A valid prefix followed by a huge garbage tail: the old rebuild
        # (full read + json.loads) classified this entry "unknown"; the
        # bounded-prefix read recovers the kind without touching the tail.
        cache = ResultCache(tmp_path, layout="json")
        cache.put("normal", _stats("n"))
        cache.flush()
        big = (tmp_path / "hand-written.json")
        big.write_text(
            '{"kind": "program_stats", "payload": ' + "9" * (4 << 20) + "}",
            encoding="utf-8",
        )
        (tmp_path / "manifest.json").unlink()
        rebuilt = ResultCache(tmp_path, layout="json")
        summary = rebuilt.entry_summary()
        assert summary["program_stats"]["entries"] == 2
        assert "unknown" not in summary

    def test_rebuild_time_does_not_scale_with_payload_bytes(self, tmp_path):
        import time

        small_dir, big_dir = tmp_path / "small", tmp_path / "big"
        for directory, payload_digits in ((small_dir, 10), (big_dir, 8 << 20)):
            directory.mkdir()
            for index in range(8):
                (directory / f"entry{index}.json").write_text(
                    '{"kind": "program_stats", "payload": '
                    + "7" * payload_digits
                    + "}",
                    encoding="utf-8",
                )

        def rebuild_seconds(directory: Path) -> float:
            started = time.perf_counter()
            ResultCache(directory, layout="json")
            return time.perf_counter() - started

        small = rebuild_seconds(small_dir)
        big = rebuild_seconds(big_dir)
        # ~64 MiB of payloads vs ~100 bytes: a full-read rebuild is tens of
        # times slower; a bounded-prefix rebuild is within noise.  The 25x
        # margin keeps the test robust on slow CI filesystems while still
        # failing hard if whole payloads are ever read again.
        assert big < small * 25 + 0.05

    def test_pack_rebuild_uses_the_store_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("alpha", _stats("a"))
        cache.flush()
        cache.close()
        (tmp_path / "manifest.json").write_text("garbage", encoding="utf-8")
        rebuilt = ResultCache(tmp_path)
        assert rebuilt.entry_summary()["program_stats"]["entries"] == 1
        assert rebuilt.get("alpha") == _stats("a")


class TestEvictionOrderRegression:
    def test_running_total_preserves_lru_eviction_order(self, tmp_path):
        # The budget check keeps a running byte total instead of re-summing
        # the manifest per put; the observable eviction order (strictly
        # least-recently-used first, the just-written entry protected) must
        # be unchanged — in both layouts.
        for layout in ("json", "pack"):
            directory = tmp_path / layout
            writer = ResultCache(directory, layout=layout)
            for index in range(4):
                writer.put(f"key{index}", _stats(str(index)))
            writer.flush()
            writer.close()
            manifest = json.loads(
                (directory / "manifest.json").read_text(encoding="utf-8")
            )
            entry_bytes = manifest["entries"]["key0"]["bytes"]

            cache = ResultCache(directory, layout=layout, max_bytes=4 * entry_bytes)
            assert cache.get("key1") is not None  # touch: key1 hottest
            evicted: list[str] = []
            survivors = {f"key{i}" for i in range(4)}
            # Same key/tag widths as the seeds, so every entry is the same
            # size and each over-budget put evicts exactly one victim.
            for extra in range(4, 7):
                cache.put(f"key{extra}", _stats(str(extra)))
                survivors.add(f"key{extra}")
                remaining = cache.disk_keys()
                evicted.extend(sorted(survivors - remaining))
                survivors = remaining
            # Exactly one eviction per over-budget put, in LRU order:
            # untouched key0/key2/key3 go first (write order), the touched
            # key1 and every newer entry survive.
            assert evicted == ["key0", "key2", "key3"]
            assert "key1" in survivors

    def test_overwrites_do_not_inflate_the_running_total(self, tmp_path):
        cache = ResultCache(tmp_path)
        for _ in range(5):
            cache.put("same", _stats("s"))
        manifest_total = sum(
            int(entry.get("bytes", 0)) for entry in cache._manifest.values()
        )
        assert cache._live_bytes == manifest_total


class TestMigration:
    def _seed_json(self, directory: Path, count: int = 6) -> None:
        writer = ResultCache(directory, layout="json")
        for index in range(count):
            writer.put(f"key{index}", _stats(str(index)))
        writer.flush()

    def test_migrate_converts_in_place_and_preserves_entries(self, tmp_path):
        self._seed_json(tmp_path)
        entries, size = migrate_json_dir(tmp_path)
        assert entries == 6 and size > 0
        assert not [
            p for p in tmp_path.glob("*.json") if p.name != "manifest.json"
        ]
        reader = ResultCache(tmp_path)
        assert reader.layout == "pack"
        for index in range(6):
            assert reader.get(f"key{index}") == _stats(str(index))

    def test_migrate_preserves_manifest_recency_and_refs(self, tmp_path):
        self._seed_json(tmp_path)
        reader = ResultCache(tmp_path)
        assert reader.get("key2") is not None  # bump refs + recency
        reader.flush()
        before = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        migrate_json_dir(tmp_path)
        after = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert set(after["entries"]) == set(before["entries"])
        for key, entry in before["entries"].items():
            assert after["entries"][key]["seq"] == entry["seq"]
            assert after["entries"][key]["refs"] == entry.get("refs", 0)

    def test_migrate_is_idempotent(self, tmp_path):
        self._seed_json(tmp_path)
        assert migrate_json_dir(tmp_path)[0] == 6
        assert migrate_json_dir(tmp_path)[0] == 0

    def test_migrate_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(ValueError):
            migrate_json_dir(tmp_path / "nope")

    def test_cache_migrate_cli(self, tmp_path, capsys):
        self._seed_json(tmp_path)
        assert cache_main(["migrate", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated 6 entries" in out
        assert "format: segmented pack" in out
        assert cache_main(["migrate", "--cache-dir", str(tmp_path)]) == 0
        assert "nothing to migrate" in capsys.readouterr().out

    def test_cache_info_reports_the_format_line(self, tmp_path):
        self._seed_json(tmp_path / "json")
        info = format_cache_info(str(tmp_path / "json"))
        assert "format: json files" in info
        pack = ResultCache(tmp_path / "pack")
        pack.put("alpha", _stats("a"))
        pack.flush()
        info = format_cache_info(str(tmp_path / "pack"))
        assert "format: segmented pack (1 segment)" in info


class TestCrossFormatByteIdentity:
    def test_warm_runs_match_across_layouts_and_migration(self, tmp_path):
        # The same workload evaluated against a json-layout cache, a
        # pack-layout cache, a pack cache reading the json dir as fallback,
        # and a migrated dir must produce byte-identical results with
        # byte-identical hit accounting.
        workload = Workload.bitfusion("LeNet-5", batch_size=2)
        json_dir = tmp_path / "json"
        pack_dir = tmp_path / "pack"
        with EvaluationSession(cache=ResultCache(json_dir, layout="json")) as seed:
            json_cold = seed.run(workload)
        with EvaluationSession(cache=ResultCache(pack_dir, layout="pack")) as seed:
            pack_cold = seed.run(workload)
        assert network_result_to_dict(json_cold) == network_result_to_dict(pack_cold)

        def warm_run(cache: ResultCache):
            with EvaluationSession(cache=cache) as warm:
                result = warm.run(workload)
                stats = (
                    warm.stats.programs.hits,
                    warm.stats.programs.disk_hits,
                    warm.stats.programs.misses,
                    warm.stats.blocks.hits,
                    warm.stats.blocks.disk_hits,
                    warm.stats.blocks.misses,
                    warm.stats.disk_hits,
                    warm.stats.unique_executions,
                )
            return network_result_to_dict(result), stats

        json_warm = warm_run(ResultCache(json_dir, layout="json"))
        pack_warm = warm_run(ResultCache(pack_dir, layout="pack"))
        fallback_warm = warm_run(ResultCache(json_dir, layout="pack"))
        assert json_warm == pack_warm == fallback_warm
        migrate_json_dir(json_dir)
        migrated_warm = warm_run(ResultCache(json_dir))
        assert migrated_warm == json_warm

    def test_layer_fallback_works_when_pack_block_entries_are_discarded(self, tmp_path):
        # Pack-store twin of the json deleted-entries test: drop every
        # block-keyed record; the content-addressed layer level serves the
        # rerun with zero re-simulation, byte-identical.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache=ResultCache(tmp_path, layout="pack")) as first:
            fresh = first.run(workload)
        store = SegmentedStore(tmp_path)
        dropped = 0
        for key in list(store.keys()):
            if store.kind(key) == "layer_result":
                store.discard(key)
                dropped += 1
        assert dropped > 0
        store.compact(aggressive=True)
        store.flush()
        store.close()
        (tmp_path / "manifest.json").unlink()  # force rebuild from the store
        with EvaluationSession(cache=ResultCache(tmp_path, layout="pack")) as second:
            restored = second.run(workload)
        assert second.stats.unique_executions == 0
        assert second.stats.blocks.hits == 0
        assert second.stats.blocks.misses == 0
        assert second.stats.layers.hits == dropped
        assert network_result_to_dict(restored) == network_result_to_dict(fresh)


_WRITER_SCRIPT = """
import sys
from repro.session import ResultCache
from repro.session.cache import ProgramStats

directory, prefix, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
cache = ResultCache(directory, layout="pack")
with cache.batch():
    for index in range(count):
        cache.put(
            f"{prefix}-{index}",
            ProgramStats(
                network_name=f"{prefix}-{index}",
                block_instruction_counts=(index,),
                total_instructions=index,
                binary_bytes=index,
            ),
        )
cache.flush()
print("done")
"""


class TestConcurrentWriters:
    def test_two_processes_append_concurrently_without_torn_records(self, tmp_path):
        # Mirrors the checkpoint journal's concurrency test: two writer
        # processes group-commit into a shared store simultaneously; a
        # fresh reader sees the exact union, every record intact.
        count = 200
        env = {**os.environ, "PYTHONPATH": _SRC}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), prefix, str(count)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for prefix in ("alpha", "beta")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out
        reader = ResultCache(tmp_path)
        expected = {f"{p}-{i}" for p in ("alpha", "beta") for i in range(count)}
        assert reader.disk_keys() == expected
        # Every single record must decode intact — a torn interleaved write
        # would surface here as a None or a mismatched payload.
        values = reader.get_many(sorted(expected))
        assert set(values) == expected
        for key, value in values.items():
            assert value.network_name == key
        store = SegmentedStore(tmp_path)
        assert len(store) == 2 * count
        assert store.segment_count == 2  # one segment per writer process
