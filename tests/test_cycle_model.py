"""Tests for the systolic-array compute-cycle model."""

from __future__ import annotations

import pytest

from repro.isa.tiling import GemmWorkload, plan_tiling
from repro.sim.cycle_model import GemmCycleModel


@pytest.fixture
def model(default_config) -> GemmCycleModel:
    return GemmCycleModel(default_config)


def _estimate(model, config, m, n, r, input_bits, weight_bits):
    workload = GemmWorkload(
        m=m, n=n, r=r, input_bits=input_bits, weight_bits=weight_bits, output_bits=input_bits
    )
    return model.estimate(plan_tiling(workload, config))


class TestCycleEstimates:
    def test_cycles_never_beat_the_ideal(self, model, default_config):
        for bits in (2, 4, 8):
            estimate = _estimate(model, default_config, 512, 1024, 64, bits, bits)
            assert estimate.total_cycles >= estimate.ideal_cycles

    def test_utilization_bounded_by_one(self, model, default_config):
        estimate = _estimate(model, default_config, 512, 4096, 256, 2, 2)
        assert 0.0 < estimate.utilization <= 1.0

    def test_large_gemm_achieves_high_utilization(self, model, default_config):
        estimate = _estimate(model, default_config, 4096, 8192, 64, 8, 8)
        assert estimate.utilization > 0.8

    def test_tiny_gemm_has_poor_utilization(self, model, default_config):
        """LeNet-5's 6-output-channel layers cannot fill 16 columns."""
        estimate = _estimate(model, default_config, 6, 25, 784, 2, 2)
        assert estimate.utilization < 0.2

    def test_lower_bitwidth_reduces_cycles_quadratically(self, model, default_config):
        eight_bit = _estimate(model, default_config, 512, 4096, 256, 8, 8)
        four_bit = _estimate(model, default_config, 512, 4096, 256, 4, 4)
        two_bit = _estimate(model, default_config, 512, 4096, 256, 2, 2)
        assert four_bit.compute_cycles <= eight_bit.compute_cycles / 3
        assert two_bit.compute_cycles <= four_bit.compute_cycles / 3

    def test_sixteen_bit_costs_four_passes(self, model, default_config):
        eight_bit = _estimate(model, default_config, 256, 2048, 64, 8, 8)
        sixteen_bit = _estimate(model, default_config, 256, 2048, 64, 16, 16)
        ratio = sixteen_bit.compute_cycles / eight_bit.compute_cycles
        assert 3.0 <= ratio <= 5.0

    def test_mixed_bitwidth_halves_cycles(self, model, default_config):
        symmetric = _estimate(model, default_config, 256, 2048, 64, 4, 4)
        mixed = _estimate(model, default_config, 256, 2048, 64, 4, 2)
        assert mixed.compute_cycles < symmetric.compute_cycles

    def test_fill_drain_scales_with_output_tiles(self, model, default_config):
        small = _estimate(model, default_config, 16, 128, 8, 8, 8)
        large = _estimate(model, default_config, 4096, 128, 2048, 8, 8)
        assert large.fill_drain_cycles > small.fill_drain_cycles

    def test_fusion_config_lookup(self, model):
        assert model.fusion_config(2, 2).fused_pes == 16

    def test_buffer_access_rates_follow_geometry(self, model, default_config):
        rates = model.buffer_accesses_per_compute_cycle(model.fusion_config(4, 4))
        assert rates["ibuf_reads"] == default_config.rows
        assert rates["wbuf_reads"] == default_config.fusion_units
        assert rates["obuf_writes"] == default_config.columns
