"""Tests for the unified evaluation session (workloads, cache, parallelism).

The acceptance properties the session layer guarantees:

* a cached result is bit-identical to a freshly simulated one (including
  after an on-disk JSON round trip),
* workload fingerprints are stable across processes and change whenever
  anything that affects the simulation changes (compiler flags included),
* ``run_many`` returns results in input order, identical to serial
  execution, with or without a process pool, and
* a full report run simulates each unique workload exactly once.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import BitFusionConfig
from repro.dnn import models
from repro.harness.runner import build_report, run_experiments
from repro.session import (
    EvaluationSession,
    ResultCache,
    Workload,
    block_cache_key,
    compile_program,
    execute_workload,
    fixed_bitwidth_network,
    layer_cache_key,
    load_network,
)
from repro.session.cache import network_result_from_dict, network_result_to_dict

_SRC = str(Path(__file__).resolve().parents[1] / "src")
_FAST = ("LeNet-5", "LSTM")


class TestFingerprints:
    def test_config_fingerprint_is_deterministic(self):
        a = BitFusionConfig.eyeriss_matched()
        b = BitFusionConfig.eyeriss_matched()
        assert a.fingerprint() == b.fingerprint()

    def test_config_fingerprint_changes_with_any_field(self):
        base = BitFusionConfig.eyeriss_matched()
        assert base.fingerprint() != base.with_bandwidth(256).fingerprint()
        assert base.fingerprint() != base.with_batch_size(1).fingerprint()

    def test_network_fingerprint_is_deterministic(self):
        assert models.load("LeNet-5").fingerprint() == models.load("LeNet-5").fingerprint()

    def test_network_fingerprint_sees_structure_changes(self):
        network = models.load("LeNet-5")
        assert network.fingerprint() != fixed_bitwidth_network(network, 8).fingerprint()

    def test_workload_fingerprint_stable_across_processes(self):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        code = (
            "from repro.session import Workload; "
            "print(Workload.bitfusion('LeNet-5', batch_size=4).fingerprint())"
        )
        env = {**os.environ, "PYTHONPATH": _SRC, "PYTHONHASHSEED": "random"}
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert outputs == {workload.fingerprint()}

    def test_compiler_flags_are_part_of_the_fingerprint(self):
        base = Workload.bitfusion("LeNet-5")
        assert (
            base.fingerprint()
            != Workload.bitfusion("LeNet-5", enable_loop_ordering=False).fingerprint()
        )
        assert (
            base.fingerprint()
            != Workload.bitfusion("LeNet-5", enable_layer_fusion=False).fingerprint()
        )
        assert base.fingerprint() != Workload.bitfusion("LeNet-5", fixed_bits=8).fingerprint()

    def test_variant_and_platform_distinguish_workloads(self):
        fingerprints = {
            Workload.bitfusion("AlexNet").fingerprint(),
            Workload.eyeriss("AlexNet").fingerprint(),
            Workload.stripes("AlexNet").fingerprint(),
            Workload.temporal("AlexNet").fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_unknown_platform_and_benchmark_rejected(self):
        with pytest.raises(ValueError):
            Workload(platform="tpu", network="LeNet-5")
        with pytest.raises(ValueError):
            Workload(platform="bitfusion", network="NoSuchNet")

    def test_gpu_workload_requires_a_device_spec(self):
        with pytest.raises(ValueError, match="device spec"):
            Workload(platform="gpu", network="LeNet-5", gpu_precision="fp32")

    def test_benchmark_aliases_canonicalize_to_one_fingerprint(self):
        canonical = Workload.bitfusion("AlexNet")
        alias = Workload.bitfusion("alexnet")
        assert alias.network == "AlexNet"
        assert alias.fingerprint() == canonical.fingerprint()

    def test_bare_and_named_constructors_share_one_fingerprint(self):
        bare = Workload(platform="bitfusion", network="LeNet-5", batch_size=4)
        named = Workload.bitfusion("LeNet-5", batch_size=4)
        assert bare.fingerprint() == named.fingerprint()
        assert bare.config == named.config

    def test_temporal_workload_rejects_a_config(self):
        with pytest.raises(ValueError, match="temporal"):
            Workload(
                platform="temporal",
                network="LeNet-5",
                config=BitFusionConfig.eyeriss_matched(),
            )


class TestResultCache:
    def test_cached_result_is_bit_identical_to_fresh(self):
        session = EvaluationSession()
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        cached = session.run(workload)
        fresh = execute_workload(workload)
        assert network_result_to_dict(cached) == network_result_to_dict(fresh)

    def test_disk_round_trip_is_bit_identical(self, tmp_path):
        workload = Workload.bitfusion("LSTM", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as first:
            fresh = first.run(workload)
        with EvaluationSession(cache_dir=tmp_path) as second:
            restored = second.run(workload)
        assert second.stats.disk_hits == 1
        assert second.stats.unique_executions == 0
        assert network_result_to_dict(restored) == network_result_to_dict(fresh)
        assert restored.latency_per_inference_s == fresh.latency_per_inference_s
        assert restored.energy.total == fresh.energy.total

    def test_serialization_round_trip_preserves_every_field(self):
        result = execute_workload(Workload.eyeriss("LeNet-5", batch_size=2))
        payload = network_result_to_dict(result)
        assert network_result_to_dict(network_result_from_dict(payload)) == payload

    def test_cache_rejects_unknown_payloads(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(TypeError):
            cache.put("key", object())

    def test_corrupted_block_artifact_is_a_miss_and_gets_rewritten(self, tmp_path):
        # Json layout throughout: the corruption is injected per entry file
        # (pack-record torn tails are covered in test_pack_store.py).
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache=ResultCache(tmp_path, layout="json")) as first:
            fresh = first.run(workload)
        program = compile_program(workload)
        # Corrupt both cache levels of block 0 (block-keyed and
        # content-addressed layer entry) so nothing can serve it back.
        for key in (
            block_cache_key(program[0].fingerprint(), workload.config),
            layer_cache_key(program[0], workload.config),
        ):
            (tmp_path / f"{key}.json").write_text("not json", encoding="utf-8")
        with EvaluationSession(cache_dir=tmp_path) as second:
            recovered = second.run(workload)
        assert second.stats.misses == 1
        assert second.stats.unique_executions == 1
        # Only the corrupted block was re-simulated; the compiled program and
        # every other block result came straight from disk.
        assert second.stats.programs.misses == 0
        assert second.stats.blocks.misses == 1
        assert second.stats.blocks.hits == len(program) - 1
        assert network_result_to_dict(recovered) == network_result_to_dict(fresh)
        # The fresh simulation repaired the on-disk entry.
        with EvaluationSession(cache_dir=tmp_path) as third:
            third.run(workload)
            assert third.stats.disk_hits == 1
            assert third.stats.unique_executions == 0

    def test_corrupted_block_entry_is_served_by_the_layer_level(self, tmp_path):
        # When only the block-keyed entry is corrupt, the content-addressed
        # layer entry steps in: no re-simulation, byte-identical result.
        # Json layout: the corruption is injected per entry file.
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache=ResultCache(tmp_path, layout="json")) as first:
            fresh = first.run(workload)
        program = compile_program(workload)
        corrupted = block_cache_key(program[0].fingerprint(), workload.config)
        (tmp_path / f"{corrupted}.json").write_text("not json", encoding="utf-8")
        with EvaluationSession(cache_dir=tmp_path) as second:
            recovered = second.run(workload)
        assert second.stats.unique_executions == 0
        assert second.stats.blocks.misses == 0
        assert second.stats.layers.hits == 1
        assert second.stats.blocks.hits == len(program) - 1
        assert network_result_to_dict(recovered) == network_result_to_dict(fresh)

    def test_corrupted_manifest_is_rebuilt_not_fatal(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        with EvaluationSession(cache_dir=tmp_path) as first:
            fresh = first.run(workload)
        (tmp_path / "manifest.json").write_text("garbage", encoding="utf-8")
        with EvaluationSession(cache_dir=tmp_path) as second:
            restored = second.run(workload)
        assert second.stats.unique_executions == 0
        assert network_result_to_dict(restored) == network_result_to_dict(fresh)

    def test_program_stats_disk_round_trip(self, tmp_path):
        workload = Workload.bitfusion("LeNet-5")
        with EvaluationSession(cache_dir=tmp_path) as first:
            fresh = first.compile_stats(workload)
        with EvaluationSession(cache_dir=tmp_path) as second:
            restored = second.compile_stats(workload)
        assert restored == fresh
        assert second.stats.disk_hits == 1


class TestEvaluationSession:
    def test_second_run_is_a_hit_not_a_simulation(self):
        session = EvaluationSession()
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        first = session.run(workload)
        second = session.run(workload)
        assert first is second
        assert session.stats.hits == 1
        assert session.stats.misses == 1
        assert session.stats.unique_executions == 1

    def test_run_many_matches_serial_order(self):
        workloads = [Workload.bitfusion(name, batch_size=4) for name in _FAST]
        workloads += [Workload.eyeriss(name, batch_size=4) for name in _FAST]
        batch = EvaluationSession().run_many(workloads)
        serial = [execute_workload(w) for w in workloads]
        assert [network_result_to_dict(r) for r in batch] == [
            network_result_to_dict(r) for r in serial
        ]

    def test_parallel_run_many_is_byte_identical_to_serial(self):
        workloads = [Workload.bitfusion(name, batch_size=4) for name in _FAST]
        workloads += [Workload.stripes(name, batch_size=4) for name in _FAST]
        with EvaluationSession(jobs=2) as parallel:
            parallel_results = parallel.run_many(workloads)
        serial_results = EvaluationSession().run_many(workloads)
        assert [network_result_to_dict(r) for r in parallel_results] == [
            network_result_to_dict(r) for r in serial_results
        ]

    def test_duplicate_workloads_in_one_batch_simulate_once(self):
        session = EvaluationSession()
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        results = session.run_many([workload, workload, workload])
        assert session.stats.unique_executions == 1
        assert results[0] is results[1] is results[2]

    def test_duplicate_of_pending_workload_is_dedup_not_hit(self):
        # A duplicate of a workload that is queued but not yet executed was
        # served by deduplication, not by the cache: counting it as a hit
        # would inflate the reported hit rate.
        session = EvaluationSession()
        workload = Workload.bitfusion("LeNet-5", batch_size=4)
        session.run_many([workload, workload, workload])
        assert session.stats.misses == 1
        assert session.stats.hits == 0
        assert session.stats.deduped == 2
        assert session.stats.hit_rate == 0.0
        # Duplicates of an already-cached workload, by contrast, are hits.
        session.run_many([workload, workload])
        assert session.stats.hits == 2
        assert session.stats.misses == 1
        assert session.stats.deduped == 2
        assert session.stats.unique_executions == 1

    def test_flag_change_invalidates_cached_result(self):
        session = EvaluationSession()
        session.run(Workload.bitfusion("LeNet-5", batch_size=4))
        session.run(Workload.bitfusion("LeNet-5", batch_size=4, enable_loop_ordering=False))
        assert session.stats.misses == 2
        assert session.stats.hits == 0
        assert session.stats.unique_executions == 2

    def test_sweep_addressable_by_axes(self):
        session = EvaluationSession()
        sweep = session.sweep(["LeNet-5"], batch_sizes=(1, 4), bandwidths=(64, 128))
        assert len(sweep) == 4
        latency = sweep.latency(network="LeNet-5", batch_size=4, bandwidth=128)
        assert latency > 0
        with pytest.raises(KeyError):
            sweep.result(network="LeNet-5")  # ambiguous: four matching points

    def test_sweep_bandwidth_axis_rejected_for_baselines(self):
        with pytest.raises(ValueError):
            EvaluationSession().sweep(["LeNet-5"], platform="eyeriss", bandwidths=(64,))

    def test_sweep_bitfusion_only_parameters_rejected_for_baselines(self):
        session = EvaluationSession()
        with pytest.raises(ValueError):
            session.sweep(["LeNet-5"], platform="stripes", fixed_bits=8)
        with pytest.raises(ValueError):
            session.sweep(["LeNet-5"], platform="eyeriss", enable_layer_fusion=False)

    def test_baseline_variant_runs_regular_model(self):
        network = load_network(Workload.eyeriss("AlexNet"))
        assert network.fingerprint() == models.load_baseline_variant("AlexNet").fingerprint()


class TestReportAcceptance:
    def test_full_report_simulates_each_unique_workload_exactly_once(self):
        session = EvaluationSession()
        run_experiments(benchmarks=_FAST, session=session)
        assert session.stats.unique_executions > 0
        # The headline guarantee: no workload is ever simulated twice...
        assert session.stats.max_executions_per_workload() == 1
        assert session.stats.unique_executions == session.stats.misses
        # ...and the figures genuinely share workloads through the cache.
        assert session.stats.hits > 0

    def test_parallel_report_is_byte_identical_to_serial(self):
        keys = ["fig13", "fig15"]
        serial = build_report(keys=keys, benchmarks=_FAST)
        parallel = build_report(keys=keys, benchmarks=_FAST, jobs=2)

        def tables(report: str) -> list[str]:
            return [
                line
                for line in report.splitlines()
                if not line.startswith("_(generated in")
                and not line.startswith("worker processes")
                and not line.startswith("parallel workers")
                and not line.startswith("backend")
                and not line.startswith("per-worker")
                and not line.startswith("compile time")
                and not line.startswith("sim time")
            ]

        assert tables(serial) == tables(parallel)

    def test_report_header_and_statistics(self):
        import repro

        report = build_report(keys=["tab02"], benchmarks=("LeNet-5",))
        assert f"_repro {repro.__version__}_" in report
        assert "## Evaluation session statistics" in report
