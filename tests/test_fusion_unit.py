"""Tests for the Fusion Unit: spatial fusion configurations and arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fusion_unit import (
    BITBRICKS_PER_FUSION_UNIT,
    MAX_OPERAND_BITS,
    MAX_SPATIAL_OPERAND_BITS,
    FusionUnit,
    fusion_config_for,
    supported_configurations,
)


class TestFusionConfigFor:
    def test_paper_figure2_configurations(self):
        """Figure 2: 16 F-PEs at binary/ternary, 4 at 8b/2b, 1 at 8b/8b."""
        assert fusion_config_for(1, 1).fused_pes == 16
        assert fusion_config_for(2, 2).fused_pes == 16
        assert fusion_config_for(8, 2).fused_pes == 4
        assert fusion_config_for(8, 8).fused_pes == 1

    def test_fused_pes_times_bricks_equals_sixteen(self):
        for config in supported_configurations():
            assert config.fused_pes * config.bricks_per_fpe == BITBRICKS_PER_FUSION_UNIT

    def test_symmetry_between_inputs_and_weights(self):
        assert fusion_config_for(2, 8).fused_pes == fusion_config_for(8, 2).fused_pes
        assert fusion_config_for(4, 16).macs_per_cycle == fusion_config_for(16, 4).macs_per_cycle

    def test_sixteen_bit_operands_use_temporal_passes(self):
        config = fusion_config_for(16, 16)
        assert config.spatial_input_bits == MAX_SPATIAL_OPERAND_BITS
        assert config.spatial_weight_bits == MAX_SPATIAL_OPERAND_BITS
        assert config.temporal_passes == 4
        assert config.macs_per_cycle == 0.25

    def test_sixteen_by_eight_needs_two_passes(self):
        config = fusion_config_for(16, 8)
        assert config.temporal_passes == 2
        assert config.macs_per_cycle == 0.5

    def test_spatial_configs_need_single_pass(self):
        for input_bits in (1, 2, 4, 8):
            for weight_bits in (1, 2, 4, 8):
                assert fusion_config_for(input_bits, weight_bits).temporal_passes == 1

    def test_parallelism_doubles_when_one_operand_halves(self):
        """Figure 7's observation: 4x2 runs twice as fast as 4x4."""
        assert (
            fusion_config_for(4, 2).macs_per_cycle
            == 2 * fusion_config_for(4, 4).macs_per_cycle
        )

    def test_one_bit_rides_two_bit_lane(self):
        assert fusion_config_for(1, 1).macs_per_cycle == fusion_config_for(2, 2).macs_per_cycle

    def test_rejects_unsupported_bitwidths(self):
        with pytest.raises(ValueError):
            fusion_config_for(3, 2)
        with pytest.raises(ValueError):
            fusion_config_for(2, 32)

    def test_supported_configurations_enumeration(self):
        configs = supported_configurations()
        assert len(configs) == 25  # 5 input widths x 5 weight widths
        assert all(c.input_bits in (1, 2, 4, 8, 16) for c in configs)

    def test_lane_bits_capped_at_spatial_maximum(self):
        config = fusion_config_for(16, 16)
        assert config.input_lane_bits == MAX_SPATIAL_OPERAND_BITS
        assert config.weight_lane_bits == MAX_SPATIAL_OPERAND_BITS
        assert MAX_OPERAND_BITS == 16


class TestFusionUnitExecution:
    def test_requires_configuration(self):
        unit = FusionUnit()
        assert not unit.is_configured
        with pytest.raises(RuntimeError):
            unit.multiply_accumulate([1], [1])

    def test_configure_returns_config(self):
        unit = FusionUnit()
        config = unit.configure(4, 4)
        assert unit.is_configured
        assert config.fused_pes == 4

    def test_multiply_accumulate_small_vectors(self):
        unit = FusionUnit()
        unit.configure(4, 4)
        result = unit.multiply_accumulate([1, -2, 3, 4], [5, 6, -7, 0], partial_sum=10)
        assert result == 10 + (1 * 5 - 2 * 6 - 3 * 7 + 0)

    def test_multiply_accumulate_validates_vector_length(self):
        unit = FusionUnit()
        unit.configure(8, 8)  # one Fused-PE
        with pytest.raises(ValueError):
            unit.multiply_accumulate([1, 2], [3, 4])

    def test_multiply_accumulate_validates_operand_range(self):
        unit = FusionUnit()
        unit.configure(2, 2)
        bad_inputs = [5] + [0] * 15
        weights = [1] * 16
        with pytest.raises(ValueError):
            unit.multiply_accumulate(bad_inputs, weights)

    def test_dot_product_matches_numpy(self, rng):
        unit = FusionUnit()
        unit.configure(8, 8)
        a = rng.integers(-128, 128, size=37)
        b = rng.integers(-128, 128, size=37)
        assert unit.dot_product(a, b) == int(np.dot(a, b))

    def test_dot_product_with_padding(self):
        unit = FusionUnit()
        unit.configure(2, 2)  # 16 Fused-PEs, vector of 5 needs padding
        assert unit.dot_product([1, 1, 1, 1, 1], [1, 1, 1, 1, 1]) == 5

    def test_dot_product_rejects_length_mismatch(self):
        unit = FusionUnit()
        unit.configure(4, 4)
        with pytest.raises(ValueError):
            unit.dot_product([1, 2, 3], [1, 2])

    def test_counters_track_bricks_and_macs(self):
        unit = FusionUnit()
        unit.configure(4, 4)
        unit.multiply_accumulate([1, 1, 1, 1], [1, 1, 1, 1])
        assert unit.total_macs == 4
        assert unit.total_brick_multiplies == 4 * 4  # 4 bricks per 4x4 Fused-PE
        unit.reset_counters()
        assert unit.total_macs == 0
        assert unit.total_brick_multiplies == 0

    def test_partial_sum_overflow_detected(self):
        unit = FusionUnit()
        unit.configure(8, 8)
        huge = (1 << 31) - 1
        with pytest.raises(OverflowError):
            unit.multiply_accumulate([127], [127], partial_sum=huge)

    @settings(max_examples=60)
    @given(
        bits=st.sampled_from((2, 4, 8)),
        data=st.data(),
    )
    def test_dot_product_matches_numpy_property(self, bits, data):
        """Property: fused dot products equal int dot products at any bitwidth."""
        unit = FusionUnit()
        unit.configure(bits, bits)
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        length = data.draw(st.integers(min_value=1, max_value=48))
        a = data.draw(
            st.lists(st.integers(min_value=lo, max_value=hi), min_size=length, max_size=length)
        )
        b = data.draw(
            st.lists(st.integers(min_value=lo, max_value=hi), min_size=length, max_size=length)
        )
        assert unit.dot_product(a, b) == int(np.dot(a, b))

    def test_cycles_for_macs_accounts_for_temporal_passes(self):
        unit = FusionUnit()
        unit.configure(16, 16)
        assert unit.cycles_for_macs(1) == 4
        unit.configure(2, 2)
        assert unit.cycles_for_macs(16) == 1
        assert unit.cycles_for_macs(17) == 2

    def test_cycles_for_macs_rejects_negative(self):
        unit = FusionUnit()
        unit.configure(4, 4)
        with pytest.raises(ValueError):
            unit.cycles_for_macs(-1)

    def test_cycles_for_zero_macs_is_zero(self):
        unit = FusionUnit()
        unit.configure(4, 4)
        assert unit.cycles_for_macs(0) == 0
